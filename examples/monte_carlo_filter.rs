//! Monte-Carlo corner sweep of an RC anti-alias filter.
//!
//! The verification workload the paper's speed objective is really
//! about: not one long simulation but hundreds of short variants of the
//! same circuit, here a 4-stage RC ladder (the ADSL front-end's
//! anti-alias filter from the F1 benchmark, reduced to its passives)
//! with every component drawn from its ±10 % tolerance band.
//!
//! All scenarios share the topology, so `ams-sweep` lints the netlist
//! once, pays the sparse symbolic LU analysis once (scenario 0), and
//! runs the rest in parallel with only numeric refactorizations — the
//! report proves it in the solver counters.
//!
//! With `--lanes K` (K ∈ {4, 8, 16}) the sweep runs lane-batched:
//! K scenarios ride one `f64xK` solver, sharing every assembly, LU and
//! probe instruction stream — the throughput mode measured in
//! experiment E13. `--lanes 1` (the default) is the scalar engine.
//!
//! Run with `cargo run --release --example monte_carlo_filter -- \
//!   [--scenarios N] [--workers N] [--lanes K] [--lint-only] \
//!   [--lint-space [RANGES]] [--monitor SPEC] [--trace trace.json] \
//!   [--report]`.
//!
//! `--monitor SPEC` attaches streaming temporal assertions to the
//! sweep: the spec is an `ams-monitor` property list such as
//! `ok:envelope(lo=-0.05,hi=1.05)@n3;fast:rise(lo=0.0,hi=0.9,within=2e-4)@n3`
//! and every scenario reports a per-property pass/fail/vacuous verdict
//! — a yield figure, printed after the metric summaries.
//!
//! `--lint-space` proves properties over the *whole* tolerance box
//! before any transient runs: the interval pass sweeps `dr`/`dc` over
//! every corner at once (default box ±12 %: the ±10 % class tolerance
//! plus the ±2 % per-component mismatch) and reports per-code verdicts.
//! An explicit `RANGES` token such as `dr=-0.5:0.5,dc=-0.1:0.1`
//! overrides the box — handy for asking "how much tolerance *could*
//! this ladder absorb?".

use systemc_ams::net::{Circuit, IntegrationMethod, ScenarioProbe, SolverBackend};
use systemc_ams::sweep::{NetlistSweep, SweepSpec};

const STAGES: usize = 4;
const R_NOM: f64 = 1.6e3; // Ω
const C_NOM: f64 = 10e-9; // F — per-stage pole at ~10 kHz

/// Per-component mismatch (±2 %) from the scenario's private PRNG —
/// the "stimulus variant" channel: deterministic per scenario, on top
/// of the correlated per-class tolerance draws.
fn mismatch(sc: &systemc_ams::sweep::Scenario) -> Vec<f64> {
    use rand::prelude::*;
    let mut rng = sc.rng();
    (0..2 * STAGES)
        .map(|_| rng.gen_range(-0.02..0.02))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scenarios = 256usize;
    let mut workers = 4usize;
    let mut lanes = 1usize;
    let mut space_ranges: Option<String> = None;
    let mut monitor_text: Option<String> = None;
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    let mut args = rest.into_iter().peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenarios" => {
                scenarios = args.next().ok_or("--scenarios needs a value")?.parse()?;
            }
            "--workers" => {
                workers = args.next().ok_or("--workers needs a value")?.parse()?;
            }
            "--lanes" => {
                lanes = args.next().ok_or("--lanes needs a value")?.parse()?;
            }
            "--lint-only" => {} // handled below, after the netlist exists
            "--lint-space" => {
                // Optional NAME=LO:HI[,…] token; flags keep their `--`.
                if args.peek().is_some_and(|t| !t.starts_with("--")) {
                    space_ranges = args.next();
                }
            }
            "--monitor" => {
                monitor_text = Some(args.next().ok_or("--monitor needs a property spec")?);
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: cargo run --example monte_carlo_filter -- \
                     [--scenarios N] [--workers N] [--lanes K] [--lint-only] \
                     [--lint-space [RANGES]] [--monitor SPEC] [--trace FILE] [--report]"
                )
                .into())
            }
        }
    }

    // Template: step source → 4 RC sections → out. Element handles are
    // kept so scenarios can rewrite the values (never the topology).
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    // A 0→1 V step (1 µs rise) so the transient actually exercises the
    // filter: a plain DC source would already be settled at the DC
    // operating point.
    ckt.voltage_source_wave(
        "V",
        prev,
        Circuit::GROUND,
        systemc_ams::net::Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-6,
            fall: 1e-6,
            width: 1.0,
            period: 0.0,
        },
    )?;
    let mut resistors = Vec::new();
    let mut caps = Vec::new();
    for i in 0..STAGES {
        let node = ckt.node(format!("n{i}"));
        resistors.push(ckt.resistor(format!("R{i}"), prev, node, R_NOM)?);
        caps.push(ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, C_NOM)?);
        prev = node;
    }
    let out = prev;

    if systemc_ams::lint::lint_only_requested() {
        systemc_ams::lint::exit_lint_only(&[systemc_ams::lint::lint_circuit(
            "monte_carlo_filter",
            &ckt,
        )]);
    }

    if systemc_ams::lint::lint_space_requested() {
        use systemc_ams::lint::{lint_space, ParamRange, SpaceBind, SpaceSpec, SpaceTarget};
        // Default box: the sweep draws ±10 % per class and stacks ±2 %
        // per-component mismatch on top, so the proof must cover ±12 %.
        let ranges = match &space_ranges {
            Some(s) => systemc_ams::lint::space::parse_ranges(s)?,
            None => vec![
                ParamRange::new("dr", -0.12, 0.12),
                ParamRange::new("dc", -0.12, 0.12),
            ],
        };
        let mut binds = Vec::new();
        for i in 0..STAGES {
            binds.push(SpaceBind {
                param: "dr".into(),
                element: format!("R{i}"),
                target: SpaceTarget::Resistance,
                relative: true,
                nominal: R_NOM,
            });
            binds.push(SpaceBind {
                param: "dc".into(),
                element: format!("C{i}"),
                target: SpaceTarget::Capacitance,
                relative: true,
                nominal: C_NOM,
            });
        }
        let spec = SpaceSpec::new(ranges, binds).requested_h(1e-6);
        systemc_ams::lint::exit_space_lint(&lint_space("monte_carlo_filter", &ckt, &spec));
    }

    // ±10 % uniform tolerance per component class, one draw per class
    // per scenario (correlated within a scenario, as on one die), plus
    // per-component mismatch from the scenario's private PRNG.
    let spec = SweepSpec::monte_carlo(&[("dr", -0.1, 0.1), ("dc", -0.1, 0.1)], scenarios, 0xF1)?;

    // The ladder's Elmore delay is Σ R_cum·C ≈ 160 µs; 1 ms settles it.
    let t_end = 1e-3;
    // `run_lanes` with width 1 *is* the scalar engine, so one call site
    // covers both modes; wider widths pack K scenarios per solver.
    let mut sweep = NetlistSweep::new(ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(t_end, 1e-6)
        .context("monte_carlo_filter")
        .trace(scope.enabled())
        .lanes(lanes);
    if let Some(text) = &monitor_text {
        sweep = sweep.monitors(systemc_ams::monitor::MonitorSpec::parse(text)?);
    }
    let report = sweep.run_lanes(
        &spec,
        workers,
        &["v_settle", "t_rise"],
        |c, sc| {
            let m = mismatch(sc);
            for (i, r) in resistors.iter().enumerate() {
                c.set_resistance(*r, R_NOM * (1.0 + sc.value("dr") + m[i]))?;
            }
            for (i, cap) in caps.iter().enumerate() {
                c.set_capacitance(*cap, C_NOM * (1.0 + sc.value("dc") + m[STAGES + i]))?;
            }
            Ok(())
        },
        |tr: &dyn ScenarioProbe, m| {
            let v = tr.voltage(out);
            m[0] = v; // last value at t_end = settled output
            if m[1].is_nan() && v >= 0.9 {
                m[1] = tr.time(); // first crossing of 90 %
            }
        },
    )?;

    println!("{}", report.render());
    for metric in ["v_settle", "t_rise"] {
        let s = report.summary(metric).expect("metric exists");
        let p95 = report.percentile(metric, 95.0).expect("non-empty");
        println!(
            "{metric}: p95 {:.4e}; worst case {}",
            p95,
            report.worst_case(metric).expect("non-empty").label
        );
        assert_eq!(s.count + s.nan_count, scenarios);
    }

    // Yield report: one line per property, with the first failing
    // scenario's witness point when the property ever failed.
    if monitor_text.is_some() {
        for s in report.monitor_summary() {
            print!(
                "monitor {}: {} pass, {} fail, {} vacuous",
                s.name, s.pass, s.fail, s.vacuous
            );
            match s.first_fail {
                Some((idx, code, t, v)) => {
                    println!("; first fail scenario {idx} [{code}] at t={t:.3e}s v={v:.4}")
                }
                None => println!(),
            }
        }
        println!(
            "yield: {}/{} scenarios pass all properties",
            report.passing_scenarios(),
            scenarios
        );
    }

    // The amortization evidence: one symbolic analysis for the whole
    // batch, numeric refactors everywhere else. In lane mode solver
    // counters are bundle-shared, so bundle 0's single analysis is
    // reported by each of its (up to `lanes`) scenarios.
    let totals = report.totals();
    println!(
        "symbolic analyses: {} (of {} scenarios); numeric refactors: {}",
        totals.solve.symbolic_analyses, scenarios, totals.solve.numeric_refactors
    );
    assert_eq!(
        totals.solve.symbolic_analyses,
        lanes.min(scenarios).max(1) as u64
    );

    if scope.enabled() {
        let trace = report.trace.clone().unwrap_or_default();
        scope.emit(&trace, &report.exec.to_metrics())?;
    }
    Ok(())
}
