//! The simulation service daemon.
//!
//! Binds a TCP listener (ephemeral port by default), starts the
//! [`ServeHandle`](systemc_ams::serve::ServeHandle) dispatcher, prints
//! the listen address and the admin token, and serves newline-delimited
//! JSON requests until SIGTERM/SIGINT or an authorized `shutdown`
//! request — then drains queued and running jobs and exits 0.
//!
//! ```text
//! cargo run --release --example serve_daemon -- [--addr HOST:PORT]
//!     [--workers N] [--cache-mb N] [--seed N]
//!     [--lint-only] [--lint-space [RANGES]]
//! ```
//!
//! `--lint-only` and `--lint-space` never bind a socket: they run the
//! daemon's admission checks (concrete lint, or the interval pass over
//! the demo job's whole parameter box) against `JobSpec::demo_rc` and
//! exit — a dry-run of what `submit` would accept or reject.
//!
//! Pair with `serve_client` for an end-to-end Monte-Carlo job.

use systemc_ams::serve::{daemon, signal, JobSpec, ServeConfig, ServeHandle};

const USAGE: &str = "cargo run --example serve_daemon -- [--addr HOST:PORT] [--workers N] \
                     [--cache-mb N] [--seed N] [--lint-only] [--lint-space [RANGES]]";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServeConfig::default();
    let mut lint_only = false;
    let mut lint_space = false;
    let mut space_ranges: Option<String> = None;
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    let mut args = rest.into_iter().peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--workers" => {
                config.workers = args.next().ok_or("--workers needs a value")?.parse()?;
            }
            "--cache-mb" => {
                let mb: usize = args.next().ok_or("--cache-mb needs a value")?.parse()?;
                config.cache_bytes = mb << 20;
            }
            "--seed" => config.seed = args.next().ok_or("--seed needs a value")?.parse()?,
            "--lint-only" => lint_only = true,
            "--lint-space" => {
                lint_space = true;
                // Optional NAME=LO:HI[,…] token; flags keep their `--`.
                if args.peek().is_some_and(|t| !t.starts_with("--")) {
                    space_ranges = args.next();
                }
            }
            other => return Err(format!("unknown argument {other:?}\nusage: {USAGE}").into()),
        }
    }

    if lint_only || lint_space {
        let job = JobSpec::demo_rc(64, 0xF1);
        let built = job.circuit.build()?;
        if lint_only {
            systemc_ams::lint::exit_lint_only(&[systemc_ams::lint::lint_circuit(
                "serve_daemon",
                &built.circuit,
            )]);
        }
        let mut sspec = job.space_spec();
        if let Some(s) = &space_ranges {
            sspec.ranges = systemc_ams::lint::space::parse_ranges(s)?;
        }
        systemc_ams::lint::exit_space_lint(&systemc_ams::lint::lint_space(
            "serve_daemon",
            &built.circuit,
            &sspec,
        ));
    }

    // Unpredictable token-mint seed unless pinned for reproducibility.
    if config.seed == ServeConfig::default().seed {
        config.seed ^= std::process::id() as u64 ^ 0x53_45_52_56_45;
    }

    let listener = std::net::TcpListener::bind(&addr)?;
    let local = listener.local_addr()?;
    let handle = ServeHandle::start(config);
    // The two lines clients scrape; keep the format stable.
    println!("serve: listening on {local}");
    println!("serve: admin token {}", handle.admin_token());
    use std::io::Write as _;
    std::io::stdout().flush()?;

    let stop = signal::install_stop_flag();
    daemon::serve(&handle, listener, stop)?;
    eprintln!("serve: drained, exiting");

    let metrics = handle.metrics();
    let trace = systemc_ams::scope::ScopeTrace::new();
    scope.emit(&trace, &metrics)?;
    Ok(())
}
