//! Client for the simulation service daemon.
//!
//! Registers a tenant, submits the demo Monte-Carlo RC-ladder job, and
//! streams results. With `--parity` it runs the full acceptance check
//! for the warm topology cache:
//!
//! 1. run the job *directly* in-process (no daemon, no cache) at 1 and
//!    4 workers — the reference fingerprints;
//! 2. submit the same job to the daemon twice — a cold run (populates
//!    the cache) and a warm run (hits it);
//! 3. assert all four `SweepReport` fingerprints are bit-identical and
//!    that the warm run performed **zero** symbolic analyses and
//!    **zero** lint passes (from the daemon's `serve.*` metrics).
//!
//! With `--suspend-resume` it exercises the checkpoint layer over the
//! wire: submit a deliberately slow job, suspend it mid-run (the
//! daemon checkpoints the completed scenarios into the topology
//! cache), resume it, and assert the stitched-together report's
//! fingerprint is bit-identical to an uninterrupted in-process run —
//! with the `serve.checkpoint.*` metrics confirming a checkpoint was
//! actually stored and restored.
//!
//! ```text
//! cargo run --release --example serve_client -- --addr HOST:PORT
//!     --admin TOKEN [--scenarios N] [--seed N] [--parity]
//!     [--suspend-resume] [--shutdown] [--lint-only]
//!     [--lint-space [RANGES]] [--monitor SPEC]
//! ```
//!
//! `--monitor SPEC` attaches an `ams-monitor` property list to the
//! submitted job (channels name the demo ladder's nodes `n1`…`n4`),
//! e.g. `--monitor 'over:overshoot(max=1.05)@n4;fin:finite()@n4'`.
//! The daemon validates the spec at submit, folds it into the job
//! fingerprint, and reports per-property verdict tallies which this
//! client prints alongside the result.
//!
//! `--lint-only` and `--lint-space` need no daemon (and no
//! `--addr`/`--admin`): they run the same checks the daemon's admission
//! gate applies to the demo job — concrete lint, or the interval pass
//! over the job's whole parameter box — and exit. A rejection printed
//! here is exactly what `submit` would answer.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use systemc_ams::sweep::json::{parse, Json};

const USAGE: &str = "cargo run --example serve_client -- --addr HOST:PORT --admin TOKEN \
                     [--scenarios N] [--seed N] [--parity] [--suspend-resume] \
                     [--shutdown] [--lint-only] [--lint-space [RANGES]] \
                     [--monitor SPEC]";

/// One newline-delimited JSON connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn request(&mut self, line: &str) -> Result<Json, Box<dyn std::error::Error>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        let obj = parse(reply.trim_end()).map_err(|e| format!("bad reply: {e}"))?;
        if obj.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "request failed [{}]: {}",
                obj.get("code").and_then(Json::as_str).unwrap_or("?"),
                obj.get("error").and_then(Json::as_str).unwrap_or("?"),
            )
            .into());
        }
        Ok(obj)
    }

    fn submit(
        &mut self,
        tenant: &str,
        job: &systemc_ams::serve::JobSpec,
    ) -> Result<String, Box<dyn std::error::Error>> {
        let submit = format!(
            r#"{{"op":"submit","tenant":"{tenant}","job":{}}}"#,
            job.to_json().render()
        );
        let reply = self.request(&submit)?;
        Ok(reply
            .get("job_token")
            .and_then(Json::as_str)
            .ok_or("submit reply lacks job_token")?
            .to_string())
    }

    /// One `status` round-trip: (state tag, completed scenarios).
    fn status(
        &mut self,
        tenant: &str,
        token: &str,
    ) -> Result<(String, u64), Box<dyn std::error::Error>> {
        let reply = self.request(&format!(
            r#"{{"op":"status","tenant":"{tenant}","job":"{token}"}}"#
        ))?;
        let state = reply
            .get("state")
            .and_then(Json::as_str)
            .ok_or("status reply lacks state")?
            .to_string();
        let completed = reply.get("completed").and_then(Json::as_u64).unwrap_or(0);
        Ok((state, completed))
    }

    /// Blocks on `result` for an already-submitted job; returns the
    /// server's fingerprint string.
    fn result(&mut self, tenant: &str, token: &str) -> Result<String, Box<dyn std::error::Error>> {
        let reply = self.request(&format!(
            r#"{{"op":"result","tenant":"{tenant}","job":"{token}"}}"#
        ))?;
        // Round-trip the report (this also verifies its embedded
        // fingerprint) and cross-check the top-level field.
        let report = systemc_ams::sweep::json::report_from_json(
            reply.get("report").ok_or("result reply lacks report")?,
        )?;
        let fp = reply
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("result reply lacks fingerprint")?
            .to_string();
        assert_eq!(fp, format!("{:016x}", report.fingerprint()));
        Ok(fp)
    }

    /// Submits `job` and blocks for its report; returns the server's
    /// fingerprint string.
    fn run_job(
        &mut self,
        tenant: &str,
        job: &systemc_ams::serve::JobSpec,
    ) -> Result<String, Box<dyn std::error::Error>> {
        let token = self.submit(tenant, job)?;
        self.result(tenant, &token)
    }

    fn counter(&mut self, admin: &str, name: &str) -> Result<u64, Box<dyn std::error::Error>> {
        let reply = self.request(&format!(r#"{{"op":"stats","admin":"{admin}"}}"#))?;
        // `stats` groups the registry: counters, gauges, histograms.
        Ok(reply
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = String::new();
    let mut admin = String::new();
    let mut scenarios = 64usize;
    let mut seed = 0xF1u64;
    let mut parity = false;
    let mut suspend_resume = false;
    let mut shutdown = false;
    let mut lint_only = false;
    let mut lint_space = false;
    let mut space_ranges: Option<String> = None;
    let mut monitor_text: Option<String> = None;
    let (_scope, rest) = systemc_ams::scope::args::scope_args()?;
    let mut args = rest.into_iter().peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--admin" => admin = args.next().ok_or("--admin needs a token")?,
            "--scenarios" => {
                scenarios = args.next().ok_or("--scenarios needs a value")?.parse()?;
            }
            "--seed" => seed = args.next().ok_or("--seed needs a value")?.parse()?,
            "--parity" => parity = true,
            "--suspend-resume" => suspend_resume = true,
            "--shutdown" => shutdown = true,
            "--lint-only" => lint_only = true,
            "--lint-space" => {
                lint_space = true;
                // Optional NAME=LO:HI[,…] token; flags keep their `--`.
                if args.peek().is_some_and(|t| !t.starts_with("--")) {
                    space_ranges = args.next();
                }
            }
            "--monitor" => {
                monitor_text = Some(args.next().ok_or("--monitor needs a property spec")?);
            }
            other => return Err(format!("unknown argument {other:?}\nusage: {USAGE}").into()),
        }
    }

    let mut job = systemc_ams::serve::JobSpec::demo_rc(scenarios, seed);
    job.monitors = monitor_text;

    if lint_only || lint_space {
        let built = job.circuit.build()?;
        if lint_only {
            systemc_ams::lint::exit_lint_only(&[systemc_ams::lint::lint_circuit(
                "serve_client",
                &built.circuit,
            )]);
        }
        let mut sspec = job.space_spec();
        if let Some(s) = &space_ranges {
            sspec.ranges = systemc_ams::lint::space::parse_ranges(s)?;
        }
        systemc_ams::lint::exit_space_lint(&systemc_ams::lint::lint_space(
            "serve_client",
            &built.circuit,
            &sspec,
        ));
    }

    if addr.is_empty() || admin.is_empty() {
        return Err(format!("--addr and --admin are required\nusage: {USAGE}").into());
    }
    let mut client = Client::connect(&addr)?;
    let reply = client.request(&format!(
        r#"{{"op":"hello","admin":"{admin}","tenant":{{"name":"client","max_shards":"4","scenario_budget":"100000"}}}}"#
    ))?;
    let tenant = reply
        .get("tenant_token")
        .and_then(Json::as_str)
        .ok_or("hello reply lacks tenant_token")?
        .to_string();

    if parity {
        // References: direct in-process runs, no daemon involved.
        let direct1 = format!("{:016x}", job.direct_run(1)?.fingerprint());
        let direct4 = format!("{:016x}", job.direct_run(4)?.fingerprint());

        let lint_before = client.counter(&admin, "serve.lint.runs")?;
        let sym_before = client.counter(&admin, "serve.lu.symbolic_analyses")?;
        let cold = client.run_job(&tenant, &job)?;
        let sym_after_cold = client.counter(&admin, "serve.lu.symbolic_analyses")?;
        let lint_after_cold = client.counter(&admin, "serve.lint.runs")?;
        let warm = client.run_job(&tenant, &job)?;
        let sym_after_warm = client.counter(&admin, "serve.lu.symbolic_analyses")?;
        let lint_after_warm = client.counter(&admin, "serve.lint.runs")?;

        println!("direct@1 {direct1}\ndirect@4 {direct4}\ncold     {cold}\nwarm     {warm}");
        if !(direct1 == direct4 && direct1 == cold && cold == warm) {
            return Err("fingerprint parity FAILED".into());
        }
        if sym_after_cold == sym_before {
            return Err("cold run performed no symbolic analysis — check is vacuous".into());
        }
        if sym_after_warm != sym_after_cold {
            return Err(format!(
                "warm run performed {} symbolic analyses (want 0)",
                sym_after_warm - sym_after_cold
            )
            .into());
        }
        if lint_after_warm != lint_after_cold || lint_after_cold != lint_before + 1 {
            return Err("lint pass accounting FAILED (want exactly 1 cold lint, 0 warm)".into());
        }
        println!("parity OK: warm cache is bit-identical with 0 symbolic analyses, 0 lint passes");
    } else if suspend_resume {
        // A deliberately slow variant of the demo job (100× finer step)
        // so the suspend lands while scenarios are still pending.
        let mut slow = job.clone();
        slow.h /= 100.0;
        let direct = format!("{:016x}", slow.direct_run(2)?.fingerprint());

        let stored_before = client.counter(&admin, "serve.checkpoint.stored")?;
        let token = client.submit(&tenant, &slow)?;
        // Let at least one scenario land so there is something to
        // checkpoint, then ask for suspension.
        loop {
            let (state, completed) = client.status(&tenant, &token)?;
            if completed >= 1 || state == "done" {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        client.request(&format!(
            r#"{{"op":"suspend","tenant":"{tenant}","job":"{token}"}}"#
        ))?;
        let suspended = loop {
            let (state, completed) = client.status(&tenant, &token)?;
            match state.as_str() {
                "suspended" => break true,
                // The job beat the suspension to the finish line;
                // nothing was checkpointed, which is a legal outcome —
                // rerun with more --scenarios to widen the window.
                "done" => break false,
                _ => {
                    println!("waiting: {state}, {completed} scenarios done");
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
        };
        if suspended {
            let stored = client.counter(&admin, "serve.checkpoint.stored")?;
            if stored != stored_before + 1 {
                return Err("suspension stored no checkpoint".into());
            }
            let restored_before = client.counter(&admin, "serve.checkpoint.restored")?;
            client.request(&format!(
                r#"{{"op":"resume","tenant":"{tenant}","job":"{token}"}}"#
            ))?;
            let fp = client.result(&tenant, &token)?;
            let restored = client.counter(&admin, "serve.checkpoint.restored")?;
            println!("direct   {direct}\nresumed  {fp}");
            if fp != direct {
                return Err("suspend/resume fingerprint parity FAILED".into());
            }
            if restored != restored_before + 1 {
                return Err("resume restored no checkpoint".into());
            }
            let n = client.counter(&admin, "serve.checkpoint.scenarios_restored")?;
            println!(
                "suspend/resume OK: resumed report is bit-identical \
                 ({n} scenarios served from the checkpoint so far)"
            );
        } else {
            let fp = client.result(&tenant, &token)?;
            println!("job finished before suspension landed, fingerprint {fp}");
        }
    } else {
        let token = client.submit(&tenant, &job)?;
        let reply = client.request(&format!(
            r#"{{"op":"result","tenant":"{tenant}","job":"{token}"}}"#
        ))?;
        let report = systemc_ams::sweep::json::report_from_json(
            reply.get("report").ok_or("result reply lacks report")?,
        )?;
        println!("job complete, fingerprint {:016x}", report.fingerprint());
        if !report.monitor_names.is_empty() {
            for s in report.monitor_summary() {
                println!(
                    "monitor {}: {} pass, {} fail, {} vacuous",
                    s.name, s.pass, s.fail, s.vacuous
                );
            }
            println!(
                "yield: {}/{} scenarios pass all properties",
                report.passing_scenarios(),
                report.scenarios.len()
            );
            let monitored_jobs = client.counter(&admin, "serve.monitor.jobs")?;
            println!("daemon has served {monitored_jobs} monitored job(s)");
        }
    }

    if shutdown {
        client.request(&format!(r#"{{"op":"shutdown","admin":"{admin}"}}"#))?;
        println!("daemon draining");
    }
    Ok(())
}
