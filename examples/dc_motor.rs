//! Phase 3 of the paper's roadmap: **automotive / multi-domain** — a DC
//! motor speed servo as a mixed electro-mechanical conservative system
//! with a software-in-the-loop controller.
//!
//! * The motor is a true multi-domain conservative network: electrical
//!   armature mesh (V source, R, L) coupled to a rotational-mechanics
//!   mesh (inertia, friction) through the machine constant (back-EMF +
//!   torque coupling) — "systems including non electronic parts
//!   (mechanical, fluidic, thermal, etc.)" (§2).
//! * The speed controller is a DE process sampling the speed and updating
//!   the drive voltage at 1 kHz — the paper's "software MoC" interacting
//!   with the continuous world through the synchronization layer.
//! * The electrical time constant (L/R = 2 ms) and the mechanical one
//!   (J/B ≈ 0.1 s) differ by ~50×: the "stiff … time constants whose
//!   values differ by several orders of magnitude" situation the paper
//!   calls out, handled by the variable-step transient solver.
//!
//! Run with `cargo run --release --example dc_motor -- \
//!   [--trace trace.json] [--report]`.

use std::cell::RefCell;
use std::rc::Rc;
use systemc_ams::kernel::{Kernel, SimTime};
use systemc_ams::net::{
    AdaptiveOptions, Circuit, IntegrationMethod, Multiphysics, TransientSolver, Waveform,
};

// Motor parameters (small servo motor).
const R_ARM: f64 = 1.0; // Ω
const L_ARM: f64 = 2e-3; // H
const K_M: f64 = 0.05; // N·m/A and V·s/rad
const J_ROT: f64 = 1e-4; // kg·m²
const B_FRICTION: f64 = 1e-3; // N·m·s/rad

fn build_motor() -> Result<
    (Circuit, systemc_ams::net::InputId, systemc_ams::net::NodeId),
    Box<dyn std::error::Error>,
> {
    let mut ckt = Circuit::new();
    let vdrv = ckt.node("vdrv");
    let n1 = ckt.node("n1");
    let n2 = ckt.node("n2");
    let n3 = ckt.node("n3");
    let shaft = ckt.rot_node("shaft");
    let drive = ckt.external_input();
    ckt.voltage_source_wave("Vdrive", vdrv, Circuit::GROUND, Waveform::External(drive))?;
    ckt.resistor("Ra", vdrv, n1, R_ARM)?;
    ckt.inductor("La", n1, n2, L_ARM)?;
    let sense = ckt.voltage_source("Isense", n2, n3, 0.0)?;
    ckt.inertia("J", shaft, J_ROT)?;
    ckt.rot_damper("B", shaft, Circuit::rot_ground(), B_FRICTION)?;
    ckt.dc_machine("M", sense, n3, Circuit::GROUND, shaft, K_M)?;
    Ok((ckt, drive, shaft.0))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--trace <path>` / `--report`: one track per solver run plus the
    // DE kernel's delta-cycle track.
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    systemc_ams::scope::args::lint_only_or_reject(
        rest,
        "cargo run --example dc_motor -- [--lint-only] [--trace FILE] [--report]",
    )?;

    // Steady-state speed for a constant voltage: ω = K·V/(K² + R·B).
    let gain = K_M / (K_M * K_M + R_ARM * B_FRICTION);
    println!("dc motor: R={R_ARM} Ω, L={L_ARM} H, K={K_M}, J={J_ROT}, B={B_FRICTION}");
    println!("open-loop speed gain: {gain:.2} (rad/s)/V\n");

    // `--lint-only`: static checks on the conservative network only.
    if systemc_ams::lint::lint_only_requested() {
        let (ckt, _, _) = build_motor()?;
        systemc_ams::lint::exit_lint_only(&[systemc_ams::lint::lint_circuit("dc_motor", &ckt)]);
    }

    // ---- Part 1: open-loop step, fixed vs variable timestep. -------------
    let (ckt, drive, shaft) = build_motor()?;
    let mut fixed = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal)?;
    fixed.set_tracing(scope.enabled());
    fixed.set_input(drive, 10.0);
    fixed.initialize_dc()?;
    // Fixed step must resolve the 2 ms electrical constant: 50 µs steps.
    fixed.run(1.0, 50e-6, |_| {})?;
    let omega_fixed = fixed.voltage(shaft);
    let steps_fixed = fixed.stats().steps;

    let (ckt2, drive2, shaft2) = build_motor()?;
    let mut adaptive = TransientSolver::new(&ckt2, IntegrationMethod::Trapezoidal)?;
    adaptive.set_tracing(scope.enabled());
    adaptive.set_input(drive2, 10.0);
    adaptive.initialize_dc()?;
    adaptive.run_adaptive(
        1.0,
        &AdaptiveOptions {
            rel_tol: 1e-5,
            abs_tol: 1e-8,
            initial_step: 1e-6,
            max_step: 0.02,
            ..Default::default()
        },
        |_| {},
    )?;
    let omega_adapt = adaptive.voltage(shaft2);
    let steps_adapt = adaptive.stats().steps;

    let omega_expect = gain * 10.0;
    println!("open-loop 10 V step, t = 1 s:");
    println!("  expected speed : {omega_expect:.3} rad/s");
    println!("  fixed step     : {omega_fixed:.3} rad/s in {steps_fixed} steps");
    println!("  variable step  : {omega_adapt:.3} rad/s in {steps_adapt} steps");
    assert!((omega_fixed - omega_expect).abs() / omega_expect < 1e-3);
    assert!((omega_adapt - omega_expect).abs() / omega_expect < 1e-2);
    assert!(
        steps_adapt * 3 < steps_fixed,
        "variable step should need far fewer steps ({steps_adapt} vs {steps_fixed})"
    );

    // ---- Part 2: closed-loop speed servo (software in the loop). ---------
    let (ckt3, drive3, shaft3) = build_motor()?;
    let solver = Rc::new(RefCell::new(TransientSolver::new(
        &ckt3,
        IntegrationMethod::Trapezoidal,
    )?));
    solver.borrow_mut().set_tracing(scope.enabled());
    solver.borrow_mut().initialize_dc()?;

    let mut kernel = Kernel::new();
    kernel.set_tracing(scope.enabled());
    let setpoint = 100.0; // rad/s
    let trace = Rc::new(RefCell::new(Vec::new()));
    let trace_in = trace.clone();
    let solver_in = solver.clone();
    // 1 kHz digital PI speed controller.
    let mut integral = 0.0;
    kernel.add_process("speed_ctrl", move |ctx| {
        let mut s = solver_in.borrow_mut();
        let t_target = ctx.now().to_seconds();
        while s.time() < t_target - 25e-6 {
            s.step(50e-6).expect("step");
        }
        let omega = s.voltage(shaft3);
        let err = setpoint - omega;
        integral += err * 1e-3;
        let u = (2.0 * err + 40.0 * integral).clamp(-48.0, 48.0);
        s.set_input(drive3, u);
        trace_in.borrow_mut().push((t_target, omega, u));
        ctx.next_trigger_in(SimTime::from_ms(1));
    });
    kernel.run_until(SimTime::from_ms(600))?;

    let tr = trace.borrow();
    let (t_end, omega_end, u_end) = *tr.last().expect("trace recorded");
    // Settling time: first time the speed stays within 2 %.
    let settle = tr
        .iter()
        .find(|(t, _, _)| {
            tr.iter()
                .filter(|(t2, _, _)| t2 >= t)
                .all(|(_, w, _)| (w - setpoint).abs() < 0.02 * setpoint)
        })
        .map(|(t, _, _)| *t)
        .unwrap_or(f64::NAN);
    println!("\nclosed-loop servo to {setpoint} rad/s:");
    println!("  final speed    : {omega_end:.2} rad/s at t = {t_end:.3} s");
    println!("  drive voltage  : {u_end:.2} V");
    println!("  2 % settling   : {settle:.3} s");
    assert!(
        (omega_end - setpoint).abs() < 0.5,
        "servo settles on target"
    );
    // Steady-state drive ≈ ω/gain.
    assert!((u_end - setpoint / gain).abs() / (setpoint / gain) < 0.05);
    assert!(settle < 0.4, "settles within 400 ms");

    if scope.enabled() {
        let mut out = systemc_ams::scope::ScopeTrace::new();
        for (thread, events) in [
            ("fixed", fixed.take_trace_events()),
            ("adaptive", adaptive.take_trace_events()),
            ("servo", solver.borrow_mut().take_trace_events()),
            ("kernel", kernel.take_trace_events()),
        ] {
            if !events.is_empty() {
                out.add_track("coordinator", thread, events);
            }
        }
        let mut metrics = systemc_ams::scope::MetricsRegistry::new();
        metrics.counter_add("solver.fixed_steps", steps_fixed);
        metrics.counter_add("solver.adaptive_steps", steps_adapt);
        metrics.counter_add("solver.adaptive_rejected", adaptive.stats().rejected);
        let ks = kernel.stats();
        metrics.counter_add("kernel.delta_cycles", ks.delta_cycles);
        metrics.counter_add("kernel.activations", ks.activations);
        scope.emit(&out, &metrics)?;
    }
    println!("\ndc_motor OK");
    Ok(())
}
