//! Phase 2 of the paper's roadmap: **RF/wireless applications** — "the
//! design of a RF transceiver at system level … is usually done using
//! dataflow models to improve simulation efficiency while still achieving
//! an acceptable level of accuracy" (§2, ref [18]).
//!
//! A QPSK link at baseband-equivalent rates:
//!
//! ```text
//! PRBS ─► QPSK map ─► [I/Q upconversion ×cos/−sin] ─► PA (Rapp) ─► AWGN
//!                                                                   │
//! BER  ◄─ compare ◄─ QPSK demap ◄─ integrate&dump ◄─ [downconversion]┘
//! ```
//!
//! The measured BER is compared against the analytic QPSK curve
//! `½·erfc(√(Eb/N0))`, and an AC sweep of the receive filter shows the
//! frequency-domain view of the same model.
//!
//! Run with `cargo run --release --example rf_transceiver -- \
//!   [--trace trace.json] [--report]`.

use std::sync::{Arc, Mutex};
use systemc_ams::blocks::{
    qpsk_theoretical_ber, AwgnChannel, PowerAmp, PrbsSource, QpskDemapper, QpskMapper,
};
use systemc_ams::core::{CoreError, TdfGraph, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup};
use systemc_ams::kernel::SimTime;

/// Samples per QPSK symbol (oversampling of the "RF" carrier).
const SPS: u64 = 16;
/// Carrier: 2 cycles per symbol (any multiple of the symbol rate works).
const CARRIER_CYCLES_PER_SYMBOL: f64 = 2.0;

/// Upsamples a symbol stream by SPS (rectangular pulse shaping) and mixes
/// it onto a carrier: `out = i·cos(ωt) − q·sin(ωt)`.
struct IqUpconverter {
    i_in: TdfIn,
    q_in: TdfIn,
    out: TdfOut,
    carrier_hz: f64,
}

impl TdfModule for IqUpconverter {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.i_in);
        cfg.input(self.q_in);
        cfg.output_with(self.out, SPS);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let i = io.read1(self.i_in);
        let q = io.read1(self.q_in);
        let dt = io.timestep() / SPS as f64;
        for k in 0..SPS {
            let t = io.time() + k as f64 * dt;
            let w = 2.0 * std::f64::consts::PI * self.carrier_hz * t;
            io.write(self.out, k, i * w.cos() - q * w.sin());
        }
        Ok(())
    }
}

/// Coherent downconverter with integrate-and-dump matched filtering:
/// consumes SPS passband samples, emits one (I, Q) pair.
struct IqDownconverter {
    inp: TdfIn,
    i_out: TdfOut,
    q_out: TdfOut,
    carrier_hz: f64,
}

impl TdfModule for IqDownconverter {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input_with(self.inp, SPS, 0);
        cfg.output(self.i_out);
        cfg.output(self.q_out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let dt = io.timestep() / SPS as f64;
        let mut acc_i = 0.0;
        let mut acc_q = 0.0;
        for k in 0..SPS {
            let x = io.read(self.inp, k);
            let t = io.time() + k as f64 * dt;
            let w = 2.0 * std::f64::consts::PI * self.carrier_hz * t;
            acc_i += x * w.cos();
            acc_q += x * (-w.sin());
        }
        // ×2/SPS recovers the baseband amplitude.
        io.write1(self.i_out, 2.0 * acc_i / SPS as f64);
        io.write1(self.q_out, 2.0 * acc_q / SPS as f64);
        Ok(())
    }
}

/// Compares transmitted and received bits (the received stream lags by
/// one symbol due to the converter chain being sample-aligned here, so no
/// delay compensation is needed) and counts errors.
struct BitErrorCounter {
    tx: TdfIn,
    rx: TdfIn,
    errors: Arc<Mutex<(u64, u64)>>,
}

impl TdfModule for BitErrorCounter {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.tx);
        cfg.input(self.rx);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let tx = io.read1(self.tx) >= 0.5;
        let rx = io.read1(self.rx) >= 0.5;
        let mut e = self.errors.lock().expect("error counter poisoned");
        e.1 += 1;
        if tx != rx {
            e.0 += 1;
        }
        Ok(())
    }
}

/// Runs the link at one Eb/N0 and returns (measured BER, bits). With a
/// trace sink, the cluster's iteration spans land on a per-Eb/N0 track.
fn run_link(
    eb_n0_db: f64,
    symbols: u64,
    seed: u64,
    trace: Option<&mut systemc_ams::scope::ScopeTrace>,
) -> Result<(f64, u64), Box<dyn std::error::Error>> {
    let mut g = TdfGraph::new("qpsk_link");
    let bits = g.signal("bits");
    let i_tx = g.signal("i_tx");
    let q_tx = g.signal("q_tx");
    let rf = g.signal("rf");
    let pa_out = g.signal("pa_out");
    let rx = g.signal("rx");
    let i_rx = g.signal("i_rx");
    let q_rx = g.signal("q_rx");
    let bits_rx = g.signal("bits_rx");

    let symbol_time = SimTime::from_us(1);
    let carrier_hz = CARRIER_CYCLES_PER_SYMBOL / symbol_time.to_seconds();

    g.add_module(
        "prbs",
        PrbsSource::new(bits.writer(), 0xBEEF ^ seed as u32 | 1, None),
    );
    g.add_module(
        "map",
        QpskMapper::new(bits.reader(), i_tx.writer(), q_tx.writer()),
    );
    let up = IqUpconverter {
        i_in: i_tx.reader(),
        q_in: q_tx.reader(),
        out: rf.writer(),
        carrier_hz,
    };
    g.add_module("upconv", up);
    // PA driven well below compression (linear region) so the BER math
    // holds; the PA's presence still exercises the phase-2 model.
    g.add_module(
        "pa",
        PowerAmp::new(rf.reader(), pa_out.writer(), 1.0, 4.0, 2.0),
    );

    // Eb/N0 → per-sample noise sigma:
    //   Es (symbol energy) = ∫|s|² = SPS·(1/2)·(i²+q²) = SPS/2 per symbol
    //   Eb = Es/2; noise per passband sample n ~ N(0, σ²) adds
    //   variance σ²·SPS/... — direct derivation on the matched filter:
    //   decision variable i ± noise with SNR = SPS·A²/(2σ²) per bit where
    //   A = 1/√2, so Eb/N0 = SPS/(4σ²)·... empirically:
    //   after integrate&dump, noise on î is σ·√(2/SPS); signal ±1/√2 →
    //   Eb/N0 = (1/2)/(2σ²/SPS)/2 = SPS/(8σ²)... we use the exact form
    //   below and verify against theory in the output table.
    // Decision SNR: P(err) = Q(A/σ_eff), A = 1/√2, σ_eff = σ·√(2/SPS).
    // Matching ½erfc(√(Eb/N0)) requires A/σ_eff = √(2·Eb/N0):
    //   σ = A·√(SPS)/(2·√(Eb/N0)) / ... solved: σ = √(SPS/(8·ebn0)).
    let ebn0 = 10f64.powf(eb_n0_db / 10.0);
    let sigma = (SPS as f64 / (8.0 * ebn0)).sqrt();

    g.add_module(
        "chan",
        AwgnChannel::new(pa_out.reader(), rx.writer(), sigma, 7 + seed),
    );
    g.add_module(
        "down",
        IqDownconverter {
            inp: rx.reader(),
            i_out: i_rx.writer(),
            q_out: q_rx.writer(),
            carrier_hz,
        },
    );
    g.add_module(
        "demap",
        QpskDemapper::new(i_rx.reader(), q_rx.reader(), bits_rx.writer()),
    );
    let errors = Arc::new(Mutex::new((0u64, 0u64)));
    g.add_module(
        "ber",
        BitErrorCounter {
            tx: bits.reader(),
            rx: bits_rx.reader(),
            errors: errors.clone(),
        },
    );
    // Pace the cluster: the symbol-rate modules get `symbol_time`.
    struct Pace;
    impl TdfModule for Pace {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.set_timestep(SimTime::from_us(1));
        }
        fn processing(&mut self, _io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            Ok(())
        }
    }
    g.add_module("pace", Pace);

    // `--lint-only`: report the static checks instead of simulating.
    if systemc_ams::lint::lint_only_requested() {
        systemc_ams::lint::exit_lint_only(&[g.lint()]);
    }

    let mut c = g.elaborate()?;
    if trace.is_some() {
        c.set_tracing(true);
    }
    c.run_standalone(symbols)?;
    if let Some(sink) = trace {
        for (source, events) in c.take_traces() {
            sink.add_track(format!("ebn0-{eb_n0_db:.0}dB"), source, events);
        }
    }
    let (err, total) = *errors.lock().expect("error counter poisoned");
    Ok((err as f64 / total as f64, total))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--trace <path>` / `--report`: one trace track per Eb/N0 point.
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    systemc_ams::scope::args::lint_only_or_reject(
        rest,
        "cargo run --example rf_transceiver -- [--lint-only] [--trace FILE] [--report]",
    )?;
    let mut trace = systemc_ams::scope::ScopeTrace::new();
    let mut metrics = systemc_ams::scope::MetricsRegistry::new();

    println!("QPSK over AWGN ({SPS} samples/symbol, carrier = {CARRIER_CYCLES_PER_SYMBOL}×symbol rate)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "Eb/N0 dB", "BER meas", "BER theory", "bits"
    );
    let mut rows = Vec::new();
    for &ebn0 in &[0.0, 2.0, 4.0, 6.0, 8.0] {
        let symbols = if ebn0 >= 6.0 { 120_000 } else { 30_000 };
        let (ber, bits) = run_link(ebn0, symbols, 1, scope.enabled().then_some(&mut trace))?;
        metrics.record("link.ber", ber);
        metrics.counter_add("link.bits", bits);
        let theory = qpsk_theoretical_ber(ebn0);
        println!("{ebn0:>10.1} {ber:>12.5} {theory:>12.5} {bits:>10}");
        rows.push((ebn0, ber, theory));
    }

    for &(ebn0, ber, theory) in &rows {
        if theory > 1e-4 {
            // Enough statistics for a ±35 % check.
            assert!(
                (ber - theory).abs() / theory < 0.35,
                "Eb/N0 {ebn0} dB: measured {ber:.5} vs theory {theory:.5}"
            );
        }
    }
    // Waterfall: monotone decreasing.
    assert!(rows.windows(2).all(|w| w[1].1 <= w[0].1));

    if scope.enabled() {
        scope.emit(&trace, &metrics)?;
    }
    println!("\nrf_transceiver OK (measured BER tracks ½·erfc(√(Eb/N0)))");
    Ok(())
}
