//! Quickstart: the smallest heterogeneous model — continuous-time,
//! dataflow and discrete-event parts in one simulation.
//!
//! Topology:
//!
//! ```text
//!  sine (TDF) ──► RC low-pass (CT solver in TDF) ──► comparator (TDF)
//!                                                        │ to_de
//!                                          DE counter ◄──┘ (kernel process)
//! ```
//!
//! Run with `cargo run --example quickstart -- [--trace trace.json] [--report]`.

use std::cell::RefCell;
use std::rc::Rc;
use systemc_ams::blocks::{Comparator, LtiFilter, SineSource};
use systemc_ams::core::{AmsSimulator, TdfGraph};
use systemc_ams::kernel::SimTime;
use systemc_ams::wave::{write_csv, VcdRecorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--trace <path>` emits a Chrome trace of the run; `--report`
    // prints a span/metric summary.
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    systemc_ams::scope::args::lint_only_or_reject(
        rest,
        "cargo run --example quickstart -- [--lint-only] [--trace FILE] [--report]",
    )?;

    let mut sim = AmsSimulator::new();
    sim.set_tracing(scope.enabled());

    // DE side: a signal carrying the comparator decision and a process
    // counting its rising edges (a stand-in for "control software").
    let cmp_de = sim.kernel_mut().signal("cmp", 0.0f64);
    let edges = Rc::new(RefCell::new(0u32));
    let edges_in_process = edges.clone();
    let prev = Rc::new(RefCell::new(0.0f64));
    let counter = sim.kernel_mut().add_process("edge_counter", move |ctx| {
        let v = ctx.read(cmp_de);
        let mut p = prev.borrow_mut();
        if *p < 0.5 && v >= 0.5 {
            *edges_in_process.borrow_mut() += 1;
        }
        *p = v;
    });
    let ev = sim.kernel().signal_event(cmp_de);
    sim.kernel_mut().make_sensitive(counter, ev);
    sim.kernel_mut().dont_initialize(counter);

    // Record the DE-side comparator signal as VCD for waveform viewers.
    let vcd = VcdRecorder::new();
    vcd.record_real(sim.kernel_mut(), cmp_de);

    // TDF side: 50 Hz sine → 200 Hz RC low-pass → comparator at 0 V.
    let mut g = TdfGraph::new("frontend");
    let raw = g.signal("raw");
    let filtered = g.signal("filtered");
    let decision = g.signal("decision");
    let probe = g.probe(filtered);

    g.add_module(
        "sine",
        SineSource::new(raw.writer(), 50.0, 1.0, Some(SimTime::from_us(100))),
    );
    g.add_module(
        "rc",
        LtiFilter::low_pass1(raw.reader(), filtered.writer(), 200.0, None)?,
    );
    g.add_module(
        "cmp",
        Comparator::new(filtered.reader(), decision.writer(), 0.0),
    );
    g.to_de("cmp_out", decision, cmp_de);

    // `--lint-only`: run the static checks and report instead of
    // simulating (exit status 1 on any error-severity diagnostic).
    if systemc_ams::lint::lint_only_requested() {
        systemc_ams::lint::exit_lint_only(&[g.lint()]);
    }

    sim.add_cluster(g)?;

    // Run 200 ms = 10 sine periods.
    sim.run_until(SimTime::from_ms(200))?;

    let filtered_peak = probe.values().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    println!("simulated time      : {}", sim.now());
    println!("tdf samples recorded: {}", probe.len());
    println!("filtered peak       : {filtered_peak:.4} V (50 Hz through 200 Hz pole)");
    println!(
        "comparator edges    : {} (expect 10 rising edges)",
        edges.borrow()
    );

    assert_eq!(*edges.borrow(), 10, "one rising edge per sine period");
    // |H| at 50 Hz with 200 Hz cutoff = 1/√(1+(50/200)²) ≈ 0.970.
    assert!((filtered_peak - 0.970).abs() < 0.02);

    // Export waveforms: VCD of the DE signal, CSV of the TDF probe.
    let out_dir = std::path::Path::new("target/quickstart");
    std::fs::create_dir_all(out_dir)?;
    let mut vcd_file = std::fs::File::create(out_dir.join("comparator.vcd"))?;
    vcd.write(&mut vcd_file)?;
    let samples = probe.samples();
    let mut csv_file = std::fs::File::create(out_dir.join("filtered.csv"))?;
    write_csv(&mut csv_file, &[("filtered", &samples)])?;
    println!("waveforms written    : target/quickstart/{{comparator.vcd, filtered.csv}}");

    if scope.enabled() {
        let trace = sim.take_trace();
        let mut metrics = systemc_ams::scope::MetricsRegistry::new();
        let ks = sim.kernel().stats();
        metrics.counter_add("kernel.delta_cycles", ks.delta_cycles);
        metrics.counter_add("kernel.activations", ks.activations);
        metrics.counter_add("kernel.timed_events", ks.timed_events);
        scope.emit(&trace, &metrics)?;
    }
    println!("quickstart OK");
    Ok(())
}
