//! Reproduction of **Figure 1** of the paper: the "simplified block
//! diagram of a subscriber line interface and codec filter" used in ADSL
//! networks — the paper's showcase for heterogeneous mixed-signal
//! modeling. Every annotation in the figure maps to a model here:
//!
//! | Figure 1 annotation | this example |
//! |---|---|
//! | "Linear networks (results in linear DAE's)" — subscriber + line | RC line network in an embedded MNA solver |
//! | "High voltage driver" | tanh-compression amplifier |
//! | analog filters ("mixed signal circuit") | continuous biquad anti-alias filter |
//! | "Σ∆ prefi" | 2nd-order sigma-delta modulator |
//! | digital filters (dataflow) | CIC decimator + FIR low-pass |
//! | "DSP algorithm" (dataflow) | in-band power estimator |
//! | "software controller" (event driven) | DE process implementing an AGC loop |
//! | "modules with frequency domain behavior" | AC sweep over the same TDF graph |
//!
//! Run with `cargo run --release --example adsl_frontend -- \
//!   [--trace trace.json] [--report]`.

use systemc_ams::blocks::{CicDecimator, FirFilter, LtiFilter, Product, SineSource, TanhAmp};
use systemc_ams::core::{
    AmsSimulator, CoreError, CtModule, NetlistCtSolver, TdfGraph, TdfIn, TdfIo, TdfModule, TdfOut,
    TdfSetup,
};
use systemc_ams::kernel::SimTime;
use systemc_ams::math::fft::Window;
use systemc_ams::net::{Circuit, IntegrationMethod, Waveform};
use systemc_ams::wave::{analyze_sine, largest_pow2_len};

/// The "DSP algorithm" block: sliding mean-square power estimator.
struct PowerEstimator {
    inp: TdfIn,
    out: TdfOut,
    acc: f64,
    alpha: f64,
}

impl TdfModule for PowerEstimator {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = io.read1(self.inp);
        self.acc = self.alpha * self.acc + (1.0 - self.alpha) * x * x;
        io.write1(self.out, self.acc);
        Ok(())
    }
}

/// Builds the subscriber-line model: driver output through a protection
/// resistor onto a 600 Ω line with shunt capacitance (one-pole "linear
/// network (results in linear DAE's)").
fn subscriber_line() -> Result<
    (Circuit, systemc_ams::net::InputId, systemc_ams::net::NodeId),
    systemc_ams::net::NetError,
> {
    let mut ckt = Circuit::new();
    let drive = ckt.node("drive");
    let line = ckt.node("line");
    let sub = ckt.node("subscriber");
    let input = ckt.external_input();
    ckt.voltage_source_wave("Vdrv", drive, Circuit::GROUND, Waveform::External(input))?;
    ckt.resistor("Rprot", drive, line, 50.0)?; // protection network
    ckt.capacitor("Cline", line, Circuit::GROUND, 20e-9)?; // line capacitance
    ckt.resistor("Rline", line, sub, 130.0)?; // loop resistance
    ckt.resistor("Rsub", sub, Circuit::GROUND, 600.0)?; // subscriber termination
    ckt.capacitor("Csub", sub, Circuit::GROUND, 10e-9)?;
    Ok((ckt, input, sub))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--trace <path>` / `--report`: span tracing across the kernel,
    // the cluster and the embedded line solver.
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    systemc_ams::scope::args::lint_only_or_reject(
        rest,
        "cargo run --example adsl_frontend -- [--lint-only] [--trace FILE] [--report]",
    )?;

    let mut sim = AmsSimulator::new();
    sim.set_tracing(scope.enabled());

    // ---- DE side: the "software controller" (AGC). -----------------------
    let power_de = sim.kernel_mut().signal("power", 0.0f64);
    let gain_de = sim.kernel_mut().signal("tx_gain", 1.0f64);
    let target_power = 0.02; // V² at the DSP output
    let ctrl = sim.kernel_mut().add_process("agc", move |ctx| {
        let p = ctx.read(power_de);
        let g = ctx.read(gain_de);
        // Multiplicative AGC update, clamped to a sane range.
        let adj = if p > 1e-12 {
            (target_power / p).powf(0.1).clamp(0.7, 1.3)
        } else {
            1.2
        };
        ctx.write(gain_de, (g * adj).clamp(0.05, 20.0));
        ctx.next_trigger_in(SimTime::from_us(500)); // 2 kHz control loop
    });
    let _ = ctrl;

    // ---- TDF side: the analog/dataflow front end. ------------------------
    let fs = SimTime::from_us(1); // 1 MHz base rate
    let mut g = TdfGraph::new("slic");

    let tone = g.signal("tone");
    let gain_ctl = g.from_de("gain_ctl", gain_de);
    let scaled = g.signal("scaled");
    let driven = g.signal("driven");
    let line_out = g.signal("line_out");
    let anti_alias = g.signal("anti_alias");
    let bitstream = g.signal("bitstream");
    let decimated = g.signal("decimated");
    let digital = g.signal("digital");
    let power = g.signal("power");

    let p_digital = g.probe(digital);
    let p_line = g.probe(line_out);

    // 5 kHz test tone (in the ADSL-lite POTS band).
    g.add_module(
        "tone",
        SineSource::new(tone.writer(), 5_000.0, 0.5, Some(fs)).with_ac_magnitude(1.0),
    );
    // AGC-scaled drive.
    g.add_module(
        "tx_gain",
        Product::new(tone.reader(), gain_ctl.reader(), scaled.writer()).with_ac_gain_from_a(1.0),
    );
    // High-voltage line driver with soft clipping at ±12 V.
    g.add_module(
        "hv_driver",
        TanhAmp::new(scaled.reader(), driven.writer(), 4.0, 12.0),
    );
    // The subscriber line as an embedded conservative-law network.
    let (ckt, line_in, sub_node) = subscriber_line()?;
    let line_solver = NetlistCtSolver::new(
        &ckt,
        IntegrationMethod::Trapezoidal,
        vec![line_in],
        vec![sub_node],
    )?;
    g.add_module(
        "line",
        CtModule::new(
            "line",
            Box::new(line_solver),
            vec![driven.reader()],
            vec![line_out.writer()],
            None,
        ),
    );
    // Anti-alias biquad before the Σ∆ prefi (20 kHz, Butterworth-ish Q).
    g.add_module(
        "anti_alias",
        LtiFilter::biquad_low_pass(
            line_out.reader(),
            anti_alias.writer(),
            20_000.0,
            0.707,
            None,
        )?,
    );
    // Σ∆ prefi at the 1 MHz base rate.
    g.add_module(
        "sd_prefi",
        systemc_ams::blocks::SigmaDelta2::new(anti_alias.reader(), bitstream.writer()),
    );
    // CIC decimation ×16 → 62.5 kHz.
    g.add_module(
        "cic",
        CicDecimator::new(bitstream.reader(), decimated.writer(), 16, 2),
    );
    // Digital channel filter (dataflow FIR, cutoff 0.16·fs ≈ 10 kHz).
    g.add_module(
        "chan_fir",
        FirFilter::lowpass_design(decimated.reader(), digital.writer(), 63, 0.16),
    );
    // "DSP algorithm": power estimate fed back to the controller.
    g.add_module(
        "dsp_power",
        PowerEstimator {
            inp: digital.reader(),
            out: power.writer(),
            acc: 0.0,
            alpha: 0.995,
        },
    );
    g.to_de("power_out", power, power_de);

    // `--lint-only`: static checks on both the TDF graph and the
    // embedded subscriber-line netlist.
    if systemc_ams::lint::lint_only_requested() {
        systemc_ams::lint::exit_lint_only(&[
            g.lint(),
            systemc_ams::lint::lint_circuit("subscriber_line", &ckt),
        ]);
    }

    let cluster = sim.add_cluster(g)?;

    // ---- Frequency-domain view (the "*" modules in Figure 1). ------------
    let freqs: Vec<f64> = systemc_ams::lti::log_space(100.0, 100_000.0, 61)?;
    let ac = cluster.ac_analysis(&freqs)?;
    let mag = ac.mag_db(anti_alias);
    let f3 = freqs
        .iter()
        .zip(&mag)
        .find(|(_, m)| **m < mag[0] - 3.0)
        .map(|(f, _)| *f)
        .unwrap_or(f64::NAN);
    println!("AC sweep of the analog front end ({} points):", freqs.len());
    println!("  passband gain  : {:.2} dB", mag[0]);
    println!("  -3 dB corner   : {f3:.0} Hz (line pole + 20 kHz anti-alias)");

    // ---- Time-domain run: 80 ms (AGC settles, then measure). -------------
    sim.run_until(SimTime::from_ms(80))?;

    let gain_final = sim.kernel().peek(gain_de);
    let power_final = sim.kernel().peek(power_de);
    println!("AGC after 80 ms:");
    println!("  tx gain        : {gain_final:.3}");
    println!("  dsp power      : {power_final:.5} V² (target {target_power})");

    // In-band quality of the digital output (skip the AGC settling).
    let digital_rate = 62_500.0;
    let all = p_digital.values();
    let settled = &all[all.len() / 2..];
    let n = largest_pow2_len(settled.len());
    let metrics = analyze_sine(
        &settled[settled.len() - n..],
        digital_rate,
        Window::Blackman,
    )?;
    println!("digital output quality (last {n} samples):");
    println!("  fundamental    : {:.0} Hz", metrics.fundamental_hz);
    println!("  SNR            : {:.1} dB", metrics.snr_db);
    println!("  SINAD          : {:.1} dB", metrics.sinad_db);
    println!("  ENOB           : {:.1} bits", metrics.enob);
    println!(
        "line peak at subscriber: {:.2} V",
        p_line.values().iter().fold(0.0f64, |a, &b| a.max(b.abs()))
    );

    assert!(
        (metrics.fundamental_hz - 5000.0).abs() < 200.0,
        "tone recovered"
    );
    assert!(metrics.snr_db > 40.0, "in-band SNR should exceed 40 dB");
    assert!(
        (power_final - target_power).abs() / target_power < 0.25,
        "AGC regulated the power"
    );

    if scope.enabled() {
        let trace = sim.take_trace();
        let mut metrics = systemc_ams::scope::MetricsRegistry::new();
        let ks = sim.kernel().stats();
        metrics.counter_add("kernel.delta_cycles", ks.delta_cycles);
        metrics.counter_add("kernel.activations", ks.activations);
        metrics.counter_add("kernel.timed_events", ks.timed_events);
        metrics.gauge_set("agc.gain_final", gain_final);
        metrics.gauge_set("agc.power_final", power_final);
        scope.emit(&trace, &metrics)?;
    }
    println!("adsl_frontend OK");
    Ok(())
}
