//! Phase 2 extension: a behavioural **phase-locked loop** assembled
//! entirely from library blocks — multiplier phase detector, PI loop
//! filter, VCO — with the feedback loop broken by a one-sample TDF delay
//! (the paper's dataflow-delay mechanism for cyclic signal-flow graphs).
//!
//! The PLL centre frequency is 95 kHz with Kv = 20 kHz/V; it must pull in
//! and lock to reference tones several kHz away. At lock the mean VCO
//! control voltage is exactly `(f_ref − f₀)/Kv`, which the example checks
//! for two reference frequencies, along with the locked VCO frequency
//! measured by cycle counting.
//!
//! Run with `cargo run --release --example pll_lock -- \
//!   [--trace trace.json] [--report]`.

use systemc_ams::blocks::{Gain, Integrator, Product, SineSource, Sum, UnitDelay, Vco};
use systemc_ams::core::TdfGraph;
use systemc_ams::kernel::SimTime;

const F0: f64 = 95_000.0; // VCO centre, Hz
const KV: f64 = 20_000.0; // VCO gain, Hz/V
const FS: u64 = 500; // sample period 500 ns → 2 MHz

/// Runs the loop against one reference frequency; returns
/// (mean control voltage, measured VCO frequency) over the settled tail.
/// With a trace sink, the cluster's spans land on a per-f_ref track.
fn run_pll(
    f_ref: f64,
    t_end_ms: u64,
    trace: Option<&mut systemc_ams::scope::ScopeTrace>,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let mut g = TdfGraph::new("pll");
    let reference = g.signal("ref");
    let vco_out = g.signal("vco_out");
    let vco_fb = g.signal("vco_fb");
    let pd = g.signal("pd");
    let prop = g.signal("prop");
    let integ = g.signal("integ");
    let integ_scaled = g.signal("integ_scaled");
    let ctrl = g.signal("ctrl");

    let p_ctrl = g.probe(ctrl);
    let p_vco = g.probe(vco_out);

    // Loop design: Kpd = 0.5 (unit-amplitude multiplier), Kv in rad/s/V.
    // ω_n = √(Kpd·Kv·ki) ≈ 2π·1 kHz, ζ ≈ 0.7.
    let kv_rad = 2.0 * std::f64::consts::PI * KV;
    let ki = (2.0 * std::f64::consts::PI * 1000.0f64).powi(2) / (0.5 * kv_rad);
    let kp = 2.0 * 0.7 * (ki / (0.5 * kv_rad)).sqrt();

    g.add_module(
        "ref",
        SineSource::new(reference.writer(), f_ref, 1.0, Some(SimTime::from_ns(FS))),
    );
    // Multiplier phase detector on the delayed VCO output (loop delay).
    g.add_module(
        "pd",
        Product::new(reference.reader(), vco_fb.reader(), pd.writer()),
    );
    // PI loop filter.
    g.add_module("kp", Gain::new(pd.reader(), prop.writer(), kp));
    g.add_module("int", Integrator::new(pd.reader(), integ.writer()));
    g.add_module("ki", Gain::new(integ.reader(), integ_scaled.writer(), ki));
    g.add_module(
        "sum",
        Sum::new(prop.reader(), integ_scaled.reader(), ctrl.writer()),
    );
    // VCO and the delay that closes the loop.
    g.add_module("vco", Vco::new(ctrl.reader(), vco_out.writer(), F0, KV));
    g.add_module("z1", UnitDelay::new(vco_out.reader(), vco_fb.writer(), 0.0));

    // `--lint-only`: report the static checks instead of simulating.
    if systemc_ams::lint::lint_only_requested() {
        systemc_ams::lint::exit_lint_only(&[g.lint()]);
    }

    let mut c = g.elaborate()?;
    if trace.is_some() {
        c.set_tracing(true);
    }
    let iterations = t_end_ms * 1_000_000 / FS;
    c.run_standalone(iterations)?;
    if let Some(sink) = trace {
        for (source, events) in c.take_traces() {
            sink.add_track(format!("fref-{f_ref:.0}Hz"), source, events);
        }
    }

    // Measure over the last half (settled).
    let ctrl_v = p_ctrl.values();
    let tail = &ctrl_v[ctrl_v.len() / 2..];
    let mean_ctrl = tail.iter().sum::<f64>() / tail.len() as f64;

    let vco_v = p_vco.values();
    let tail_v = &vco_v[vco_v.len() / 2..];
    let crossings = tail_v
        .windows(2)
        .filter(|w| w[0] < 0.0 && w[1] >= 0.0)
        .count();
    let tail_secs = tail_v.len() as f64 * FS as f64 * 1e-9;
    let f_vco = crossings as f64 / tail_secs;
    Ok((mean_ctrl, f_vco))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--trace <path>` / `--report`: one trace track per reference tone.
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    systemc_ams::scope::args::lint_only_or_reject(
        rest,
        "cargo run --example pll_lock -- [--lint-only] [--trace FILE] [--report]",
    )?;
    let mut trace = systemc_ams::scope::ScopeTrace::new();
    let mut metrics = systemc_ams::scope::MetricsRegistry::new();

    println!("type-II PLL: f0 = {F0} Hz, Kv = {KV} Hz/V, ωn ≈ 2π·1 kHz, ζ ≈ 0.7\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>12}",
        "f_ref", "ctrl (V)", "expected (V)", "f_vco (Hz)", "freq error"
    );
    for &f_ref in &[98_000.0, 100_000.0, 104_000.0] {
        let (ctrl, f_vco) = run_pll(f_ref, 30, scope.enabled().then_some(&mut trace))?;
        metrics.gauge_set(&format!("pll.ctrl_v.{f_ref:.0}"), ctrl);
        metrics.gauge_set(&format!("pll.f_vco.{f_ref:.0}"), f_vco);
        let expected = (f_ref - F0) / KV;
        println!(
            "{f_ref:>10.0} {ctrl:>14.4} {expected:>14.4} {f_vco:>14.0} {:>12.4}",
            (f_vco - f_ref).abs() / f_ref
        );
        assert!(
            (ctrl - expected).abs() < 0.02,
            "f_ref {f_ref}: ctrl {ctrl} vs {expected}"
        );
        assert!(
            (f_vco - f_ref).abs() / f_ref < 0.005,
            "f_ref {f_ref}: locked at {f_vco}"
        );
    }
    if scope.enabled() {
        scope.emit(&trace, &metrics)?;
    }
    println!("\npll_lock OK (loop pulls in and tracks over ±9 kHz)");
    Ok(())
}
