//! Seed work [8] (Grimm et al., *AnalogSL*, FDL 2001): switch-level
//! simulation of **analog power drivers** — "a dedicated framework … for
//! an efficient simulation of a specific family of power circuits, namely
//! power drivers with capacitive or inductive loads", coupled simply and
//! efficiently with the discrete-time world.
//!
//! A PWM-driven synchronous buck stage drives an RL load modeled as a
//! conservative network with ideal switches. DE processes generate the
//! PWM gate commands; the paper's phase-3 combination of event-driven
//! control and switch-level conservative simulation.
//!
//! Reported: average load current and ripple vs. PWM frequency (the
//! classic ripple ∝ 1/f_pwm law), plus the duty-cycle → current law.
//!
//! Run with `cargo run --release --example power_driver -- \
//!   [--trace trace.json] [--report]`.

use std::cell::RefCell;
use std::rc::Rc;
use systemc_ams::kernel::{Kernel, SimTime};
use systemc_ams::math::stats::Running;
use systemc_ams::net::{Circuit, ElementId, IntegrationMethod, NodeId, TransientSolver};

const VSUPPLY: f64 = 24.0;
const R_LOAD: f64 = 2.0;
const L_LOAD: f64 = 1e-3;

/// Builds the buck power stage: high-side switch from the supply, low-side
/// freewheeling switch to ground, series RL load.
#[allow(clippy::type_complexity)]
fn power_stage(
) -> Result<(Circuit, ElementId, ElementId, ElementId, NodeId), Box<dyn std::error::Error>> {
    let mut ckt = Circuit::new();
    let vcc = ckt.node("vcc");
    let sw = ckt.node("sw");
    let mid = ckt.node("mid");
    ckt.voltage_source("Vcc", vcc, Circuit::GROUND, VSUPPLY)?;
    let hi = ckt.switch("S_high", vcc, sw, 0.05, 1e8, false)?;
    let lo = ckt.switch("S_low", sw, Circuit::GROUND, 0.05, 1e8, true)?;
    ckt.resistor("Rload", sw, mid, R_LOAD)?;
    let l = ckt.inductor("Lload", mid, Circuit::GROUND, L_LOAD)?;
    Ok((ckt, hi, lo, l, sw))
}

/// Runs the stage at one PWM frequency/duty and returns
/// (mean current, peak-to-peak ripple). With a trace sink, the solver
/// and kernel spans land on a per-operating-point track.
fn run_pwm(
    f_pwm: f64,
    duty: f64,
    trace: Option<&mut systemc_ams::scope::ScopeTrace>,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    // Settle for 5 load time constants before measuring 30 PWM periods,
    // so the ripple measurement is free of the start-up exponential.
    let tau = L_LOAD / R_LOAD;
    let settle_periods = (5.0 * tau * f_pwm).ceil() as u32;
    let periods = settle_periods + 30;
    let (ckt, hi, lo, l_elem, _sw) = power_stage()?;
    let solver = Rc::new(RefCell::new(TransientSolver::new(
        &ckt,
        IntegrationMethod::Trapezoidal,
    )?));
    if trace.is_some() {
        solver.borrow_mut().set_tracing(true);
    }
    solver.borrow_mut().initialize_dc()?;

    // DE side: a process toggles the gates at the PWM rate, stepping the
    // conservative solver between events (hardware-in-the-loop style
    // co-simulation: the DE kernel owns time, the network follows).
    let mut kernel = Kernel::new();
    kernel.set_tracing(trace.is_some());
    let period = SimTime::from_seconds(1.0 / f_pwm);
    let on_time = SimTime::from_seconds(duty / f_pwm);
    let h = 1.0 / f_pwm / 200.0; // 200 steps per PWM period

    let stats = Rc::new(RefCell::new(Running::new()));
    let stats_in = stats.clone();
    let solver_in = solver.clone();
    let mut phase_on = false;
    let mut cycle: u32 = 0;
    kernel.add_process("pwm", move |ctx| {
        let mut s = solver_in.borrow_mut();
        // Advance the network to 'now'.
        let t_target = ctx.now().to_seconds();
        while s.time() < t_target - h / 2.0 {
            s.step(h).expect("transient step");
            if cycle >= settle_periods {
                let i = s.current(l_elem).expect("inductor current");
                stats_in.borrow_mut().add(i);
            }
        }
        // Toggle the bridge.
        if phase_on {
            s.set_switch(hi, false).expect("switch");
            s.set_switch(lo, true).expect("switch");
            phase_on = false;
            ctx.next_trigger_in(period - on_time);
            cycle += 1;
        } else {
            s.set_switch(hi, true).expect("switch");
            s.set_switch(lo, false).expect("switch");
            phase_on = true;
            ctx.next_trigger_in(on_time);
        }
    });
    kernel.run_until(period * u64::from(periods))?;

    if let Some(sink) = trace {
        let label = format!("pwm-{f_pwm:.0}Hz-d{duty}");
        let solver_events = solver.borrow_mut().take_trace_events();
        if !solver_events.is_empty() {
            sink.add_track(label.clone(), "solver", solver_events);
        }
        let kernel_events = kernel.take_trace_events();
        if !kernel_events.is_empty() {
            sink.add_track(label, "kernel", kernel_events);
        }
    }

    let st = stats.borrow();
    Ok((st.mean(), st.peak_to_peak()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--trace <path>` / `--report`: one track per PWM operating point.
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    systemc_ams::scope::args::lint_only_or_reject(
        rest,
        "cargo run --example power_driver -- [--lint-only] [--trace FILE] [--report]",
    )?;
    let mut trace = systemc_ams::scope::ScopeTrace::new();
    let mut obs = systemc_ams::scope::MetricsRegistry::new();

    // `--lint-only`: static checks on the power stage netlist.
    if systemc_ams::lint::lint_only_requested() {
        let (ckt, _, _, _, _) = power_stage()?;
        systemc_ams::lint::exit_lint_only(&[systemc_ams::lint::lint_circuit("power_stage", &ckt)]);
    }

    println!("synchronous buck driver: {VSUPPLY} V supply, R = {R_LOAD} Ω, L = {L_LOAD} H\n");

    // --- Ripple vs PWM frequency at 50 % duty. ----------------------------
    println!("ripple vs PWM frequency (duty = 0.5):");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "f_pwm", "mean I (A)", "ripple (A)", "analytic (A)"
    );
    let mut ripples = Vec::new();
    for &f in &[2_000.0, 5_000.0, 10_000.0, 20_000.0] {
        let (mean, ripple) = run_pwm(f, 0.5, scope.enabled().then_some(&mut trace))?;
        obs.record("pwm.ripple_a", ripple);
        obs.counter_add("pwm.runs", 1);
        // Analytic triangular ripple (τ = L/R ≫ T): ΔI ≈ V·d(1−d)/(L·f).
        let analytic = VSUPPLY * 0.25 / (L_LOAD * f);
        println!("{f:>10.0} {mean:>12.3} {ripple:>14.4} {analytic:>14.4}");
        ripples.push((f, ripple, analytic));
    }

    // --- Mean current vs duty at 10 kHz. ----------------------------------
    println!("\nmean current vs duty (f = 10 kHz):");
    println!("{:>8} {:>12} {:>12}", "duty", "mean I (A)", "V·d/R (A)");
    let mut duty_results = Vec::new();
    for &d in &[0.2, 0.4, 0.6, 0.8] {
        let (mean, _) = run_pwm(10_000.0, d, scope.enabled().then_some(&mut trace))?;
        obs.record("pwm.mean_current_a", mean);
        obs.counter_add("pwm.runs", 1);
        println!("{d:>8.1} {mean:>12.3} {:>12.3}", VSUPPLY * d / R_LOAD);
        duty_results.push((d, mean));
    }

    // --- Assertions: the physics the paper's power framework targets. -----
    for &(f, ripple, analytic) in &ripples {
        assert!(
            (ripple - analytic).abs() / analytic < 0.15,
            "ripple at {f} Hz: {ripple:.4} vs analytic {analytic:.4}"
        );
    }
    // Ripple halves when frequency doubles.
    let r2k = ripples[0].1;
    let r20k = ripples[3].1;
    assert!(
        (r2k / r20k - 10.0).abs() < 1.5,
        "ripple ∝ 1/f: {r2k:.4} vs {r20k:.4}"
    );
    for &(d, mean) in &duty_results {
        let expect = VSUPPLY * d / R_LOAD;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "duty {d}: mean {mean:.3} vs {expect:.3}"
        );
    }
    if scope.enabled() {
        scope.emit(&trace, &obs)?;
    }
    println!("\npower_driver OK");
    Ok(())
}
