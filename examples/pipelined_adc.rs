//! Seed work [2] (Bonnerud, Hernes, Ytterdal — CICC 2001): a mixed-signal
//! functional-level simulation of a **pipelined A/D converter** with
//! digital noise cancellation, used in the paper as evidence that a
//! SystemC-based framework can explore converter architectures "at a more
//! abstract level, while achieving comparable accuracy to MATLAB".
//!
//! This example sweeps comparator offset and stage gain error across a
//! 9-stage, 1.5-bit/stage pipeline and reports ENOB with the digital
//! correction enabled and disabled. The analytic ideal-quantizer line
//! (6.02·N + 1.76 dB) plays the role of the MATLAB reference model.
//!
//! Run with `cargo run --release --example pipelined_adc -- \
//!   [--trace trace.json] [--report]`.

use systemc_ams::blocks::{ideal_sine_snr_db, PipelinedAdc, SineSource, StageErrors};
use systemc_ams::core::TdfGraph;
use systemc_ams::kernel::SimTime;
use systemc_ams::math::fft::Window;
use systemc_ams::wave::analyze_sine;

const STAGES: usize = 9;
const VREF: f64 = 1.0;
const N_FFT: u64 = 8192;

/// Runs one converter configuration on a coherent near-full-scale sine
/// and returns the measured ENOB. With a trace sink, the cluster's spans
/// land on a track named by the given label.
fn measure_enob(
    errors: &[StageErrors],
    correction: bool,
    trace: Option<(&mut systemc_ams::scope::ScopeTrace, &str)>,
) -> f64 {
    let mut g = TdfGraph::new("adc");
    let analog = g.signal("analog");
    let code = g.signal("code");
    let probe = g.probe(code);
    // Coherent sampling: 389 cycles in 8192 samples (mutually prime).
    let fs = 1.0e6;
    let f_in = 389.0 * fs / N_FFT as f64;
    g.add_module(
        "src",
        SineSource::new(
            analog.writer(),
            f_in,
            0.95 * VREF,
            Some(SimTime::from_us(1)),
        ),
    );
    g.add_module(
        "adc",
        PipelinedAdc::new(analog.reader(), code.writer(), STAGES, VREF)
            .with_errors(errors)
            .with_correction(correction),
    );
    let mut c = g.elaborate().expect("valid graph");
    if trace.is_some() {
        c.set_tracing(true);
    }
    c.run_standalone(N_FFT).expect("clean run");
    if let Some((sink, label)) = trace {
        for (source, events) in c.take_traces() {
            sink.add_track(label.to_string(), source, events);
        }
    }
    let metrics = analyze_sine(&probe.values(), fs, Window::Blackman).expect("analysis");
    metrics.enob
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--trace <path>` / `--report`: span tracing of the ideal-pipeline
    // reference run.
    let (scope, rest) = systemc_ams::scope::args::scope_args()?;
    systemc_ams::scope::args::lint_only_or_reject(
        rest,
        "cargo run --example pipelined_adc -- [--lint-only] [--trace FILE] [--report]",
    )?;
    let mut trace = systemc_ams::scope::ScopeTrace::new();

    // `--lint-only`: static checks on a representative configuration.
    if systemc_ams::lint::lint_only_requested() {
        let mut g = TdfGraph::new("adc");
        let analog = g.signal("analog");
        let code = g.signal("code");
        let _probe = g.probe(code);
        g.add_module(
            "src",
            SineSource::new(
                analog.writer(),
                1.0e3,
                0.95 * VREF,
                Some(SimTime::from_us(1)),
            ),
        );
        g.add_module(
            "adc",
            PipelinedAdc::new(analog.reader(), code.writer(), STAGES, VREF),
        );
        systemc_ams::lint::exit_lint_only(&[g.lint()]);
    }

    let ideal_bits = (STAGES + 1) as f64;
    println!("pipelined ADC: {STAGES} stages of 1.5 bit, Vref = {VREF} V");
    println!(
        "ideal quantizer reference: {:.2} dB SNR = {:.1} bits\n",
        ideal_sine_snr_db(ideal_bits as u32),
        ideal_bits
    );

    // --- Sweep 1: comparator offset. -------------------------------------
    println!("comparator offset sweep (gain error = 0):");
    println!(
        "{:>12} {:>18} {:>18}",
        "offset/Vref", "ENOB corrected", "ENOB uncorrected"
    );
    let mut corrected_at_10pct = 0.0;
    let mut uncorrected_at_10pct = 0.0;
    for &off_frac in &[0.0, 0.01, 0.05, 0.10, 0.20, 0.30] {
        let errors = vec![
            StageErrors {
                comparator_offset: off_frac * VREF,
                ..Default::default()
            };
            STAGES
        ];
        let with = measure_enob(&errors, true, None);
        let without = measure_enob(&errors, false, None);
        println!("{off_frac:>12.2} {with:>18.2} {without:>18.2}");
        if (off_frac - 0.10).abs() < 1e-9 {
            corrected_at_10pct = with;
            uncorrected_at_10pct = without;
        }
    }

    // --- Sweep 2: inter-stage gain error (not corrected by redundancy). --
    println!("\nstage gain error sweep (offset = 0, correction on):");
    println!("{:>12} {:>10}", "gain error", "ENOB");
    for &ge in &[0.0, 0.001, 0.005, 0.01, 0.02] {
        let errors = vec![
            StageErrors {
                gain_error: ge,
                ..Default::default()
            };
            STAGES
        ];
        let enob = measure_enob(&errors, true, None);
        println!("{ge:>12.3} {enob:>10.2}");
    }

    // --- Assertions: the architectural claims of seed work [2]. ----------
    let ideal_enob = measure_enob(
        &vec![StageErrors::default(); STAGES],
        true,
        scope.enabled().then_some((&mut trace, "ideal")),
    );
    assert!(
        (ideal_enob - ideal_bits).abs() < 0.7,
        "ideal pipeline ≈ {ideal_bits} bits, measured {ideal_enob:.2}"
    );
    assert!(
        corrected_at_10pct > ideal_bits - 1.0,
        "correction absorbs 10% comparator offset: {corrected_at_10pct:.2}"
    );
    assert!(
        uncorrected_at_10pct < corrected_at_10pct - 3.0,
        "without correction the same offset costs >3 bits: {uncorrected_at_10pct:.2}"
    );
    if scope.enabled() {
        let mut metrics = systemc_ams::scope::MetricsRegistry::new();
        metrics.gauge_set("adc.ideal_enob_bits", ideal_enob);
        metrics.gauge_set("adc.corrected_enob_at_10pct", corrected_at_10pct);
        metrics.gauge_set("adc.uncorrected_enob_at_10pct", uncorrected_at_10pct);
        scope.emit(&trace, &metrics)?;
    }
    println!("\npipelined_adc OK (ideal {ideal_enob:.2} bits ≈ analytic {ideal_bits} bits)");
    Ok(())
}
