//! The DESIGN.md diagnostic-code tables and the compiled registries —
//! `ams-lint::codes` (LNT/SPC, severities) and `ams-monitor::codes`
//! (MON, always `fail`) — must list exactly the same codes with the
//! same severity/verdict column. Meaning strings are prose and may
//! drift; codes and severities are contract and may not.

use std::collections::BTreeMap;
use systemc_ams::lint::codes;

/// Parses `| CODE | severity | …` rows from DESIGN.md's code table.
fn documented_codes(design: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for line in design.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // A table row splits into ["", CODE, severity, meaning, ""].
        if cells.len() < 4 {
            continue;
        }
        let code = cells[1];
        let is_code = code.len() == 6
            && code[..3].chars().all(|c| c.is_ascii_uppercase())
            && code[3..].chars().all(|c| c.is_ascii_digit());
        if is_code {
            out.insert(code.to_string(), cells[2].to_string());
        }
    }
    out
}

#[test]
fn design_doc_code_table_matches_compiled_registry() {
    // Root-package integration tests run with CWD = the package root.
    let design = std::fs::read_to_string("DESIGN.md").expect("DESIGN.md at repo root");
    let documented = documented_codes(&design);
    assert!(
        !documented.is_empty(),
        "no code table rows found in DESIGN.md — parser or doc broke"
    );

    // Union of every code-bearing registry in the workspace: lint
    // severities plus monitor verdicts (whose column is always `fail`).
    let compiled: BTreeMap<String, String> = codes::registry()
        .iter()
        .map(|(c, s, _)| (c.to_string(), s.to_string()))
        .chain(
            systemc_ams::monitor::codes::registry()
                .iter()
                .map(|(c, s, _)| (c.to_string(), s.to_string())),
        )
        .collect();

    let mut diff = String::new();
    for (code, sev) in &compiled {
        match documented.get(code) {
            None => diff.push_str(&format!("  - {code} ({sev}): compiled but undocumented\n")),
            Some(doc_sev) if doc_sev != sev => diff.push_str(&format!(
                "  ~ {code}: registry says {sev}, DESIGN.md says {doc_sev}\n"
            )),
            Some(_) => {}
        }
    }
    for code in documented.keys() {
        if !compiled.contains_key(code) {
            diff.push_str(&format!(
                "  + {code}: documented but absent from the registry\n"
            ));
        }
    }
    assert!(
        diff.is_empty(),
        "DESIGN.md code table out of sync with ams_lint::codes::registry():\n{diff}"
    );
}
