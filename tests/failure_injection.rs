//! Failure-injection tests: every malformed model or numerically
//! impossible request must surface as a *typed error*, never a panic —
//! the dependability half of the paper's "executable specification"
//! goal.

use systemc_ams::core::{
    AmsSimulator, CoreError, LtiCtSolver, TdfGraph, TdfIn, TdfIo, TdfModule, TdfOut, TdfSetup,
};
use systemc_ams::kernel::{Kernel, KernelError, SimTime};
use systemc_ams::lti::{Discretization, TransferFunction};
use systemc_ams::math::MathError;
use systemc_ams::net::{Circuit, IntegrationMethod, NetError, TransientSolver};
use systemc_ams::sdf::{schedule, SdfError, SdfGraph};

struct Src {
    out: TdfOut,
    ts: Option<SimTime>,
}
impl TdfModule for Src {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
        if let Some(ts) = self.ts {
            cfg.set_timestep(ts);
        }
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        io.write1(self.out, 0.0);
        Ok(())
    }
}

struct Pass {
    inp: TdfIn,
    out: TdfOut,
}
impl TdfModule for Pass {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.input(self.inp);
        cfg.output(self.out);
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let v = io.read1(self.inp);
        io.write1(self.out, v);
        Ok(())
    }
}

// ---------- numerical layer ------------------------------------------------

#[test]
fn singular_matrix_is_typed() {
    let a = systemc_ams::math::DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
    assert!(matches!(
        systemc_ams::math::Lu::factor(&a),
        Err(MathError::SingularMatrix { .. })
    ));
}

#[test]
fn newton_divergence_is_typed() {
    struct NoRoot;
    impl systemc_ams::math::newton::NonlinearSystem for NoRoot {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] + 1.0;
        }
    }
    let mut x = [0.7];
    let r = systemc_ams::math::newton::solve(
        &mut NoRoot,
        &mut x,
        &systemc_ams::math::newton::NewtonOptions {
            max_iter: 15,
            ..Default::default()
        },
    );
    assert!(r.is_err());
}

#[test]
fn step_size_underflow_is_typed() {
    // An ODE with a finite-time blow-up: ẋ = x², x(0)=1 explodes at t=1.
    let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = x[0] * x[0];
    let rkf = systemc_ams::math::ode::AdaptiveRkf45::new(Default::default());
    let mut x = vec![1.0];
    let r = rkf.integrate(&mut f, 0.0, 2.0, &mut x);
    assert!(
        matches!(r, Err(MathError::StepSizeUnderflow { .. })) || x[0].is_infinite(),
        "blow-up must not loop forever: {r:?}"
    );
}

// ---------- dataflow layer --------------------------------------------------

#[test]
fn inconsistent_rates_are_typed() {
    let mut g = SdfGraph::new();
    let a = g.add_actor("a");
    let b = g.add_actor("b");
    g.connect(a, 1, b, 1, 0).unwrap();
    g.connect(b, 3, a, 2, 0).unwrap();
    assert!(matches!(
        g.repetition_vector(),
        Err(SdfError::InconsistentRates { .. })
    ));
}

#[test]
fn deadlock_is_typed() {
    let mut g = SdfGraph::new();
    let a = g.add_actor("a");
    let b = g.add_actor("b");
    g.connect(a, 1, b, 1, 0).unwrap();
    g.connect(b, 1, a, 1, 0).unwrap();
    assert!(matches!(schedule(&g), Err(SdfError::Deadlock { .. })));
}

// ---------- network layer ----------------------------------------------------

#[test]
fn unsolvable_topology_is_typed() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.current_source("I", Circuit::GROUND, a, 1e-3).unwrap();
    assert!(matches!(
        ckt.dc_operating_point(),
        Err(NetError::Singular { .. }) | Err(NetError::NoConvergence { .. })
    ));
}

#[test]
fn invalid_element_values_are_typed() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    assert!(matches!(
        ckt.resistor("R", a, Circuit::GROUND, -1.0),
        Err(NetError::InvalidValue { .. })
    ));
    assert!(matches!(
        ckt.capacitor("C", a, Circuit::GROUND, 0.0),
        Err(NetError::InvalidValue { .. })
    ));
    assert!(matches!(
        ckt.diode("D", a, Circuit::GROUND, -1e-14, 1.0),
        Err(NetError::InvalidValue { .. })
    ));
}

#[test]
fn bad_timestep_requests_are_typed() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.voltage_source("V", a, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("R", a, Circuit::GROUND, 1e3).unwrap();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.initialize_dc().unwrap();
    assert!(matches!(tr.step(-1e-6), Err(NetError::InvalidValue { .. })));
    assert!(matches!(
        tr.step(f64::NAN),
        Err(NetError::InvalidValue { .. })
    ));
}

// ---------- kernel layer ------------------------------------------------------

#[test]
fn delta_oscillation_is_typed() {
    let mut k = Kernel::new();
    k.set_delta_limit(50);
    let s = k.signal("osc", false);
    let p = k.add_process("toggle", move |ctx| {
        let v = ctx.read(s);
        ctx.write(s, !v);
    });
    k.make_sensitive(p, k.signal_event(s));
    assert!(matches!(
        k.run_until(SimTime::from_ns(1)),
        Err(KernelError::DeltaOverflow { .. })
    ));
}

// ---------- TDF layer -----------------------------------------------------------

#[test]
fn missing_timestep_is_typed() {
    let mut g = TdfGraph::new("no_ts");
    let s = g.signal("s");
    g.add_module(
        "src",
        Src {
            out: s.writer(),
            ts: None,
        },
    );
    assert!(matches!(g.elaborate(), Err(CoreError::NoTimestep)));
}

#[test]
fn zero_timestep_is_typed() {
    let mut g = TdfGraph::new("zero_ts");
    let s = g.signal("s");
    g.add_module(
        "src",
        Src {
            out: s.writer(),
            ts: Some(SimTime::ZERO),
        },
    );
    assert!(matches!(g.elaborate(), Err(CoreError::Invalid { .. })));
}

#[test]
fn unwritten_signal_is_typed() {
    let mut g = TdfGraph::new("nw");
    let a = g.signal("a");
    let b = g.signal("b");
    g.add_module(
        "pass",
        Pass {
            inp: a.reader(),
            out: b.writer(),
        },
    );
    assert!(matches!(g.elaborate(), Err(CoreError::NoWriter { .. })));
}

#[test]
fn double_writer_is_typed() {
    let mut g = TdfGraph::new("dw");
    let s = g.signal("s");
    g.add_module(
        "a",
        Src {
            out: s.writer(),
            ts: Some(SimTime::from_us(1)),
        },
    );
    g.add_module(
        "b",
        Src {
            out: s.writer(),
            ts: Some(SimTime::from_us(1)),
        },
    );
    assert!(matches!(
        g.elaborate(),
        Err(CoreError::MultipleWriters { .. })
    ));
}

#[test]
fn inexact_timestep_is_typed() {
    // 3-token consumer forces q = [3, 1]; a 10 fs period is not divisible
    // by 3.
    struct Take3 {
        inp: TdfIn,
        out: TdfOut,
    }
    impl TdfModule for Take3 {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.input_with(self.inp, 3, 0);
            cfg.output(self.out);
            cfg.set_timestep(SimTime::from_fs(10));
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            let v = io.read(self.inp, 0);
            io.write1(self.out, v);
            Ok(())
        }
    }
    let mut g = TdfGraph::new("inexact");
    let a = g.signal("a");
    let b = g.signal("b");
    g.add_module(
        "src",
        Src {
            out: a.writer(),
            ts: None,
        },
    );
    g.add_module(
        "t3",
        Take3 {
            inp: a.reader(),
            out: b.writer(),
        },
    );
    assert!(matches!(
        g.elaborate(),
        Err(CoreError::InexactTimestep { .. })
    ));
}

#[test]
fn runtime_module_failure_is_typed_and_stops_cluster() {
    struct FailAfter {
        out: TdfOut,
        n: u32,
    }
    impl TdfModule for FailAfter {
        fn setup(&mut self, cfg: &mut TdfSetup) {
            cfg.output(self.out);
            cfg.set_timestep(SimTime::from_us(1));
        }
        fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
            if self.n == 0 {
                return Err(CoreError::solver("fail_after", "injected failure"));
            }
            self.n -= 1;
            io.write1(self.out, 0.0);
            Ok(())
        }
    }
    let mut sim = AmsSimulator::new();
    let mut g = TdfGraph::new("failing");
    let s = g.signal("s");
    g.add_module(
        "f",
        FailAfter {
            out: s.writer(),
            n: 3,
        },
    );
    let handle = sim.add_cluster(g).unwrap();
    let err = sim.run_until(SimTime::from_us(10)).unwrap_err();
    assert!(matches!(err, CoreError::Solver { .. }));
    // The cluster stopped at the failing iteration.
    assert_eq!(handle.iterations(), 3);
}

#[test]
fn ct_solver_backward_time_is_typed() {
    let tf = TransferFunction::low_pass1(10.0).unwrap();
    let mut solver = LtiCtSolver::from_transfer_function(&tf, Discretization::Zoh).unwrap();
    use systemc_ams::core::CtSolver;
    solver.initialize(&[0.0]).unwrap();
    let mut out = [0.0];
    solver.advance_to(1.0, &[1.0], &mut out).unwrap();
    assert!(solver.advance_to(0.5, &[1.0], &mut out).is_err());
}

#[test]
fn improper_transfer_function_embedding_is_typed() {
    // H(s) = s is improper: no state-space realization.
    let tf = TransferFunction::new(vec![0.0, 1.0], vec![1.0]).unwrap();
    assert!(LtiCtSolver::from_transfer_function(&tf, Discretization::Zoh).is_err());
}

#[test]
fn ac_analysis_empty_frequency_list_is_typed() {
    let mut g = TdfGraph::new("ac");
    let s = g.signal("s");
    g.add_module(
        "src",
        Src {
            out: s.writer(),
            ts: Some(SimTime::from_us(1)),
        },
    );
    let mut c = g.elaborate().unwrap();
    assert!(matches!(c.ac_analysis(&[]), Err(CoreError::Invalid { .. })));
}

#[test]
fn error_display_chain_is_informative() {
    let mut g = TdfGraph::new("diag");
    let s = g.signal("audio_out");
    g.add_module(
        "pass",
        Pass {
            inp: s.reader(),
            out: s.writer(),
        },
    );
    // Self-loop without delay → deadlock mentioning the dataflow layer.
    match g.elaborate() {
        Err(e @ CoreError::Sdf(_)) => {
            let msg = e.to_string();
            assert!(msg.contains("dataflow"), "message: {msg}");
            assert!(std::error::Error::source(&e).is_some());
        }
        other => panic!("expected sdf error, got {other:?}"),
    }
}
