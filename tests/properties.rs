//! Property-based tests (proptest) of the core numerical and scheduling
//! invariants across the workspace.

use proptest::prelude::*;
use systemc_ams::kernel::SimTime;
use systemc_ams::math::{fft, solve_dense, Complex64, DMat, DVec, Lu, Rational};
use systemc_ams::net::Circuit;
use systemc_ams::sdf::{schedule, SdfGraph};

// ---------- linear algebra ---------------------------------------------------

proptest! {
    /// For well-conditioned random matrices, LU solve leaves a tiny
    /// residual: ‖A·x − b‖ ≪ ‖b‖.
    #[test]
    fn lu_solve_residual_is_small(
        seed in proptest::collection::vec(-10.0f64..10.0, 16),
        rhs in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let mut a = DMat::from_fn(4, 4, |i, j| seed[i * 4 + j]);
        // Diagonal dominance guarantees regularity.
        for i in 0..4 {
            a[(i, i)] += 50.0;
        }
        let b = DVec::from(rhs);
        let x = solve_dense(&a, &b).expect("regular by construction");
        let r = &a.mul_vec(&x).unwrap() - &b;
        prop_assert!(r.norm_inf() < 1e-9 * (1.0 + b.norm_inf()));
    }

    /// det(A·B) = det(A)·det(B) via the LU determinant.
    #[test]
    fn determinant_is_multiplicative(
        sa in proptest::collection::vec(-3.0f64..3.0, 9),
        sb in proptest::collection::vec(-3.0f64..3.0, 9),
    ) {
        let mut a = DMat::from_fn(3, 3, |i, j| sa[i * 3 + j]);
        let mut b = DMat::from_fn(3, 3, |i, j| sb[i * 3 + j]);
        for i in 0..3 {
            a[(i, i)] += 10.0;
            b[(i, i)] += 10.0;
        }
        let ab = a.mul_mat(&b).unwrap();
        let da = Lu::factor(&a).unwrap().det();
        let db = Lu::factor(&b).unwrap().det();
        let dab = Lu::factor(&ab).unwrap().det();
        prop_assert!((dab - da * db).abs() < 1e-6 * dab.abs().max(1.0));
    }
}

// ---------- FFT ---------------------------------------------------------------

proptest! {
    /// fft → ifft is the identity.
    #[test]
    fn fft_roundtrip(values in proptest::collection::vec(-100.0f64..100.0, 64)) {
        let orig: Vec<Complex64> = values.iter().map(|&v| Complex64::from_real(v)).collect();
        let mut x = orig.clone();
        fft::fft(&mut x).unwrap();
        fft::ifft(&mut x).unwrap();
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Parseval: time-domain energy equals spectrum energy / N.
    #[test]
    fn fft_parseval(values in proptest::collection::vec(-100.0f64..100.0, 128)) {
        let time_energy: f64 = values.iter().map(|v| v * v).sum();
        let spec = fft::fft_real(&values).unwrap();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }
}

// ---------- rationals -----------------------------------------------------------

proptest! {
    /// Rational arithmetic satisfies the field laws we rely on.
    #[test]
    fn rational_laws(
        an in 1u64..1000, ad in 1u64..1000,
        bn in 1u64..1000, bd in 1u64..1000,
    ) {
        let a = Rational::new(an, ad).unwrap();
        let b = Rational::new(bn, bd).unwrap();
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) * b, a * b + b * b);
        prop_assert_eq!(a / b * b, a);
        prop_assert_eq!((a + b) - b, a);
    }
}

// ---------- SDF -----------------------------------------------------------------

proptest! {
    /// For a random two-stage chain, the repetition vector balances every
    /// edge and is minimal (gcd = 1).
    #[test]
    fn repetition_vector_balances_chain(
        r1 in 1u64..12, r2 in 1u64..12, r3 in 1u64..12, r4 in 1u64..12,
    ) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        let c = g.add_actor("c");
        g.connect(a, r1, b, r2, 0).unwrap();
        g.connect(b, r3, c, r4, 0).unwrap();
        let q = g.repetition_vector().unwrap();
        prop_assert_eq!(q[0] * r1, q[1] * r2);
        prop_assert_eq!(q[1] * r3, q[2] * r4);
        let g0 = systemc_ams::math::gcd(systemc_ams::math::gcd(q[0], q[1]), q[2]);
        prop_assert_eq!(g0, 1, "not minimal: {:?}", q);
    }

    /// A valid schedule fires each actor exactly q times and never
    /// underflows any FIFO (checked by re-simulating token counts).
    #[test]
    fn schedule_is_admissible(
        r1 in 1u64..6, r2 in 1u64..6, delay in 0u64..4,
    ) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, r1, b, r2, delay).unwrap();
        let s = schedule(&g).unwrap();
        let q = s.repetition_vector().to_vec();
        let mut fired = [0u64; 2];
        let mut tokens = delay as i64;
        for &actor in s.firings() {
            if actor == a {
                tokens += r1 as i64;
                fired[0] += 1;
            } else {
                tokens -= r2 as i64;
                prop_assert!(tokens >= 0, "fifo underflow");
                fired[1] += 1;
            }
        }
        prop_assert_eq!(&fired[..], &q[..]);
        prop_assert_eq!(tokens, delay as i64, "periodic token count");
    }
}

// ---------- MNA ------------------------------------------------------------------

proptest! {
    /// KCL holds at every internal node of a random resistive ladder:
    /// branch currents into each node sum to zero.
    #[test]
    fn kcl_holds_on_random_ladder(
        resistances in proptest::collection::vec(10.0f64..10_000.0, 2..8),
        vsrc in 0.1f64..100.0,
    ) {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.voltage_source("V", top, Circuit::GROUND, vsrc).unwrap();
        let mut prev = top;
        let mut series = Vec::new();
        let mut shunts = Vec::new();
        for (i, &r) in resistances.iter().enumerate() {
            let n = ckt.node(format!("n{i}"));
            series.push((ckt.resistor(format!("Rs{i}"), prev, n, r).unwrap(), prev, n));
            shunts.push((ckt.resistor(format!("Rp{i}"), n, Circuit::GROUND, 2.0 * r).unwrap(), n));
            prev = n;
        }
        let op = ckt.dc_operating_point().unwrap();
        // KCL at each internal node: current in from the series resistor
        // equals current out through the shunt plus the next series one.
        for (i, &(_, node)) in shunts.iter().enumerate() {
            let i_in = op.current(series[i].0).unwrap();
            let i_shunt = op.current(shunts[i].0).unwrap();
            let i_next = if i + 1 < series.len() {
                op.current(series[i + 1].0).unwrap()
            } else {
                0.0
            };
            prop_assert!(
                (i_in - i_shunt - i_next).abs() < 1e-9 * (1.0 + i_in.abs()),
                "KCL violated at node {} ({:?})",
                i, node
            );
        }
    }

    /// A passive RC divider never amplifies: |H(jω)| ≤ 1 at any frequency.
    #[test]
    fn passive_rc_network_gain_bounded(
        r in 10.0f64..100_000.0,
        c in 1e-12f64..1e-6,
        freq in 0.1f64..1e9,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source_ac("V", a, Circuit::GROUND, 0.0, 1.0).unwrap();
        ckt.resistor("R", a, out, r).unwrap();
        ckt.capacitor("C", out, Circuit::GROUND, c).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let h = ckt.ac_transfer(&op, out, &[freq]).unwrap();
        prop_assert!(h[0].abs() <= 1.0 + 1e-9, "|H| = {}", h[0].abs());
        // And it matches the analytic single-pole response.
        let expect = 1.0 / (1.0 + (2.0 * std::f64::consts::PI * freq * r * c).powi(2)).sqrt();
        prop_assert!((h[0].abs() - expect).abs() < 1e-6 * (1.0 + expect));
    }
}

// ---------- kernel time --------------------------------------------------------

proptest! {
    /// SimTime arithmetic is exact and consistent with integer femtoseconds.
    #[test]
    fn sim_time_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = SimTime::from_fs(a);
        let tb = SimTime::from_fs(b);
        prop_assert_eq!((ta + tb).as_fs(), a + b);
        if a >= b {
            prop_assert_eq!((ta - tb).as_fs(), a - b);
        }
        prop_assert_eq!(ta.checked_add(tb).map(SimTime::as_fs), a.checked_add(b));
        if let (Some(quot), Some(rem)) = (a.checked_div(b), a.checked_rem(b)) {
            prop_assert_eq!(ta / tb, quot);
            prop_assert_eq!((ta % tb).as_fs(), rem);
        }
    }

    /// Roundtrip through seconds is lossless within 1 fs for times below
    /// ~1 ms (f64 has 52 bits of mantissa; 1 ms = 1e12 fs needs 40).
    #[test]
    fn sim_time_seconds_roundtrip(fs in 0u64..1_000_000_000_000u64) {
        let t = SimTime::from_fs(fs);
        let back = SimTime::from_seconds(t.to_seconds());
        let diff = back.as_fs().abs_diff(fs);
        prop_assert!(diff <= 1, "roundtrip error {diff} fs");
    }
}

// ---------- LTI ------------------------------------------------------------------

proptest! {
    /// Transfer-function ↔ state-space conversion preserves the frequency
    /// response for random stable second-order systems.
    #[test]
    fn tf_state_space_equivalence(
        w0 in 1.0f64..1e5,
        q in 0.2f64..20.0,
        omega in 0.1f64..1e6,
    ) {
        let tf = systemc_ams::lti::TransferFunction::low_pass2(w0, q).unwrap();
        let ss = tf.to_state_space().unwrap();
        let a = tf.freq_response(omega);
        let b = ss.freq_response(omega).unwrap()[(0, 0)];
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
    }
}

// ---------- adaptive transient ---------------------------------------------------

proptest! {
    /// The adaptive controller never probes beyond the requested horizon
    /// and probe times are strictly increasing, for random horizons,
    /// tolerances and step bounds on an RC charge-up. The final probe
    /// lands exactly on `t_end` (the controller clamps the last step to
    /// the remaining span unconditionally).
    #[test]
    fn run_adaptive_respects_the_horizon(
        t_end_us in 1.0f64..50.0,
        rel_exp in 2.0f64..4.0,
        init_ns in 0.5f64..200.0,
        max_frac in 0.05f64..1.0,
    ) {
        use systemc_ams::net::{AdaptiveOptions, IntegrationMethod, TransientSolver};

        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("V", inp, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R", inp, out, 1e3).unwrap();
        ckt.capacitor("C", out, Circuit::GROUND, 1e-9).unwrap();

        let t_end = t_end_us * 1e-6;
        let opts = AdaptiveOptions {
            rel_tol: 10f64.powf(-rel_exp),
            abs_tol: 1e-9,
            min_step: 1e-13,
            max_step: t_end * max_frac,
            initial_step: init_ns * 1e-9,
        };
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        let mut times = Vec::new();
        tr.run_adaptive(t_end, &opts, |s| times.push(s.time())).unwrap();

        prop_assert!(!times.is_empty());
        for w in times.windows(2) {
            prop_assert!(w[1] > w[0], "probe times not increasing: {} then {}", w[0], w[1]);
        }
        for &t in &times {
            prop_assert!(t <= t_end, "probe at {t} beyond t_end {t_end}");
        }
        let last = *times.last().unwrap();
        prop_assert!((last - t_end).abs() < 1e-15 * t_end.max(1.0) + 1e-18,
            "final probe {last} does not land on t_end {t_end}");
        prop_assert!(tr.time() == last);
    }
}
