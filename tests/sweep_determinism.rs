//! A sweep must be bit-identical regardless of worker count.
//!
//! `ams-sweep` promises that the same spec (same base seed, same
//! scenario list) produces the same [`SweepReport`] — metric bits,
//! scenario order and solver counters — whether it runs on one worker
//! or many. Scenario seeds are derived from `(base_seed, index)` alone,
//! scheduling is the deterministic `ams-exec` partitioner, and the
//! shared symbolic factor always comes from scenario 0 on the
//! coordinator, so no run order or thread interleaving can leak into
//! the results. This is the sweep-level mirror of
//! `parallel_determinism.rs`.

use systemc_ams::core::{
    Cluster, CoreError, SharedSample, TdfGraph, TdfIo, TdfModule, TdfProbe, TdfSetup,
};
use systemc_ams::kernel::SimTime;
use systemc_ams::net::{
    Circuit, ElementId, IntegrationMethod, NodeId, ScenarioProbe, SolverBackend,
};
use systemc_ams::sweep::{NetlistSweep, Scenario, SweepModel, SweepReport, SweepSpec, TdfSweep};

// ---------- netlist sweep ----------------------------------------------------

struct Ladder {
    ckt: Circuit,
    resistors: Vec<ElementId>,
    caps: Vec<ElementId>,
    out: NodeId,
}

fn ladder(n: usize) -> Ladder {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source("V", prev, Circuit::GROUND, 1.0).unwrap();
    let mut resistors = Vec::new();
    let mut caps = Vec::new();
    for i in 0..n {
        let node = ckt.node(format!("n{i}"));
        resistors.push(ckt.resistor(format!("R{i}"), prev, node, 1e3).unwrap());
        caps.push(
            ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, 1e-9)
                .unwrap(),
        );
        prev = node;
    }
    Ladder {
        ckt,
        resistors,
        caps,
        out: prev,
    }
}

fn netlist_sweep(workers: usize) -> SweepReport {
    let lad = ladder(12);
    let spec = SweepSpec::monte_carlo(&[("dr", -0.2, 0.2), ("dc", -0.2, 0.2)], 24, 0xDE7).unwrap();
    let resistors = lad.resistors.clone();
    let caps = lad.caps.clone();
    let out = lad.out;
    NetlistSweep::new(lad.ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(3e-6, 3e-9)
        .run(
            &spec,
            workers,
            &["v_out", "v_peak"],
            move |c, sc| {
                for r in &resistors {
                    c.set_resistance(*r, 1e3 * (1.0 + sc.value("dr")))?;
                }
                for cap in &caps {
                    c.set_capacitance(*cap, 1e-9 * (1.0 + sc.value("dc")))?;
                }
                Ok(())
            },
            |tr, m| {
                let v = tr.voltage(out);
                m[0] = v;
                m[1] = m[1].max(v); // NaN-seeded: first max() adopts v
            },
        )
        .unwrap()
}

/// Deep bit-level comparison, not just the fingerprint: metric bits,
/// indices and every deterministic counter.
fn assert_reports_identical(a: &SweepReport, b: &SweepReport, what: &str) {
    assert_eq!(a.metric_names, b.metric_names, "{what}: metric names");
    assert_eq!(a.scenarios.len(), b.scenarios.len(), "{what}: row count");
    for (ra, rb) in a.scenarios.iter().zip(&b.scenarios) {
        assert_eq!(ra.index, rb.index, "{what}: scenario order");
        assert_eq!(ra.label, rb.label, "{what}: labels");
        let bits_a: Vec<u64> = ra.metrics.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = rb.metrics.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "{what}: metric bits of #{}", ra.index);
        assert_eq!(
            ra.stats.iterations, rb.stats.iterations,
            "{what}: steps of #{}",
            ra.index
        );
        assert_eq!(
            ra.stats.solve.symbolic_analyses, rb.stats.solve.symbolic_analyses,
            "{what}: symbolic analyses of #{}",
            ra.index
        );
        assert_eq!(
            ra.stats.solve.numeric_refactors, rb.stats.solve.numeric_refactors,
            "{what}: numeric refactors of #{}",
            ra.index
        );
    }
    assert_eq!(a.fingerprint(), b.fingerprint(), "{what}: fingerprint");
}

/// Same ladder sweep as [`netlist_sweep`], but lane-batched: 24
/// scenarios packed 8 to a bundle (the last bundle padded). Bundle
/// composition depends only on the scenario order and lane width, and
/// bundle 0's lane factor seeds every shard, so worker count must not
/// change a single bit.
fn lane_netlist_sweep(workers: usize) -> SweepReport {
    let lad = ladder(12);
    let spec = SweepSpec::monte_carlo(&[("dr", -0.2, 0.2), ("dc", -0.2, 0.2)], 24, 0xDE7).unwrap();
    let resistors = lad.resistors.clone();
    let caps = lad.caps.clone();
    let out = lad.out;
    NetlistSweep::new(lad.ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(3e-6, 3e-9)
        .lanes(8)
        .run_lanes(
            &spec,
            workers,
            &["v_out", "v_peak"],
            move |c, sc| {
                for r in &resistors {
                    c.set_resistance(*r, 1e3 * (1.0 + sc.value("dr")))?;
                }
                for cap in &caps {
                    c.set_capacitance(*cap, 1e-9 * (1.0 + sc.value("dc")))?;
                }
                Ok(())
            },
            |p: &dyn ScenarioProbe, m| {
                let v = p.voltage(out);
                m[0] = v;
                m[1] = m[1].max(v); // NaN-seeded: first max() adopts v
            },
        )
        .unwrap()
}

#[test]
fn lane_netlist_sweep_is_bit_identical_across_worker_counts() {
    let serial = lane_netlist_sweep(1);
    assert_eq!(serial.lanes, 8);
    assert_eq!(serial.bundles, 3);
    for workers in [2, 4] {
        let parallel = lane_netlist_sweep(workers);
        assert_reports_identical(&serial, &parallel, &format!("lanes=8 workers={workers}"));
    }
    // Lane metrics track the scalar sweep's to ~1e-9 relative — same
    // scenarios, same integrator, bundled instruction stream.
    let scalar = netlist_sweep(1);
    for (a, b) in scalar.scenarios.iter().zip(&serial.scenarios) {
        assert_eq!(a.index, b.index);
        for (x, y) in a.metrics.iter().zip(&b.metrics) {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.abs()),
                "scenario {}: scalar {x} vs lane {y}",
                a.index
            );
        }
    }
    // One symbolic analysis for the whole batch, shared from bundle 0.
    assert_eq!(
        serial
            .scenarios
            .iter()
            .step_by(8) // one representative per bundle (stats are shared)
            .map(|r| r.stats.solve.symbolic_analyses)
            .sum::<u64>(),
        1
    );
}

#[test]
fn netlist_sweep_is_bit_identical_across_worker_counts() {
    let serial = netlist_sweep(1);
    for workers in [2, 4] {
        let parallel = netlist_sweep(workers);
        assert_reports_identical(&serial, &parallel, &format!("workers={workers}"));
    }
    // The amortization holds in every configuration: exactly one
    // symbolic analysis per batch.
    assert_eq!(serial.totals().solve.symbolic_analyses, 1);
    assert!(serial.totals().solve.numeric_refactors >= 23);
}

#[test]
fn different_seeds_change_the_fingerprint() {
    let lad = ladder(4);
    let out = lad.out;
    let resistors = lad.resistors.clone();
    let run = |seed: u64| {
        let spec = SweepSpec::monte_carlo(&[("dr", -0.2, 0.2)], 8, seed).unwrap();
        NetlistSweep::new(lad.ckt.clone(), IntegrationMethod::Trapezoidal)
            .fixed_step(1e-6, 2e-9)
            .run(
                &spec,
                2,
                &["v_out"],
                |c, sc| {
                    for r in &resistors {
                        c.set_resistance(*r, 1e3 * (1.0 + sc.value("dr")))?;
                    }
                    Ok(())
                },
                |tr, m| m[0] = tr.voltage(out),
            )
            .unwrap()
    };
    assert_eq!(run(11).fingerprint(), run(11).fingerprint());
    assert_ne!(run(11).fingerprint(), run(12).fingerprint());
}

// ---------- TDF sweep --------------------------------------------------------

/// A leaky integrator driven by seeded per-scenario noise: exercises
/// both the parameter channel (leak via [`SharedSample`]) and the
/// stimulus-variant channel (the scenario PRNG).
struct NoisyIntegrator {
    out: systemc_ams::core::TdfOut,
    leak: SharedSample,
    noise: Vec<f64>,
    k: usize,
    acc: f64,
}

impl TdfModule for NoisyIntegrator {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
        cfg.set_timestep(SimTime::from_us(1));
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let x = self.noise[self.k % self.noise.len()];
        self.k += 1;
        self.acc = self.acc * self.leak.get() + x;
        io.write1(self.out, self.acc);
        Ok(())
    }

    fn reset(&mut self) {
        self.k = 0;
        self.acc = 0.0;
    }
}

struct NoiseModel {
    leak: SharedSample,
    noise: std::sync::Arc<std::sync::Mutex<Vec<f64>>>,
    probe: TdfProbe,
}

impl SweepModel for NoiseModel {
    fn apply(&mut self, sc: &Scenario) {
        use rand::prelude::*;
        self.leak.set(sc.value("leak"));
        let mut rng = sc.rng();
        let mut noise = self.noise.lock().unwrap();
        noise.clear();
        noise.extend((0..64).map(|_| rng.gen_range(-1.0..1.0)));
    }

    fn metrics(&mut self, _cluster: &Cluster, out: &mut [f64]) {
        let vals = self.probe.values();
        out[0] = *vals.last().unwrap();
        out[1] = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    }
}

/// The noise buffer is shared between the module (reader) and the model
/// (writer); `apply` refills it before each scenario's run.
struct SharedNoise(std::sync::Arc<std::sync::Mutex<Vec<f64>>>);

fn tdf_sweep(workers: usize) -> SweepReport {
    let spec = SweepSpec::monte_carlo(&[("leak", 0.5, 0.99)], 16, 0x7DF).unwrap();
    TdfSweep::new(128)
        .run(&spec, workers, &["last", "peak"], |slot| {
            let mut g = TdfGraph::new(format!("noisy{slot}"));
            let s = g.signal("y");
            let probe = g.probe(s);
            let leak = SharedSample::new(0.9);
            let noise = std::sync::Arc::new(std::sync::Mutex::new(vec![0.0]));
            g.add_module(
                "integ",
                NoisyModule {
                    inner: NoisyIntegrator {
                        out: s.writer(),
                        leak: leak.clone(),
                        noise: Vec::new(),
                        k: 0,
                        acc: 0.0,
                    },
                    shared: SharedNoise(noise.clone()),
                },
            );
            (g, NoiseModel { leak, noise, probe })
        })
        .unwrap()
}

/// Wraps the integrator so each firing reads the current shared noise
/// buffer (refilled by `NoiseModel::apply` between scenarios).
struct NoisyModule {
    inner: NoisyIntegrator,
    shared: SharedNoise,
}

impl TdfModule for NoisyModule {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        self.inner.setup(cfg);
    }

    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        if self.inner.k == 0 {
            self.inner.noise = self.shared.0.lock().unwrap().clone();
        }
        self.inner.processing(io)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[test]
fn tdf_sweep_is_bit_identical_across_worker_counts() {
    let serial = tdf_sweep(1);
    for workers in [2, 4] {
        let parallel = tdf_sweep(workers);
        assert_reports_identical(&serial, &parallel, &format!("workers={workers}"));
    }
    // Clusters were elaborated per worker but reset per scenario: every
    // scenario ran the full 128 iterations from a clean slate.
    for r in &serial.scenarios {
        assert_eq!(r.stats.iterations, 128);
    }
}
