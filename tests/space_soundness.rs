//! Soundness of the sweep-space interval pass (proptest).
//!
//! The abstract interpreter in `ams-lint::space` makes two kinds of
//! claim about a whole parameter box, and both must be *sound* —
//! over-approximation may only ever cost precision (an `Unknown`
//! verdict), never correctness:
//!
//! * **ProvedSafe** means every concrete point in the box passes; we
//!   sample the corners and the midpoint and check them against the
//!   concrete classifier, the concrete lint pass, and an actual DC
//!   factorization.
//! * **ProvedViolated** carries a witness box that must contain a
//!   concrete failing point; we sample the witness and require the
//!   concrete classifier to refute at least one sample.

use proptest::prelude::*;
use systemc_ams::lint::{
    classify_point, codes, lint_circuit, lint_space, LintPolicy, ParamRange, SpaceBind, SpaceSpec,
    SpaceTarget, Verdict,
};
use systemc_ams::net::Circuit;

const R_NOM: f64 = 1.0e3;
const C_NOM: f64 = 1.0e-9;

/// DC source → R → C to ground: the smallest circuit on which both the
/// domain check (SPC001) and the nonsingularity check (SPC002) bite.
fn rc(dr: f64, dc: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.voltage_source("V", inp, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("R", inp, out, R_NOM * (1.0 + dr)).unwrap();
    ckt.capacitor("C", out, Circuit::GROUND, C_NOM * (1.0 + dc))
        .unwrap();
    ckt
}

fn spec(dr: (f64, f64), dc: (f64, f64)) -> SpaceSpec {
    SpaceSpec::new(
        vec![
            ParamRange::new("dr", dr.0, dr.1),
            ParamRange::new("dc", dc.0, dc.1),
        ],
        vec![
            SpaceBind {
                param: "dr".into(),
                element: "R".into(),
                target: SpaceTarget::Resistance,
                relative: true,
                nominal: R_NOM,
            },
            SpaceBind {
                param: "dc".into(),
                element: "C".into(),
                target: SpaceTarget::Capacitance,
                relative: true,
                nominal: C_NOM,
            },
        ],
    )
}

/// The 2-D corners plus the midpoint of a (dr, dc) box.
fn samples(dr: (f64, f64), dc: (f64, f64)) -> [(f64, f64); 5] {
    [
        (dr.0, dc.0),
        (dr.0, dc.1),
        (dr.1, dc.0),
        (dr.1, dc.1),
        (0.5 * (dr.0 + dr.1), 0.5 * (dc.0 + dc.1)),
    ]
}

proptest! {
    /// Soundness over random boxes straddling the physical-domain
    /// boundary (relative deviations below −1 drive R or C negative).
    #[test]
    fn space_verdicts_are_sound(
        a in -1.8f64..1.0, b in -1.8f64..1.0,
        c in -1.8f64..1.0, d in -1.8f64..1.0,
    ) {
        let dr = (a.min(b), a.max(b));
        let dc = (c.min(d), c.max(d));
        let template = rc(0.0, 0.0);
        let sspec = spec(dr, dc);
        let sr = lint_space("soundness", &template, &sspec);
        let names = ["dr".to_string(), "dc".to_string()];

        // Claim 1: a clean report (every error-severity check proved
        // safe) admits every sampled concrete point.
        if LintPolicy::default().denied(&sr.report).is_empty()
            && sr.verdicts.iter().all(|v| v.verdict == Verdict::ProvedSafe)
        {
            for (pr, pc) in samples(dr, dc) {
                prop_assert_eq!(
                    classify_point(&template, &sspec, &names, &[pr, pc]),
                    None,
                    "ProvedSafe box has a failing point ({}, {})", pr, pc
                );
                let concrete = rc(pr, pc);
                let lr = lint_circuit("corner", &concrete);
                prop_assert_eq!(
                    lr.error_count(), 0,
                    "ProvedSafe corner fails concrete lint: {}", lr.render()
                );
                prop_assert!(
                    concrete.dc_operating_point().is_ok(),
                    "ProvedSafe corner fails to factor at ({}, {})", pr, pc
                );
            }
        }

        // Claim 2: a domain violation's witness box contains a point
        // the concrete classifier also rejects.
        if let Some(Verdict::ProvedViolated(witness)) = sr.verdict(codes::SPC001) {
            let wr = witness.interval("dr").expect("dr axis");
            let wc = witness.interval("dc").expect("dc axis");
            let refuted = samples((wr.lo, wr.hi), (wc.lo, wc.hi))
                .iter()
                .any(|&(pr, pc)| {
                    classify_point(&template, &sspec, &names, &[pr, pc]).is_some()
                });
            prop_assert!(
                refuted,
                "SPC001 witness {} contains no concretely failing sample", witness
            );
        }
    }
}
