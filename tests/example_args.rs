//! Regression: examples reject unknown flags with a usage message.
//!
//! Every example routes its leftover arguments through
//! `ams_scope::args::{lint_only_or_reject, reject_unknown}` (or an
//! equivalent strict loop), so a typo like `--senarios` fails loudly
//! instead of silently running the default configuration. This test
//! drives one representative example binary end to end; the helper
//! itself is unit-tested in `ams-scope`.

use std::path::PathBuf;
use std::process::Command;

/// Path of a compiled example binary. `cargo test` builds examples of
/// the root package before running integration tests, so the binary
/// exists by the time this runs.
fn example_bin(name: &str) -> PathBuf {
    // target/debug/deps/<this test> → target/debug/examples/<name>
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.push("examples");
    p.push(name);
    p
}

#[test]
fn quickstart_rejects_unknown_flags_with_usage() {
    let bin = example_bin("quickstart");
    if !bin.exists() {
        // Building examples is the root package's job; running this
        // test binary directly (e.g. via a test runner that skips the
        // example build) should not produce a false failure.
        eprintln!("skipping: {} not built", bin.display());
        return;
    }
    let out = Command::new(&bin)
        .arg("--senarios")
        .output()
        .expect("run example");
    assert!(
        !out.status.success(),
        "unknown flag must fail, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--senarios"),
        "stderr must name the bad flag: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "stderr must include usage: {stderr}"
    );

    // The known flags still work.
    let out = Command::new(&bin)
        .arg("--report")
        .output()
        .expect("run example");
    assert!(
        out.status.success(),
        "--report must be accepted: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
