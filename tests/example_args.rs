//! Regression: examples reject unknown flags with a usage message.
//!
//! Every example routes its leftover arguments through
//! `ams_scope::args::{lint_only_or_reject, reject_unknown}` (or an
//! equivalent strict loop), so a typo like `--senarios` fails loudly
//! instead of silently running the default configuration. This test
//! drives one representative example binary end to end; the helper
//! itself is unit-tested in `ams-scope`.

use std::path::PathBuf;
use std::process::Command;

/// Path of a compiled example binary. `cargo test` builds examples of
/// the root package before running integration tests, so the binary
/// exists by the time this runs.
fn example_bin(name: &str) -> PathBuf {
    // target/debug/deps/<this test> → target/debug/examples/<name>
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.push("examples");
    p.push(name);
    p
}

#[test]
fn quickstart_rejects_unknown_flags_with_usage() {
    let bin = example_bin("quickstart");
    if !bin.exists() {
        // Building examples is the root package's job; running this
        // test binary directly (e.g. via a test runner that skips the
        // example build) should not produce a false failure.
        eprintln!("skipping: {} not built", bin.display());
        return;
    }
    let out = Command::new(&bin)
        .arg("--senarios")
        .output()
        .expect("run example");
    assert!(
        !out.status.success(),
        "unknown flag must fail, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--senarios"),
        "stderr must name the bad flag: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "stderr must include usage: {stderr}"
    );

    // The known flags still work.
    let out = Command::new(&bin)
        .arg("--report")
        .output()
        .expect("run example");
    assert!(
        out.status.success(),
        "--report must be accepted: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `--lint-space` across the examples that expose it: a healthy default
/// box proves safe (exit 0), a box driving resistances negative is
/// proved violated with an SPC001 witness (exit 1), and the serve
/// examples run the check without a daemon, socket or tokens.
#[test]
fn lint_space_flags_prove_and_refute_boxes() {
    for name in ["monte_carlo_filter", "serve_daemon", "serve_client"] {
        let bin = example_bin(name);
        if !bin.exists() {
            eprintln!("skipping: {} not built", bin.display());
            return;
        }
        // Default box: every corner is provably safe.
        let out = Command::new(&bin)
            .arg("--lint-space")
            .output()
            .expect("run example");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{name} --lint-space must prove the default box safe: {stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("proved-safe"),
            "{name} must print space verdicts: {stdout}"
        );

        // A box that drives the resistances negative at some corner:
        // proved violated, witness printed, exit status 1.
        let out = Command::new(&bin)
            .args(["--lint-space", "dr=-2:0,dc=-0.1:0.1"])
            .output()
            .expect("run example");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            !out.status.success(),
            "{name} must reject the doomed box: {stdout}"
        );
        assert!(
            stdout.contains("SPC001") && stdout.contains("witness"),
            "{name} must name SPC001 with a witness box: {stdout}"
        );
    }
}

/// `--monitor` on the sweep examples: a valid property spec runs and
/// prints the yield rollup, a garbled one fails loudly at startup —
/// before any scenario runs (for `serve_client`, before the missing
/// `--addr` is even checked, since parsing happens daemon-side and the
/// example validates the required flags first; a bad spec still never
/// reaches a socket).
#[test]
fn monitor_flags_run_and_reject_garbage() {
    let bin = example_bin("monte_carlo_filter");
    if !bin.exists() {
        eprintln!("skipping: {} not built", bin.display());
        return;
    }
    // A tiny monitored sweep: verdict lines and the yield rollup.
    let out = Command::new(&bin)
        .args([
            "--scenarios",
            "4",
            "--workers",
            "2",
            "--monitor",
            "ok:envelope(lo=-0.05,hi=1.05)@n3;fin:finite()@n3",
        ])
        .output()
        .expect("run example");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "monitored run must succeed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("monitor ok: 4 pass") && stdout.contains("yield: 4/4"),
        "must print per-property verdicts and yield: {stdout}"
    );

    // A garbled spec fails before any simulation starts.
    let out = Command::new(&bin)
        .args(["--scenarios", "4", "--monitor", "broken:settle(lo=@n3"])
        .output()
        .expect("run example");
    assert!(!out.status.success(), "garbled spec must fail");

    // A channel that names no node is caught by sweep resolution.
    let out = Command::new(&bin)
        .args(["--scenarios", "4", "--monitor", "fin:finite()@n99"])
        .output()
        .expect("run example");
    assert!(!out.status.success(), "dangling channel must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("n99"),
        "error must name the channel: {stderr}"
    );

    // `--monitor` with no spec is a usage error on both examples.
    for name in ["monte_carlo_filter", "serve_client"] {
        let bin = example_bin(name);
        if !bin.exists() {
            eprintln!("skipping: {} not built", bin.display());
            return;
        }
        let out = Command::new(&bin)
            .arg("--monitor")
            .output()
            .expect("run example");
        assert!(!out.status.success(), "{name}: bare --monitor must fail");
    }
}

/// `--lint-only` on the serve examples: the concrete admission lint of
/// the demo job runs standalone and exits cleanly.
#[test]
fn serve_examples_lint_only_needs_no_daemon() {
    for name in ["serve_daemon", "serve_client"] {
        let bin = example_bin(name);
        if !bin.exists() {
            eprintln!("skipping: {} not built", bin.display());
            return;
        }
        let out = Command::new(&bin)
            .arg("--lint-only")
            .output()
            .expect("run example");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{name} --lint-only must pass on the demo job: {stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("0 error(s)"),
            "{name} must render a clean report: {stdout}"
        );
    }
}
