//! Monitored sweeps must be bit-identical regardless of worker count,
//! prefix forking or suspend points — and lane batching must agree on
//! every verdict.
//!
//! `ams-monitor` verdicts ride the same deterministic transport as
//! metrics (three f64 slots per property appended to each scenario
//! row), so the sweep-level promise extends to them: the same spec
//! produces the same verdict for every `(scenario, property)` pair —
//! pass, vacuous, or a fail with a bit-identical witness point —
//! whether the sweep runs on one worker or many, from `t = 0` or
//! forked off a shared prefix. Lane-batched runs deviate from scalar
//! runs by ~1e-9 in *values* (different instruction stream), so for
//! scalar-vs-lane comparisons only the verdict kinds and codes are
//! required to agree; within the lane engine, worker count must again
//! change nothing.

use systemc_ams::monitor::{MonitorBank, MonitorSpec, Property, Verdict};
use systemc_ams::net::{
    Circuit, ElementId, IntegrationMethod, NodeId, ScenarioProbe, SolverBackend, TransientSolver,
};
use systemc_ams::sweep::{NetlistSweep, Scenario, SweepReport, SweepSpec};

// ---------- shared fixture ---------------------------------------------------

struct Ladder {
    ckt: Circuit,
    resistors: Vec<ElementId>,
    caps: Vec<ElementId>,
    out: NodeId,
}

/// The usual RC ladder driven by a 0 → 1 V pulse (1 µs edge), per-stage
/// τ = 1 µs, output on the last node `n{n-1}`. A plain DC source would
/// start at the settled operating point; the pulse makes the transient
/// real, so the output genuinely rises 0 → 1 V — rich territory for
/// settle/rise/envelope properties.
fn ladder(n: usize) -> Ladder {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source_wave(
        "V",
        prev,
        Circuit::GROUND,
        systemc_ams::net::Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-6,
            fall: 1e-6,
            width: 1.0,
            period: 0.0,
        },
    )
    .unwrap();
    let mut resistors = Vec::new();
    let mut caps = Vec::new();
    for i in 0..n {
        let node = ckt.node(format!("n{i}"));
        resistors.push(ckt.resistor(format!("R{i}"), prev, node, 1e3).unwrap());
        caps.push(
            ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, 1e-9)
                .unwrap(),
        );
        prev = node;
    }
    Ladder {
        ckt,
        resistors,
        caps,
        out: prev,
    }
}

/// Five properties on the ladder output: two that always hold, one
/// vacuous by construction (deadline past `t_end`), one armed-or-not
/// (rise), and one tolerance-dependent (tight settle) so the sweep
/// genuinely mixes pass and fail rows.
fn ladder_monitors() -> MonitorSpec {
    MonitorSpec::parse(
        "env:envelope(lo=-0.1,hi=1.25)@n3;\
         fin:finite()@n3;\
         late:settle(lo=0.9,hi=1.1,by=1.0)@n3;\
         rise:rise(lo=0.1,hi=0.9,within=2.0e-5)@n3;\
         tight:settle(lo=0.95,hi=1.05,by=3.2e-5)@n3",
    )
    .unwrap()
}

fn monitored_sweep(scenarios: usize, workers: usize) -> SweepReport {
    let lad = ladder(4);
    let spec =
        SweepSpec::monte_carlo(&[("dr", -0.2, 0.2), ("dc", -0.2, 0.2)], scenarios, 0x30A7).unwrap();
    let resistors = lad.resistors.clone();
    let caps = lad.caps.clone();
    let out = lad.out;
    NetlistSweep::new(lad.ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(5e-5, 5e-8)
        .monitors(ladder_monitors())
        .run(
            &spec,
            workers,
            &["v_out"],
            move |c, sc| {
                for r in &resistors {
                    c.set_resistance(*r, 1e3 * (1.0 + sc.value("dr")))?;
                }
                for cap in &caps {
                    c.set_capacitance(*cap, 1e-9 * (1.0 + sc.value("dc")))?;
                }
                Ok(())
            },
            |tr: &TransientSolver, m| m[0] = tr.voltage(out),
        )
        .unwrap()
}

/// Deep verdict-level comparison: kinds, codes, and (for fails) the
/// exact witness bits — not just the fingerprint.
fn assert_verdicts_identical(a: &SweepReport, b: &SweepReport, what: &str) {
    assert_eq!(a.monitor_names, b.monitor_names, "{what}: property names");
    assert_eq!(a.scenarios.len(), b.scenarios.len(), "{what}: row count");
    for (ra, rb) in a.scenarios.iter().zip(&b.scenarios) {
        assert_eq!(ra.index, rb.index, "{what}: scenario order");
        assert_eq!(
            ra.verdicts, rb.verdicts,
            "{what}: verdicts of #{}",
            ra.index
        );
    }
    assert_eq!(a.fingerprint(), b.fingerprint(), "{what}: fingerprint");
}

// ---------- worker invariance (the acceptance sweep) -------------------------

#[test]
fn monitored_256_scenario_sweep_is_worker_invariant() {
    let serial = monitored_sweep(256, 1);
    assert_eq!(serial.monitor_names.len(), 5);
    assert_eq!(serial.scenarios.len(), 256);
    for workers in [2, 4] {
        let parallel = monitored_sweep(256, workers);
        assert_verdicts_identical(&serial, &parallel, &format!("workers={workers}"));
    }

    // The verdict mix is non-trivial: the loose properties pass
    // everywhere, the distant deadline is vacuous everywhere, and the
    // tight settle splits the tolerance box into both camps.
    let summary = serial.monitor_summary();
    assert_eq!(summary[0].pass, 256, "envelope: {:?}", summary[0]);
    assert_eq!(summary[1].pass, 256, "finite: {:?}", summary[1]);
    assert_eq!(summary[2].vacuous, 256, "late settle: {:?}", summary[2]);
    assert_eq!(
        summary[3].pass + summary[3].fail,
        256,
        "rise armed everywhere: {:?}",
        summary[3]
    );
    let tight = &summary[4];
    assert!(
        tight.pass > 0 && tight.fail > 0,
        "tight settle should split the box: {tight:?}"
    );
    // Every fail carries a stable code and an in-run witness point.
    let (_, code, t, v) = tight.first_fail.expect("at least one failing scenario");
    assert_eq!(code, "MON001");
    assert!((3.2e-5..=5e-5).contains(&t), "witness time {t}");
    assert!(v.is_finite());
    // Per-scenario verdicts agree with the rollup: a scenario passes
    // when no property on it failed.
    let expected = serial
        .scenarios
        .iter()
        .filter(|s| !s.verdicts.iter().any(|v| matches!(v, Verdict::Fail { .. })))
        .count();
    let pass_rows = serial.passing_scenarios();
    assert!(pass_rows < 256);
    assert_eq!(pass_rows, expected);
}

// ---------- prefix forking ---------------------------------------------------

/// Pulse whose leading edge sits at `delay`: identical to the DC
/// baseline before it, scenario-dependent after — monitors observe the
/// shared prefix once and every fork inherits that automaton state.
fn pulse(v2: f64, delay: f64, tau: f64) -> systemc_ams::net::Waveform {
    systemc_ams::net::Waveform::Pulse {
        v1: 1.0,
        v2,
        delay,
        rise: 8.0 * tau,
        fall: 8.0 * tau,
        width: 64.0 * tau,
        period: 0.0,
    }
}

fn pulse_rc(delay: f64, tau: f64) -> (Circuit, ElementId, NodeId) {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    let v = ckt.voltage_source("V", inp, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("R", inp, out, 1e3).unwrap();
    ckt.capacitor("C", out, Circuit::GROUND, 1e-9).unwrap();
    ckt.set_source_waveform(v, pulse(1.0, delay, tau)).unwrap();
    (ckt, v, out)
}

#[test]
fn monitored_prefix_fork_matches_run_from_zero_bit_for_bit() {
    // Power-of-two step and fork point: every partial sum of h is
    // exact, so fixed-step bit-identity is testable with `==`.
    let h = (2.0f64).powi(-20);
    let t0 = 64.0 * h;
    let t_end = 256.0 * h;
    let (ckt, v, out) = pulse_rc(t0, h);
    let values = [0.0, 0.5, 2.0, 4.0, 8.0];
    let spec = SweepSpec::grid(&[("v2", &values)], 3).unwrap();
    // The overshoot/ramp verdicts depend on samples from *both* sides
    // of the fork point: the running peak is armed inside the prefix.
    let monitors = || {
        MonitorSpec::parse(&format!(
            "over:overshoot(max=6.0)@out;\
             ramp:ramp(from=0.0,until={t0},tol=1e-9)@out;\
             fin:finite()@out"
        ))
        .unwrap()
    };
    let apply =
        |c: &mut Circuit, sc: &Scenario| c.set_source_waveform(v, pulse(sc.value("v2"), t0, h));
    let observe = |tr: &TransientSolver, m: &mut [f64]| m[0] = tr.voltage(out);
    let plain = NetlistSweep::new(ckt.clone(), IntegrationMethod::Trapezoidal)
        .fixed_step(t_end, h)
        .monitors(monitors())
        .run(&spec, 2, &["v_end"], apply, observe)
        .unwrap();
    assert_eq!(plain.prefix_forks, 0);
    // The verdict mix is not vacuous: v2 = 8 overshoots, v2 = 0 does
    // not, and the shared-prefix ramp window is identical everywhere.
    let summary = plain.monitor_summary();
    assert!(
        summary[0].pass > 0 && summary[0].fail > 0,
        "{:?}",
        summary[0]
    );
    assert_eq!(summary[1].pass, 5, "{:?}", summary[1]);

    for workers in [1, 2, 4] {
        let forked = NetlistSweep::new(ckt.clone(), IntegrationMethod::Trapezoidal)
            .fixed_step(t_end, h)
            .prefix(t0)
            .monitors(monitors())
            .run(&spec, workers, &["v_end"], apply, observe)
            .unwrap();
        assert_eq!(forked.prefix_forks, 5);
        assert_verdicts_identical(&plain, &forked, &format!("prefix workers={workers}"));
    }
}

// ---------- lane batching ----------------------------------------------------

fn lane_sweep(lanes: usize, workers: usize) -> SweepReport {
    let lad = ladder(4);
    let spec = SweepSpec::monte_carlo(&[("dr", -0.2, 0.2), ("dc", -0.2, 0.2)], 24, 0x30A7).unwrap();
    let resistors = lad.resistors.clone();
    let caps = lad.caps.clone();
    let out = lad.out;
    NetlistSweep::new(lad.ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(5e-5, 5e-8)
        .monitors(ladder_monitors())
        .lanes(lanes)
        .run_lanes(
            &spec,
            workers,
            &["v_out"],
            move |c, sc| {
                for r in &resistors {
                    c.set_resistance(*r, 1e3 * (1.0 + sc.value("dr")))?;
                }
                for cap in &caps {
                    c.set_capacitance(*cap, 1e-9 * (1.0 + sc.value("dc")))?;
                }
                Ok(())
            },
            |p: &dyn ScenarioProbe, m| m[0] = p.voltage(out),
        )
        .unwrap()
}

#[test]
fn lane_batched_monitors_agree_with_scalar_verdicts() {
    let scalar = monitored_sweep(24, 1);
    for k in [4, 8] {
        let laned = lane_sweep(k, 1);
        // Within the lane engine: worker count changes nothing.
        for workers in [2, 4] {
            assert_verdicts_identical(
                &laned,
                &lane_sweep(k, workers),
                &format!("lanes={k} workers={workers}"),
            );
        }
        // Against the scalar engine: values drift ~1e-9, so borderline
        // witnesses may differ in the low bits — but verdict *kind* and
        // failure *code* must agree for every (scenario, property).
        assert_eq!(scalar.monitor_names, laned.monitor_names);
        for (a, b) in scalar.scenarios.iter().zip(&laned.scenarios) {
            assert_eq!(a.index, b.index);
            for (j, (va, vb)) in a.verdicts.iter().zip(&b.verdicts).enumerate() {
                assert_eq!(
                    std::mem::discriminant(va),
                    std::mem::discriminant(vb),
                    "lanes={k} scenario {} property {j}: {va:?} vs {vb:?}",
                    a.index
                );
                assert_eq!(
                    va.code(),
                    vb.code(),
                    "lanes={k} scenario {} property {j}",
                    a.index
                );
            }
        }
    }
}

// ---------- edge cases: vacuity and non-finite samples -----------------------

#[test]
fn vacuous_and_nan_edges_are_stable() {
    // A rise property whose arming threshold is never reached stays
    // vacuous — distinguishable from a pass in the report.
    let spec = MonitorSpec::parse(
        "armed:rise(lo=5.0,hi=9.0,within=1e-3)@x;\
         env:envelope(lo=-1.0,hi=1.0,from=2.0,until=3.0)@x",
    )
    .unwrap();
    let mut bank = MonitorBank::new(&spec);
    assert_eq!(bank.channels(), ["x".to_string()]);
    for i in 0..100 {
        let t = i as f64 * 1e-4;
        bank.feed(0, t, (t * 1e4).sin());
    }
    let verdicts = bank.finish();
    assert_eq!(verdicts, vec![Verdict::Vacuous, Verdict::Vacuous]);

    // A NaN sample fails *any* property with MON009, witness at the
    // first bad sample — here an envelope that was otherwise passing.
    let spec = MonitorSpec::parse("env:envelope(lo=-2.0,hi=2.0)@x;fin:finite()@x").unwrap();
    let mut bank = MonitorBank::new(&spec);
    bank.feed(0, 0.0, 1.0);
    bank.feed(0, 1e-6, f64::NAN);
    bank.feed(0, 2e-6, 1.0);
    for v in bank.finish() {
        match v {
            Verdict::Fail { code, t, value } => {
                assert_eq!(code, "MON009");
                assert_eq!(t, 1e-6);
                assert!(value.is_nan());
            }
            other => panic!("expected MON009 fail, got {other:?}"),
        }
    }

    // The encoded transport preserves all three cases — including the
    // NaN witness value — bit-for-bit.
    for v in [
        Verdict::Pass,
        Verdict::Vacuous,
        Verdict::Fail {
            code: "MON009",
            t: 1e-6,
            value: f64::NAN,
        },
    ] {
        let back = Verdict::decode(&v.encode());
        match (&v, &back) {
            (
                Verdict::Fail { code, t, value },
                Verdict::Fail {
                    code: c2,
                    t: t2,
                    value: v2,
                },
            ) => {
                assert_eq!(code, c2);
                assert_eq!(t.to_bits(), t2.to_bits());
                assert_eq!(value.to_bits(), v2.to_bits());
            }
            _ => assert_eq!(v, back),
        }
    }

    // Disabled monitors stay out of the report: no names, no verdicts.
    let report = {
        let lad = ladder(2);
        let spec = SweepSpec::grid(&[("dr", &[0.0, 0.1])], 0).unwrap();
        let resistors = lad.resistors.clone();
        let out = lad.out;
        NetlistSweep::new(lad.ckt, IntegrationMethod::Trapezoidal)
            .fixed_step(1e-6, 1e-9)
            .run(
                &spec,
                1,
                &["v"],
                move |c, sc| {
                    for r in &resistors {
                        c.set_resistance(*r, 1e3 * (1.0 + sc.value("dr")))?;
                    }
                    Ok(())
                },
                |tr: &TransientSolver, m| m[0] = tr.voltage(out),
            )
            .unwrap()
    };
    assert!(report.monitor_names.is_empty());
    assert!(report.scenarios.iter().all(|s| s.verdicts.is_empty()));
    assert!(report.monitor_summary().is_empty());
}

// ---------- property smoke: every kind compiles and runs ---------------------

#[test]
fn every_property_kind_round_trips_the_grammar() {
    let text = "a:settle(lo=0.0,hi=1.0,by=1e-3)@x;\
                b:overshoot(max=1.5)@x;\
                c:undershoot(min=-0.5)@x;\
                d:ramp(from=0.0,until=1e-3,tol=1e-6)@x;\
                e:envelope(lo=-1.0,hi=1.0,from=0.0,until=1e-3)@x;\
                f:rise(lo=0.1,hi=0.9,within=1e-4)@x;\
                g:ripple(after=1e-3,max=0.1)@x;\
                h:fmask(f=50.0,max=0.2)@x;\
                i:finite()@x";
    let spec = MonitorSpec::parse(text).unwrap();
    assert_eq!(spec.len(), 9);
    let again = MonitorSpec::parse(&spec.render()).unwrap();
    assert_eq!(spec, again);
    // Each property kind carries its registered code.
    let codes: Vec<_> = spec.props.iter().map(|p| p.property.code()).collect();
    assert_eq!(
        codes,
        vec![
            "MON001", "MON002", "MON003", "MON004", "MON005", "MON006", "MON007", "MON008",
            "MON009"
        ]
    );
    // And the registry knows every one of them.
    for c in codes {
        assert!(
            systemc_ams::monitor::codes::registry()
                .iter()
                .any(|(code, _, _)| *code == c),
            "{c} missing from registry"
        );
    }
    let _ = Property::Finite; // the enum is part of the public API
}
