//! Qualitative integration tests for the experiment suite (E1–E7 in
//! EXPERIMENTS.md). Each test asserts the *shape* the corresponding
//! Criterion benchmark measures quantitatively: who wins, in which
//! direction, and by roughly what factor.

use systemc_ams::blocks::{ideal_sine_snr_db, PipelinedAdc, SineSource, StageErrors};
use systemc_ams::core::{AmsSimulator, TdfGraph};
use systemc_ams::kernel::{Kernel, SimTime};
use systemc_ams::math::fft::Window;
use systemc_ams::math::implicit::{
    integrate_variable, ImplicitMethod, ImplicitStepper, VariableStepOptions,
};
use systemc_ams::math::ode::{FixedStep, OdeMethod};
use systemc_ams::net::{Circuit, IntegrationMethod, TransientSolver, Waveform};
use systemc_ams::wave::analyze_sine;

/// E1 — dataflow clustering avoids per-sample DE scheduling.
///
/// The same 3-stage chain processed (a) as one TDF cluster activated once
/// per sample period by the kernel, and (b) as three DE processes chained
/// through kernel signals. The cluster run needs ~1 activation per
/// sample; the DE run needs ≥3 activations plus delta cycles per sample.
#[test]
fn e1_tdf_cluster_uses_fewer_kernel_activations() {
    const SAMPLES: u64 = 2_000;
    const DEPTH: usize = 8;

    // (a) TDF cluster: kernel cost is 2 activations per sample period
    // (driver + converter writer), independent of the chain depth.
    let mut sim = AmsSimulator::new();
    let out_de = sim.kernel_mut().signal("out", 0.0f64);
    let mut g = TdfGraph::new("chain");
    let mut sigs = vec![g.signal("s0")];
    g.add_module(
        "src",
        SineSource::new(sigs[0].writer(), 1000.0, 1.0, Some(SimTime::from_us(1))),
    );
    for i in 0..DEPTH {
        let next = g.signal(format!("s{}", i + 1));
        g.add_module(
            format!("g{i}"),
            systemc_ams::blocks::Gain::new(sigs[i].reader(), next.writer(), 1.01),
        );
        sigs.push(next);
    }
    g.to_de("out", sigs[DEPTH], out_de);
    sim.add_cluster(g).unwrap();
    sim.run_until(SimTime::from_us(SAMPLES)).unwrap();
    let tdf_activations = sim.kernel().stats().activations;

    // (b) naive: every block is a DE process; kernel cost grows with the
    // chain depth (one activation per block per sample, plus deltas).
    let mut k = Kernel::new();
    let mut chain = vec![k.signal("a0", 0.0f64)];
    for i in 0..DEPTH {
        chain.push(k.signal(format!("a{}", i + 1), 0.0f64));
    }
    k.add_process("src", {
        let a = chain[0];
        move |ctx| {
            let t = ctx.now().to_seconds();
            ctx.write(a, (2.0 * std::f64::consts::PI * 1000.0 * t).sin());
            ctx.next_trigger_in(SimTime::from_us(1));
        }
    });
    for i in 0..DEPTH {
        let (src, dst) = (chain[i], chain[i + 1]);
        let p = k.add_process(format!("g{i}"), move |ctx| {
            let v = ctx.read(src);
            ctx.write(dst, 1.01 * v);
        });
        k.make_sensitive(p, k.signal_event(src));
    }
    k.run_until(SimTime::from_us(SAMPLES)).unwrap();
    let de_activations = k.stats().activations;

    assert!(
        de_activations > 3 * tdf_activations,
        "DE per-sample processes: {de_activations} activations, TDF cluster: {tdf_activations}"
    );
}

/// E2 — integrator accuracy orders: RK4 ≪ trapezoidal < Euler error at
/// the same step size (on a smooth linear problem).
#[test]
fn e2_integration_error_ordering() {
    let run = |method: OdeMethod| {
        let mut x = vec![1.0];
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = -x[0];
        let mut s = FixedStep::new(method, 1e-2);
        s.integrate(&mut f, 0.0, 1.0, &mut x);
        (x[0] - (-1.0f64).exp()).abs()
    };
    let e_euler = run(OdeMethod::Euler);
    let e_heun = run(OdeMethod::Heun);
    let e_rk4 = run(OdeMethod::Rk4);
    assert!(e_euler > 20.0 * e_heun, "{e_euler} vs {e_heun}");
    assert!(e_heun > 100.0 * e_rk4, "{e_heun} vs {e_rk4}");

    // Implicit trapezoidal matches its second-order peer.
    let mut x = vec![1.0];
    let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = -x[0];
    let mut s = ImplicitStepper::new(ImplicitMethod::Trapezoidal, 1e-2);
    s.integrate(&mut f, 0.0, 1.0, &mut x).unwrap();
    let e_trap = (x[0] - (-1.0f64).exp()).abs();
    assert!(e_trap < 2.0 * e_heun, "trap {e_trap} vs heun {e_heun}");
}

/// E3 — stiff systems: the variable-step controller reaches the same
/// accuracy as a fine fixed step with far fewer steps.
#[test]
fn e3_variable_step_wins_on_stiff_system() {
    // Stiff scalar: ẋ = −2000(x − cos t); exact solution ≈ cos t after
    // the 0.5 ms boundary layer.
    let mut stiff = |t: f64, x: &[f64], dx: &mut [f64]| {
        dx[0] = -2000.0 * (x[0] - t.cos()) - t.sin();
    };

    // Fixed-step backward Euler needs small steps for *accuracy*
    // (stability is free): 1e-4 → 20 000 steps over 2 s.
    let mut x_fixed = vec![0.0];
    let mut fixed = ImplicitStepper::new(ImplicitMethod::BackwardEuler, 1e-4);
    let fixed_steps = fixed.integrate(&mut stiff, 0.0, 2.0, &mut x_fixed).unwrap();
    let err_fixed = (x_fixed[0] - 2.0f64.cos()).abs();

    let mut x_var = vec![0.0];
    let stats = integrate_variable(
        &mut stiff,
        0.0,
        2.0,
        &mut x_var,
        &VariableStepOptions {
            rel_tol: 1e-5,
            abs_tol: 1e-8,
            initial_step: 1e-6,
            ..Default::default()
        },
    )
    .unwrap();
    let err_var = (x_var[0] - 2.0f64.cos()).abs();

    assert!(
        err_fixed < 1e-3 && err_var < 1e-3,
        "{err_fixed} / {err_var}"
    );
    assert!(
        stats.accepted * 5 < fixed_steps as usize,
        "variable: {} steps, fixed: {fixed_steps}",
        stats.accepted
    );
}

/// E4 — the frequency-domain model derives from the time-domain netlist:
/// AC analysis matches a transient sine sweep of the same circuit.
#[test]
fn e4_ac_matches_transient_steady_state() {
    let build = || {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        let inp = ckt.external_input();
        (ckt, a, out, inp)
    };
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e-3); // RC pole ≈ 159 Hz

    for &freq in &[50.0, 159.0, 500.0] {
        // AC path.
        let (mut ckt, a, out, _inp) = build();
        ckt.voltage_source_ac("V", a, Circuit::GROUND, 0.0, 1.0)
            .unwrap();
        ckt.resistor("R", a, out, 1e3).unwrap();
        ckt.capacitor("C", out, Circuit::GROUND, 1e-6).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let h_ac = ckt.ac_transfer(&op, out, &[freq]).unwrap()[0].abs();

        // Transient path: drive a sine, measure the settled peak.
        let (mut ckt2, a2, out2, _) = build();
        ckt2.voltage_source_wave(
            "V",
            a2,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq,
                phase: 0.0,
            },
        )
        .unwrap();
        ckt2.resistor("R", a2, out2, 1e3).unwrap();
        ckt2.capacitor("C", out2, Circuit::GROUND, 1e-6).unwrap();
        let mut tr = TransientSolver::new(&ckt2, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_dc().unwrap();
        let settle = 10e-3;
        let t_end = settle + 3.0 / freq;
        let mut peak = 0.0f64;
        tr.run(t_end, 1.0 / freq / 400.0, |s| {
            if s.time() > settle {
                peak = peak.max(s.voltage(out2).abs());
            }
        })
        .unwrap();

        assert!(
            (h_ac - peak).abs() / h_ac < 0.02,
            "f={freq}: AC {h_ac:.4} vs transient {peak:.4} (pole at {f0:.0} Hz)"
        );
    }
}

/// E5 — the dedicated linear path (factor once) does strictly less
/// factorization work than refactoring every step; both give identical
/// results.
#[test]
fn e5_factorization_reuse_is_lossless_and_cheaper() {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("n0");
    ckt.voltage_source_wave(
        "V",
        prev,
        Circuit::GROUND,
        Waveform::Sine {
            offset: 0.0,
            ampl: 1.0,
            freq: 1e3,
            phase: 0.0,
        },
    )
    .unwrap();
    for i in 0..32 {
        let n = ckt.node(format!("n{}", i + 1));
        ckt.resistor(format!("R{i}"), prev, n, 100.0).unwrap();
        ckt.capacitor(format!("C{i}"), n, Circuit::GROUND, 1e-9)
            .unwrap();
        prev = n;
    }
    let last = prev;

    let run = |reuse: bool| {
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.reuse_factorization = reuse;
        tr.initialize_dc().unwrap();
        let mut trace = Vec::new();
        tr.run(200e-6, 1e-6, |s| trace.push(s.voltage(last)))
            .unwrap();
        (tr.stats().factorizations, trace)
    };
    let (fact_reuse, trace_reuse) = run(true);
    let (fact_every, trace_every) = run(false);
    assert!(fact_reuse <= 2, "reuse path factored {fact_reuse} times");
    assert_eq!(fact_every, 200, "naive path factors every step");
    for (a, b) in trace_reuse.iter().zip(&trace_every) {
        assert!((a - b).abs() < 1e-12, "identical trajectories");
    }
}

/// E6 — multi-domain stiffness: the electro-mechanical motor has widely
/// split time constants; trapezoidal at a step resolving only the slow
/// constant stays accurate, explicit integration of the same ODE blows
/// up at that step.
#[test]
fn e6_multidomain_stiffness_requires_implicit() {
    // Motor as an explicit 2-state ODE: di/dt, dω/dt.
    let (r, l, k, j, b) = (1.0, 2e-3, 0.05, 1e-4, 1e-3);
    let v = 10.0;
    let f = move |_t: f64, x: &[f64], dx: &mut [f64]| {
        let (i, w) = (x[0], x[1]);
        dx[0] = (v - r * i - k * w) / l;
        dx[1] = (k * i - b * w) / j;
    };
    let w_expect = k * v / (k * k + r * b);

    // Electrical τ = 2 ms; mechanical τ ≈ 100 ms. Step = 5 ms resolves
    // only the mechanical constant.
    let h = 5e-3;

    // Explicit Euler at h: unstable (h/τ_el = 2.5 > 2).
    let mut f1 = f;
    let mut x = vec![0.0, 0.0];
    let mut euler = FixedStep::new(OdeMethod::Euler, h);
    euler.integrate(&mut f1, 0.0, 1.0, &mut x);
    assert!(
        !x[0].is_finite() || x[0].abs() > 1e3,
        "explicit euler should blow up, got {x:?}"
    );

    // Implicit trapezoidal at the same h: accurate.
    let mut f2 = f;
    let mut x2 = vec![0.0, 0.0];
    let mut trap = ImplicitStepper::new(ImplicitMethod::Trapezoidal, h);
    trap.integrate(&mut f2, 0.0, 1.0, &mut x2).unwrap();
    assert!(
        (x2[1] - w_expect).abs() / w_expect < 0.01,
        "ω = {} vs {w_expect}",
        x2[1]
    );

    // And the conservative-network formulation agrees.
    use systemc_ams::net::Multiphysics;
    let mut ckt = Circuit::new();
    let vcc = ckt.node("vcc");
    let n1 = ckt.node("n1");
    let n2 = ckt.node("n2");
    let shaft = ckt.rot_node("shaft");
    ckt.voltage_source("V", vcc, Circuit::GROUND, v).unwrap();
    ckt.resistor("Ra", vcc, n1, r).unwrap();
    // (armature inductance folded into the sense branch for brevity)
    let sense = ckt.voltage_source("Is", n1, n2, 0.0).unwrap();
    ckt.inertia("J", shaft, j).unwrap();
    ckt.rot_damper("B", shaft, Circuit::rot_ground(), b)
        .unwrap();
    ckt.dc_machine("M", sense, n2, Circuit::GROUND, shaft, k)
        .unwrap();
    let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.initialize_with_ic().unwrap();
    tr.run(1.0, 1e-3, |_| {}).unwrap();
    assert!(
        (tr.voltage(shaft.0) - w_expect).abs() / w_expect < 0.01,
        "network ω = {}",
        tr.voltage(shaft.0)
    );
}

/// E7 — behavioural ADC accuracy vs the analytic reference: the ideal
/// pipelined converter measures within half a bit of 6.02·N + 1.76, and
/// digital correction recovers the ENOB lost to comparator offsets.
#[test]
fn e7_pipelined_adc_enob_vs_analytic() {
    let run = |errors: &[StageErrors], correction: bool| {
        let mut g = TdfGraph::new("adc");
        let analog = g.signal("analog");
        let code = g.signal("code");
        let probe = g.probe(code);
        let n: u64 = 4096;
        let f_in = 389.0 * 1e6 / n as f64;
        g.add_module(
            "src",
            SineSource::new(analog.writer(), f_in, 0.95, Some(SimTime::from_us(1))),
        );
        g.add_module(
            "adc",
            PipelinedAdc::new(analog.reader(), code.writer(), 9, 1.0)
                .with_errors(errors)
                .with_correction(correction),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(n).unwrap();
        analyze_sine(&probe.values(), 1e6, Window::Blackman)
            .unwrap()
            .enob
    };

    let ideal = vec![StageErrors::default(); 9];
    let enob_ideal = run(&ideal, true);
    assert!(
        (enob_ideal - 10.0).abs() < 0.6,
        "ideal 9-stage ≈ 10 bits (analytic {:.1} dB), measured {enob_ideal:.2}",
        ideal_sine_snr_db(10)
    );

    let offsets = vec![
        StageErrors {
            comparator_offset: 0.1,
            ..Default::default()
        };
        9
    ];
    let with = run(&offsets, true);
    let without = run(&offsets, false);
    assert!(with > 9.0, "correction keeps ENOB high: {with:.2}");
    assert!(
        without < with - 3.0,
        "without correction ≥3 bits lost: {without:.2} vs {with:.2}"
    );
}

/// F1-lite — the ADSL chain's in-band SNR is dominated by the Σ∆
/// modulator and improves with oversampling ratio (the architectural
/// knob the paper's phase-1 toolset is meant to explore).
#[test]
fn f1_sigma_delta_snr_improves_with_osr() {
    let run_osr = |osr: u64| {
        let mut g = TdfGraph::new("sd");
        let x = g.signal("x");
        let bits = g.signal("bits");
        let dec = g.signal("dec");
        let probe = g.probe(dec);
        let fs_mod = 1e6;
        let n_out: u64 = 2048;
        // Keep the tone at 1/512 of the *decimated* rate for coherence.
        let f_tone = fs_mod / osr as f64 / 512.0 * 5.0;
        g.add_module(
            "src",
            SineSource::new(x.writer(), f_tone, 0.5, Some(SimTime::from_us(1))),
        );
        g.add_module(
            "sd",
            systemc_ams::blocks::SigmaDelta2::new(x.reader(), bits.writer()),
        );
        g.add_module(
            "cic",
            systemc_ams::blocks::CicDecimator::new(bits.reader(), dec.writer(), osr, 2),
        );
        let mut c = g.elaborate().unwrap();
        c.run_standalone(n_out).unwrap();
        let v = probe.values();
        analyze_sine(&v[v.len() - 1024..], fs_mod / osr as f64, Window::Blackman)
            .unwrap()
            .snr_db
    };
    let snr_16 = run_osr(16);
    let snr_64 = run_osr(64);
    // 2nd-order shaping: ~15 dB per octave of OSR → 2 octaves ≈ 30 dB;
    // CIC droop and leakage eat some of it. Require a clear win.
    assert!(
        snr_64 > snr_16 + 12.0,
        "OSR 64: {snr_64:.1} dB vs OSR 16: {snr_16:.1} dB"
    );
}
