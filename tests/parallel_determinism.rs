//! Parallel execution must be observationally identical to serial.
//!
//! The `ams-exec` engine promises bit-identical results: for the same
//! model, probe waveforms and DE signal traces from [`ParallelSim`] must
//! equal those from the serial [`AmsSimulator`], sample for sample, bit
//! for bit — regardless of worker count or scheduling jitter.

use std::cell::RefCell;
use std::rc::Rc;

use systemc_ams::blocks::{FirFilter, SineSource};
use systemc_ams::core::{AmsSimulator, CoreError, TdfGraph, TdfIo, TdfModule, TdfProbe, TdfSetup};
use systemc_ams::exec::{CountingHook, ParallelSim};
use systemc_ams::kernel::{Kernel, Signal, SimTime};

/// A self-timed oscillator with internal state, so scheduling mistakes
/// (skipped/duplicated firings, stale resets) corrupt the waveform.
struct StatefulOsc {
    out: systemc_ams::core::TdfOut,
    k: u64,
    freq: f64,
}

impl TdfModule for StatefulOsc {
    fn setup(&mut self, cfg: &mut TdfSetup) {
        cfg.output(self.out);
        cfg.set_timestep(SimTime::from_us(1));
    }
    fn processing(&mut self, io: &mut TdfIo<'_>) -> Result<(), CoreError> {
        let phase = self.k as f64 * self.freq;
        io.write1(self.out, phase.sin() + 0.25 * (3.0 * phase).cos());
        self.k += 1;
        Ok(())
    }
    fn reset(&mut self) {
        self.k = 0;
    }
}

/// An independent (no DE bindings) filtered-oscillator cluster.
fn free_cluster(i: usize) -> (TdfGraph, TdfProbe) {
    let mut g = TdfGraph::new(format!("free{i}"));
    let raw = g.signal("raw");
    let flt = g.signal("flt");
    let probe = g.probe(flt);
    g.add_module(
        "osc",
        StatefulOsc {
            out: raw.writer(),
            k: 0,
            freq: 0.01 * (i + 1) as f64,
        },
    );
    g.add_module(
        "ma",
        FirFilter::moving_average(raw.reader(), flt.writer(), 4),
    );
    (g, probe)
}

/// A DE-coupled cluster: reads a kernel signal, filters, writes back.
fn bound_cluster(i: usize, input: Signal<f64>, output: Signal<f64>) -> (TdfGraph, TdfProbe) {
    let mut g = TdfGraph::new(format!("bound{i}"));
    let u = g.from_de("u", input);
    let y = g.signal("y");
    let probe = g.probe(y);
    g.add_module("ma", FirFilter::moving_average(u.reader(), y.writer(), 3));
    let s = g.signal("s");
    // Pins the cluster period at 5 µs via the source timestep.
    g.add_module(
        "pacer",
        SineSource::new(s.writer(), 1000.0, 0.0, Some(SimTime::from_us(5))),
    );
    g.to_de("y", y, output);
    (g, probe)
}

/// Registers a DE-side stimulus (square wave) and a change-triggered
/// trace recorder on `kernel`; returns the stimulus/response signals and
/// the recorded `(time_fs, value)` trace.
#[allow(clippy::type_complexity)]
fn de_side(kernel: &mut Kernel) -> (Signal<f64>, Signal<f64>, Rc<RefCell<Vec<(u64, f64)>>>) {
    let stim = kernel.signal("stim", 0.0f64);
    let resp = kernel.signal("resp", 0.0f64);
    let pid = kernel.add_process("square", move |ctx| {
        let v = ctx.read(stim);
        ctx.write(stim, if v > 0.5 { 0.0 } else { 1.0 });
        ctx.next_trigger_in(SimTime::from_us(7));
    });
    let _ = pid;
    let trace = Rc::new(RefCell::new(Vec::new()));
    let t2 = trace.clone();
    let watcher = kernel.add_process("watch", move |ctx| {
        t2.borrow_mut().push((ctx.now().as_fs(), ctx.read(resp)));
    });
    let ev = kernel.signal_event(resp);
    kernel.make_sensitive(watcher, ev);
    kernel.dont_initialize(watcher);
    (stim, resp, trace)
}

const HORIZON: SimTime = SimTime::from_us(500);

#[allow(clippy::type_complexity)]
fn run_serial() -> (Vec<Vec<(f64, f64)>>, Vec<(u64, f64)>) {
    let mut sim = AmsSimulator::new();
    let (stim, resp, trace) = de_side(sim.kernel_mut());
    let mut probes = Vec::new();
    for i in 0..4 {
        let (g, p) = free_cluster(i);
        sim.add_cluster(g).expect("elaborates");
        probes.push(p);
    }
    let (g, p) = bound_cluster(0, stim, resp);
    sim.add_cluster(g).expect("elaborates");
    probes.push(p);
    sim.run_until(HORIZON).expect("serial run");
    let samples = probes.iter().map(|p| p.samples()).collect();
    let trace = trace.borrow().clone();
    (samples, trace)
}

#[allow(clippy::type_complexity)]
fn run_parallel(workers: usize) -> (Vec<Vec<(f64, f64)>>, Vec<(u64, f64)>) {
    let mut sim = ParallelSim::new(workers);
    let (stim, resp, trace) = de_side(sim.kernel_mut());
    let mut probes = Vec::new();
    for i in 0..4 {
        let (g, p) = free_cluster(i);
        sim.add_graph(g);
        probes.push(p);
    }
    let (g, p) = bound_cluster(0, stim, resp);
    sim.add_graph(g);
    probes.push(p);
    sim.run_until(HORIZON).expect("parallel run");
    let samples = probes.iter().map(|p| p.samples()).collect();
    let trace = trace.borrow().clone();
    (samples, trace)
}

#[test]
fn parallel_matches_serial_bit_for_bit() {
    let (serial_probes, serial_trace) = run_serial();
    for workers in [1, 2, 4] {
        let (par_probes, par_trace) = run_parallel(workers);
        assert_eq!(
            serial_probes.len(),
            par_probes.len(),
            "probe count ({workers} workers)"
        );
        for (i, (s, p)) in serial_probes.iter().zip(&par_probes).enumerate() {
            assert!(!s.is_empty(), "serial probe {i} recorded nothing");
            assert_eq!(s, p, "probe {i} diverged with {workers} workers");
        }
        assert!(!serial_trace.is_empty(), "DE trace recorded nothing");
        assert_eq!(
            serial_trace, par_trace,
            "DE response trace diverged with {workers} workers"
        );
    }
}

#[test]
fn independent_clusters_spread_across_workers() {
    let mut sim = ParallelSim::new(4);
    for i in 0..4 {
        let (g, _) = free_cluster(i);
        sim.add_graph(g);
    }
    sim.elaborate().expect("elaborates");
    let part = sim.partition().expect("partitioned");
    assert_eq!(part.components.len(), 4);
    assert_eq!(part.busy_workers(), 4);
}

/// A piped two-cluster chain must equal the same chain fused into one
/// serial cluster: the SPSC ring delivers sample k of the producer as
/// pull k of the consumer, which is exactly a direct signal connection.
#[test]
fn pipe_matches_direct_connection() {
    const T: SimTime = SimTime::from_us(200);

    // Serial reference: source → moving average inside one graph.
    let mut sim = AmsSimulator::new();
    let mut g = TdfGraph::new("direct");
    let s = g.signal("s");
    let out = g.signal("out");
    let reference = g.probe(out);
    g.add_module(
        "src",
        SineSource::new(s.writer(), 500.0, 1.0, Some(SimTime::from_us(1))),
    );
    g.add_module("ma", FirFilter::moving_average(s.reader(), out.writer(), 2));
    sim.add_cluster(g).expect("elaborates");
    sim.run_until(T).expect("serial run");

    // Piped: producer and consumer are separate clusters linked by a ring.
    let mut sim = ParallelSim::new(2);
    let mut ga = TdfGraph::new("prod");
    let sa = ga.signal("s");
    ga.add_module(
        "src",
        SineSource::new(sa.writer(), 500.0, 1.0, Some(SimTime::from_us(1))),
    );
    let mut gb = TdfGraph::new("cons");
    let out = gb.signal("out");
    let piped = gb.probe(out);
    // Pins the consumer's period; the pipe input has no intrinsic rate.
    let pace = gb.signal("pace");
    gb.add_module(
        "pace",
        SineSource::new(pace.writer(), 1.0, 0.0, Some(SimTime::from_us(1))),
    );
    let a = sim.add_graph(ga);
    let b = sim.add_graph(gb);
    // Capacity must cover the whole horizon: free-running clusters get
    // one window for the entire run.
    let inp = sim.pipe("link", a, sa, b, 256);
    sim.graph_mut(b).add_module(
        "ma",
        FirFilter::moving_average(inp.reader(), out.writer(), 2),
    );
    sim.run_until(T).expect("piped run");

    assert_eq!(
        reference.samples(),
        piped.samples(),
        "piped chain diverged from the fused serial cluster"
    );
    let part = sim.partition().expect("partitioned");
    assert_eq!(
        part.components,
        vec![vec![0, 1]],
        "pipe must fuse components"
    );
    assert!(sim.stats().ring_high_water > 0, "ring saw traffic");
}

#[test]
fn reset_reruns_identically() {
    let mut sim = ParallelSim::new(2);
    let mut probes = Vec::new();
    for i in 0..3 {
        let (g, p) = free_cluster(i);
        sim.add_graph(g);
        probes.push(p);
    }
    sim.set_hook(CountingHook::default());
    sim.run_until(SimTime::from_us(100)).expect("first run");
    let first: Vec<Vec<(f64, f64)>> = probes.iter().map(|p| p.samples()).collect();
    assert!(first.iter().all(|s| !s.is_empty()));

    sim.reset().expect("reset");
    assert_eq!(sim.now(), SimTime::ZERO);
    assert!(probes.iter().all(|p| p.is_empty()), "reset clears probes");

    sim.run_until(SimTime::from_us(100)).expect("second run");
    let second: Vec<Vec<(f64, f64)>> = probes.iter().map(|p| p.samples()).collect();
    assert_eq!(first, second, "re-run after reset must reproduce exactly");

    let stats = sim.stats();
    assert!(stats.windows > 0);
    assert_eq!(stats.clusters.len(), 3);
    assert!(stats.totals().iterations > 0);
}
