//! Integration tests: full heterogeneous simulations spanning the DE
//! kernel, TDF clusters, embedded CT solvers and converter ports — the
//! paper's O1 ("suitable for the description and the simulation of
//! heterogeneous systems") exercised end-to-end.

use systemc_ams::blocks::{Comparator, Gain, LtiFilter, SineSource, Sum};
use systemc_ams::core::{
    AmsSimulator, CoreError, CtModule, LtiCtSolver, NetlistCtSolver, TdfGraph,
};
use systemc_ams::kernel::SimTime;
use systemc_ams::lti::{Discretization, TransferFunction};
use systemc_ams::net::{Circuit, IntegrationMethod, Waveform};

/// RC step response through the complete stack:
/// DE signal → converter → CT solver in TDF → converter → DE signal.
#[test]
fn de_tdf_ct_roundtrip_rc_step() {
    let mut sim = AmsSimulator::new();
    let stim = sim.kernel_mut().signal("stim", 0.0f64);
    let resp = sim.kernel_mut().signal("resp", 0.0f64);

    let mut g = TdfGraph::new("rc");
    let u = g.from_de("u", stim);
    let y = g.signal("y");
    let tf = TransferFunction::low_pass1(1000.0).unwrap(); // τ = 1 ms
    let solver = LtiCtSolver::from_transfer_function(&tf, Discretization::Zoh).unwrap();
    g.add_module(
        "rc",
        CtModule::new(
            "rc",
            Box::new(solver),
            vec![u.reader()],
            vec![y.writer()],
            Some(SimTime::from_us(10)),
        ),
    );
    g.to_de("y", y, resp);
    sim.add_cluster(g).unwrap();

    // Apply the step at t = 2 ms from the DE side.
    sim.kernel_mut().poke(stim, 0.0);
    sim.run_until(SimTime::from_ms(2)).unwrap();
    assert!(
        sim.kernel().peek(resp).abs() < 1e-9,
        "quiescent before step"
    );
    sim.kernel_mut().poke(stim, 2.0);
    // One time constant after the step.
    sim.run_until(SimTime::from_ms(3)).unwrap();
    let v = sim.kernel().peek(resp);
    let expect = 2.0 * (1.0 - (-1.0f64).exp());
    assert!((v - expect).abs() < 0.01, "v(τ) = {v}, analytic {expect}");
    // Five time constants: settled.
    sim.run_until(SimTime::from_ms(10)).unwrap();
    assert!((sim.kernel().peek(resp) - 2.0).abs() < 2e-3);
}

/// A bang-bang temperature-style control loop: TDF plant (RC), DE
/// comparator-driven control through converters in both directions.
#[test]
fn bang_bang_control_loop_regulates() {
    let mut sim = AmsSimulator::new();
    let heater = sim.kernel_mut().signal("heater", 1.0f64);
    let temp_de = sim.kernel_mut().signal("temp", 0.0f64);

    // DE controller: heater on below 0.45, off above 0.55.
    let h2 = heater;
    let t2 = temp_de;
    let pid = sim.kernel_mut().add_process("thermostat", move |ctx| {
        let t = ctx.read(t2);
        if t > 0.55 {
            ctx.write(h2, 0.0);
        } else if t < 0.45 {
            ctx.write(h2, 1.0);
        }
    });
    let ev = sim.kernel().signal_event(temp_de);
    sim.kernel_mut().make_sensitive(pid, ev);
    sim.kernel_mut().dont_initialize(pid);

    let mut g = TdfGraph::new("plant");
    let u = g.from_de("u", heater);
    let y = g.signal("y");
    let probe = g.probe(y);
    g.add_module(
        "thermal",
        LtiFilter::low_pass1(u.reader(), y.writer(), 50.0, Some(SimTime::from_us(100))).unwrap(),
    );
    g.to_de("temp", y, temp_de);
    sim.add_cluster(g).unwrap();

    sim.run_until(SimTime::from_ms(200)).unwrap();
    // After start-up the plant output must oscillate inside the band.
    let vals = probe.values();
    let tail = &vals[vals.len() / 2..];
    let lo = tail.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(lo > 0.40, "lower excursion {lo}");
    assert!(hi < 0.60, "upper excursion {hi}");
    assert!(hi - lo > 0.05, "limit cycle present ({lo}..{hi})");
}

/// Two clusters at different rates plus a netlist solver: the
/// sine → netlist RC → comparator chain in a 1 µs cluster, a slow monitor
/// in a 1 ms cluster, exchanging values through DE.
#[test]
fn multi_cluster_multi_rate_cosimulation() {
    let mut sim = AmsSimulator::new();
    let cmp_de = sim.kernel_mut().signal("cmp", 0.0f64);
    let duty_de = sim.kernel_mut().signal("duty", 0.0f64);

    // Fast cluster: 500 Hz sine through an RC netlist, compared at 0.
    let mut fast = TdfGraph::new("fast");
    let src = fast.signal("src");
    let filt = fast.signal("filt");
    let dec = fast.signal("dec");
    fast.add_module(
        "sine",
        SineSource::new(src.writer(), 500.0, 1.0, Some(SimTime::from_us(20))),
    );
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    let inp = ckt.external_input();
    ckt.voltage_source_wave("V", a, Circuit::GROUND, Waveform::External(inp))
        .unwrap();
    ckt.resistor("R", a, out, 1e3).unwrap();
    ckt.capacitor("C", out, Circuit::GROUND, 50e-9).unwrap(); // 3.2 kHz pole
    let ns =
        NetlistCtSolver::new(&ckt, IntegrationMethod::Trapezoidal, vec![inp], vec![out]).unwrap();
    fast.add_module(
        "rc",
        CtModule::new(
            "rc",
            Box::new(ns),
            vec![src.reader()],
            vec![filt.writer()],
            None,
        ),
    );
    fast.add_module("cmp", Comparator::new(filt.reader(), dec.writer(), 0.0));
    fast.to_de("cmp", dec, cmp_de);
    sim.add_cluster(fast).unwrap();

    // Slow cluster: averages the comparator decision over 1 ms windows
    // (the duty cycle of a 0-centred sine is 1/2).
    let mut slow = TdfGraph::new("slow");
    let cmp_in = slow.from_de("cmp_in", cmp_de);
    let avg = slow.signal("avg");
    let probe = slow.probe(avg);
    slow.add_module(
        "iir",
        LtiFilter::low_pass1(
            cmp_in.reader(),
            avg.writer(),
            20.0,
            Some(SimTime::from_ms(1)),
        )
        .unwrap(),
    );
    slow.to_de("duty", avg, duty_de);
    sim.add_cluster(slow).unwrap();

    sim.run_until(SimTime::from_ms(400)).unwrap();
    let duty = sim.kernel().peek(duty_de);
    assert!((duty - 0.5).abs() < 0.05, "duty cycle {duty}");
    assert!(probe.len() >= 399, "slow cluster ran every 1 ms");
}

/// AC analysis of a mixed chain (gain + filter + feedback summing node)
/// matches the analytic closed-loop transfer function.
#[test]
fn ac_analysis_of_feedback_chain_matches_analytic() {
    // Loop: e = src − y; y = H(s)·k·e with H = low-pass, k = 10.
    let mut g = TdfGraph::new("loop");
    let src = g.signal("src");
    let err = g.signal("err");
    let drive = g.signal("drive");
    let y = g.signal("y");

    g.add_module(
        "src",
        SineSource::new(src.writer(), 1.0, 0.0, Some(SimTime::from_us(10))).with_ac_magnitude(1.0),
    );
    // err = src − y (y read with a one-sample delay to break the loop).
    struct DelayedSub {
        a: systemc_ams::core::TdfIn,
        b: systemc_ams::core::TdfIn,
        out: systemc_ams::core::TdfOut,
    }
    impl systemc_ams::core::TdfModule for DelayedSub {
        fn setup(&mut self, cfg: &mut systemc_ams::core::TdfSetup) {
            cfg.input(self.a);
            cfg.input_with(self.b, 1, 1);
            cfg.output(self.out);
        }
        fn processing(&mut self, io: &mut systemc_ams::core::TdfIo<'_>) -> Result<(), CoreError> {
            let a = io.read1(self.a);
            let b = io.read1(self.b);
            io.write1(self.out, a - b);
            Ok(())
        }
        fn ac_processing(&mut self, ac: &mut systemc_ams::core::AcIo<'_>) {
            ac.set_gain(self.a, self.out, systemc_ams::math::Complex64::ONE);
            ac.set_gain(self.b, self.out, -systemc_ams::math::Complex64::ONE);
        }
    }
    g.add_module(
        "sub",
        DelayedSub {
            a: src.reader(),
            b: y.reader(),
            out: err.writer(),
        },
    );
    g.add_module("k", Gain::new(err.reader(), drive.writer(), 10.0));
    let f0 = 100.0;
    g.add_module(
        "h",
        LtiFilter::low_pass1(drive.reader(), y.writer(), f0, None).unwrap(),
    );
    let mut c = g.elaborate().unwrap();

    let w0 = 2.0 * std::f64::consts::PI * f0;
    let h = TransferFunction::low_pass1(w0).unwrap();
    let k = TransferFunction::gain(10.0);
    let closed = h.series(&k).feedback(&TransferFunction::gain(1.0));

    let freqs = [10.0, 100.0, 1000.0, 10_000.0];
    let ac = c.ac_analysis(&freqs).unwrap();
    let resp = ac.response(y);
    for (i, &f) in freqs.iter().enumerate() {
        let analytic = closed.freq_response(2.0 * std::f64::consts::PI * f);
        assert!(
            (resp[i] - analytic).abs() < 1e-9,
            "f = {f}: {} vs {}",
            resp[i],
            analytic
        );
    }
}

/// A summing node with weighted inputs behaves identically in time and
/// frequency domains.
#[test]
fn sum_block_time_and_frequency_consistency() {
    let mut g = TdfGraph::new("sum");
    let a = g.signal("a");
    let b = g.signal("b");
    let out = g.signal("out");
    let probe = g.probe(out);
    g.add_module(
        "sa",
        SineSource::new(a.writer(), 100.0, 1.0, Some(SimTime::from_us(100))).with_ac_magnitude(1.0),
    );
    g.add_module("sb", SineSource::new(b.writer(), 100.0, 0.5, None));
    g.add_module(
        "sum",
        Sum::weighted(a.reader(), b.reader(), out.writer(), 2.0, -1.0),
    );
    let mut c = g.elaborate().unwrap();
    c.run_standalone(100).unwrap();
    // Time domain: 2·sin − 0.5·sin = 1.5·sin.
    let peak = probe.values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    assert!((peak - 1.5).abs() < 0.01, "time-domain peak {peak}");
    // Frequency domain: only `a` carries the AC stimulus → gain 2.
    let ac = c.ac_analysis(&[100.0]).unwrap();
    assert!((ac.response(out)[0].re - 2.0).abs() < 1e-12);
}

/// The paper's consistent-initial-state requirement: a netlist biased at
/// DC starts transient simulation without any start-up glitch.
#[test]
fn quiescent_state_initialization_is_glitch_free() {
    let mut ckt = Circuit::new();
    let vcc = ckt.node("vcc");
    let mid = ckt.node("mid");
    ckt.voltage_source("V", vcc, Circuit::GROUND, 10.0).unwrap();
    ckt.resistor("R1", vcc, mid, 1e3).unwrap();
    ckt.resistor("R2", mid, Circuit::GROUND, 1e3).unwrap();
    ckt.capacitor("C", mid, Circuit::GROUND, 1e-6).unwrap();
    let mut tr =
        systemc_ams::net::TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
    tr.initialize_dc().unwrap();
    // The capacitor is already at the divider voltage: nothing moves.
    let mut max_dev = 0.0f64;
    tr.run(5e-3, 1e-6, |s| {
        max_dev = max_dev.max((s.voltage(mid) - 5.0).abs());
    })
    .unwrap();
    // The DC solution includes the capacitor's gmin stamp (1e-12 S), so
    // the quiescent point differs from the ideal divider by a few nV.
    assert!(max_dev < 1e-6, "glitch of {max_dev} V from the DC state");
}
