//! A traced sweep must export a byte-identical Chrome trace on every
//! run with the same seed and worker count.
//!
//! The exporter only serializes *simulated* time (fs → µs) and the
//! deterministic track/span structure — never wall-clock readings — so
//! two runs of the same spec on the same worker count must produce the
//! same JSON text, byte for byte. This is the observability mirror of
//! `sweep_determinism.rs`: the trace is as reproducible as the report.

use systemc_ams::net::{Circuit, ElementId, IntegrationMethod, NodeId, SolverBackend};
use systemc_ams::scope::{chrome, Phase, ScopeTrace, SpanKind};
use systemc_ams::sweep::{NetlistSweep, SweepSpec};

struct Ladder {
    ckt: Circuit,
    resistors: Vec<ElementId>,
    out: NodeId,
}

fn ladder(n: usize) -> Ladder {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.voltage_source("V", prev, Circuit::GROUND, 1.0).unwrap();
    let mut resistors = Vec::new();
    for i in 0..n {
        let node = ckt.node(format!("n{i}"));
        resistors.push(ckt.resistor(format!("R{i}"), prev, node, 1e3).unwrap());
        ckt.capacitor(format!("C{i}"), node, Circuit::GROUND, 1e-9)
            .unwrap();
        prev = node;
    }
    Ladder {
        ckt,
        resistors,
        out: prev,
    }
}

fn traced_sweep(workers: usize) -> ScopeTrace {
    let lad = ladder(8);
    let spec = SweepSpec::monte_carlo(&[("dr", -0.2, 0.2)], 12, 0x7AC3).unwrap();
    let resistors = lad.resistors.clone();
    let out = lad.out;
    let report = NetlistSweep::new(lad.ckt, IntegrationMethod::Trapezoidal)
        .backend(SolverBackend::Sparse)
        .fixed_step(2e-6, 4e-9)
        .trace(true)
        .run(
            &spec,
            workers,
            &["v_out"],
            move |c, sc| {
                for r in &resistors {
                    c.set_resistance(*r, 1e3 * (1.0 + sc.value("dr")))?;
                }
                Ok(())
            },
            |tr, m| m[0] = tr.voltage(out),
        )
        .unwrap();
    report.trace.expect("tracing was enabled")
}

#[test]
fn chrome_export_is_byte_identical_across_runs() {
    for workers in [1, 3] {
        let a = chrome::export(&traced_sweep(workers));
        let b = chrome::export(&traced_sweep(workers));
        assert_eq!(a, b, "workers={workers}: export text diverged");
        // And it stays a valid Chrome trace document.
        let events = chrome::validate(&a).expect("schema-valid export");
        assert!(events > 0, "workers={workers}: empty export");
    }
}

#[test]
fn every_span_is_attributed_to_a_scenario_and_a_track() {
    let trace = traced_sweep(2);
    // Every Scenario begin across all tracks, exactly once per index.
    let mut begun: Vec<u64> = trace
        .tracks
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.kind == SpanKind::Scenario && e.phase == Phase::Begin)
        .map(|e| e.arg)
        .collect();
    begun.sort_unstable();
    assert_eq!(begun, (0..12).collect::<Vec<u64>>());
    // Tracks carry the coordinator/shard attribution.
    for t in &trace.tracks {
        assert!(
            t.process == "coordinator" || t.process.starts_with("shard-"),
            "unexpected track {}",
            t.process
        );
    }
    // The solver spans (per-scenario MNA work) landed on those tracks.
    assert!(trace
        .tracks
        .iter()
        .flat_map(|t| &t.events)
        .any(|e| e.kind == SpanKind::MnaSolve));
}
