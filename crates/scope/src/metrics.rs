//! Named counters, gauges and log-bucket histograms.
//!
//! The registry is a `BTreeMap` keyed by metric name, so iteration —
//! and therefore every rendering — is deterministic. Histograms are
//! HDR-style log-linear buckets computed directly from the `f64` bit
//! pattern: the bucket index is the exponent plus the top four mantissa
//! bits, giving 16 sub-buckets per octave (≤ ~4.5 % relative error) at
//! a fixed memory cost, with exact `min`/`max`/`sum`/`count` kept on
//! the side. Pure Rust, no dependencies.

use std::collections::BTreeMap;

/// Number of mantissa bits kept in the bucket index (sub-buckets per
/// octave = `2^SUB_BITS`).
const SUB_BITS: u32 = 4;
const BUCKET_SHIFT: u32 = 52 - SUB_BITS;

/// A log-linear histogram over non-negative `f64` values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Occupied buckets: index → count. Index 0 collects zero,
    /// negative and non-finite values.
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(v: f64) -> u32 {
        if v > 0.0 && v.is_finite() {
            (v.to_bits() >> BUCKET_SHIFT) as u32
        } else {
            0
        }
    }

    /// The lower bound of a bucket (its reported representative value).
    fn bucket_value(bucket: u32) -> f64 {
        if bucket == 0 {
            0.0
        } else {
            f64::from_bits(u64::from(bucket) << BUCKET_SHIFT)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (exact), or `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (exact), or `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Arithmetic mean (exact), or `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), quantized to the
    /// bucket's lower bound (≤ ~4.5 % below the true value), or `NaN`
    /// when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Self::bucket_value(bucket);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
            self.count += other.count;
            self.sum += other.sum;
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-value-wins measurement.
    Gauge(f64),
    /// A distribution of observations.
    Histogram(Histogram),
}

/// A deterministic (sorted-by-name) collection of metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += n,
            other => *other = Metric::Counter(n),
        }
    }

    /// Sets the gauge `name`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.metrics.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Records one observation into the histogram `name`, creating it
    /// first if needed.
    pub fn record(&mut self, name: &str, v: f64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.record(v),
            other => {
                let mut h = Histogram::new();
                h.record(v);
                *other = Metric::Histogram(h);
            }
        }
    }

    /// Registers an empty histogram under `name` when absent, so
    /// renderings expose a stable key set even before the first
    /// observation arrives. No-op when `name` already exists.
    pub fn declare_histogram(&mut self, name: &str) {
        self.metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()));
    }

    /// The counter's value, or 0 when absent (or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// The gauge's value, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram registered under `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the other's value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.metrics {
            match (self.metrics.get_mut(name), metric) {
                (Some(Metric::Counter(a)), Metric::Counter(b)) => *a += b,
                (Some(Metric::Histogram(a)), Metric::Histogram(b)) => a.merge(b),
                (_, m) => {
                    self.metrics.insert(name.clone(), m.clone());
                }
            }
        }
    }

    /// A human-readable listing, one metric per line, in name order.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "  {name}: {c}");
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "  {name}: {v:.6e}");
                }
                Metric::Histogram(h) if h.count() == 0 => {
                    let _ = writeln!(out, "  {name}: (no samples)");
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "  {name}: n={} min={:.3e} p50={:.3e} p95={:.3e} max={:.3e} mean={:.3e}",
                        h.count(),
                        h.min(),
                        h.percentile(50.0),
                        h.percentile(95.0),
                        h.max(),
                        h.mean(),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.counter_add("windows", 3);
        m.counter_add("windows", 2);
        m.gauge_set("ring.high_water", 7.0);
        assert_eq!(m.counter("windows"), 5);
        assert_eq!(m.gauge("ring.high_water"), Some(7.0));
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.gauge("absent"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn histogram_percentiles_track_the_distribution() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Bucket quantization is ≤ ~4.5 % below the true value.
        let p50 = h.percentile(50.0);
        assert!((450.0..=500.0).contains(&p50), "p50 = {p50}");
        let p95 = h.percentile(95.0);
        assert!((880.0..=950.0).contains(&p95), "p95 = {p95}");
        assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn histogram_handles_zero_and_negative() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(2.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 2.0);
        // The sub-normal bucket reports 0.0.
        assert_eq!(h.percentile(1.0), 0.0);
    }

    #[test]
    fn empty_histogram_is_nan() {
        let h = Histogram::new();
        assert!(h.min().is_nan());
        assert!(h.max().is_nan());
        assert!(h.mean().is_nan());
        assert!(h.percentile(50.0).is_nan());
    }

    #[test]
    fn merge_folds_counters_histograms_and_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.record("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.record("h", 100.0);
        b.gauge_set("g", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(3.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn zero_count_histogram_renders_an_explicit_marker() {
        let mut m = MetricsRegistry::new();
        m.declare_histogram("sweep.latency_us");
        assert_eq!(m.render(), "  sweep.latency_us: (no samples)\n");
        m.record("sweep.latency_us", 3.0);
        assert!(m.render().contains("n=1"), "{}", m.render());
        // Declaring an existing metric never clobbers it.
        m.declare_histogram("sweep.latency_us");
        assert_eq!(m.histogram("sweep.latency_us").unwrap().count(), 1);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z", 1);
        m.counter_add("a", 2);
        let r = m.render();
        let a = r.find("a: 2").unwrap();
        let z = r.find("z: 1").unwrap();
        assert!(a < z);
        assert_eq!(m.render(), r);
    }
}
