//! Span/event recording.
//!
//! A [`Tracer`] is a single-owner event recorder: the component that
//! owns it (a kernel, a cluster, a transient solver, an execution
//! coordinator) writes [`TraceEvent`]s into a plain `Vec` — lock-free
//! because nothing else can touch it — and hands the buffer over at
//! collection time. The disabled state is a `None`: every hook costs
//! exactly one branch, no allocation, no atomics.
//!
//! Each tracer becomes one *track* of a [`ScopeTrace`]; begin/end pairs
//! recorded by one tracer are well nested by construction, which is
//! what lets the Chrome exporter emit them without any cross-buffer
//! reordering (and therefore deterministically).

use std::time::Instant;

/// What a span or instant event describes. The set covers every hot
/// path of the stack, from the DE kernel down to the sparse LU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// One DE synchronization window of the parallel execution engine
    /// (span; `arg` unused).
    DeWindow = 0,
    /// One delta cycle of the DE kernel (instant; `arg` = number of
    /// process activations).
    DeltaCycle = 1,
    /// One schedule iteration of a TDF cluster (span; `arg` =
    /// iteration index).
    ClusterIteration = 2,
    /// One schedule iteration of an SDF executor (span; `arg` =
    /// firings so far).
    SdfIteration = 3,
    /// MNA matrix assembly (span).
    MnaAssemble = 4,
    /// MNA factorization — dense LU or sparse numeric/symbolic (span).
    MnaFactor = 5,
    /// MNA forward/backward substitution (span).
    MnaSolve = 6,
    /// One converged Newton solve (instant; `arg` = iterations spent).
    NewtonIteration = 7,
    /// An accepted adaptive step (instant; `arg` = step size `h` as
    /// `f64` bits).
    StepAccept = 8,
    /// A rejected adaptive step (instant; `arg` = step size `h` as
    /// `f64` bits).
    StepReject = 9,
    /// One sweep scenario (span; `arg` = scenario index).
    Scenario = 10,
    /// Waiting on the worker barrier at the end of a DE window (span).
    BarrierWait = 11,
    /// User-defined (instant or span; `arg` free).
    Custom = 12,
    /// One wire request handled by the `ams-serve` daemon (span; `arg`
    /// = request ordinal on the connection).
    ServeRequest = 13,
    /// One `ams-serve` job from admission to completion (span; `arg` =
    /// job sequence number).
    ServeJob = 14,
    /// One sweep-space abstract-interpretation pass (span; `arg` =
    /// number of scenarios in the batch it fronts).
    SpaceLint = 15,
    /// Solver-state checkpoint activity: a shared-prefix run, a state
    /// capture or a restore (span for prefix runs, instant for
    /// capture/restore; `arg` = forks served or checkpoint bytes).
    Checkpoint = 16,
    /// One monitor verdict rendered after a scenario (instant; `arg` =
    /// property index `<< 8 | ` violation-code number, `0` for a pass,
    /// timestamped with the witness point's simulated time).
    Monitor = 17,
}

impl SpanKind {
    /// All kinds, in discriminant order.
    pub const ALL: [SpanKind; 18] = [
        SpanKind::DeWindow,
        SpanKind::DeltaCycle,
        SpanKind::ClusterIteration,
        SpanKind::SdfIteration,
        SpanKind::MnaAssemble,
        SpanKind::MnaFactor,
        SpanKind::MnaSolve,
        SpanKind::NewtonIteration,
        SpanKind::StepAccept,
        SpanKind::StepReject,
        SpanKind::Scenario,
        SpanKind::BarrierWait,
        SpanKind::Custom,
        SpanKind::ServeRequest,
        SpanKind::ServeJob,
        SpanKind::SpaceLint,
        SpanKind::Checkpoint,
        SpanKind::Monitor,
    ];

    /// Stable display name, used as the Chrome event name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::DeWindow => "de.window",
            SpanKind::DeltaCycle => "de.delta",
            SpanKind::ClusterIteration => "tdf.iteration",
            SpanKind::SdfIteration => "sdf.iteration",
            SpanKind::MnaAssemble => "mna.assemble",
            SpanKind::MnaFactor => "mna.factor",
            SpanKind::MnaSolve => "mna.solve",
            SpanKind::NewtonIteration => "newton.solve",
            SpanKind::StepAccept => "step.accept",
            SpanKind::StepReject => "step.reject",
            SpanKind::Scenario => "sweep.scenario",
            SpanKind::BarrierWait => "exec.barrier",
            SpanKind::Custom => "custom",
            SpanKind::ServeRequest => "serve.request",
            SpanKind::ServeJob => "serve.job",
            SpanKind::SpaceLint => "lint.space",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Monitor => "monitor",
        }
    }

    /// Packs the kind into a `u8` (for the SPSC event ring).
    pub(crate) fn index(self) -> u8 {
        self as u8
    }

    /// Recovers a kind from its [`SpanKind::index`].
    pub(crate) fn from_index(i: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(i as usize).copied()
    }
}

/// Packs a sweep scenario index and its lane width into one
/// [`SpanKind::Scenario`] span payload. Scalar scenarios (`lanes <= 1`)
/// keep the plain index — scalar traces stay byte-identical to exports
/// from before lane batching existed — while lane bundles carry the
/// width in the high 16 bits (indices keep the low 48).
pub fn scenario_arg(index: u64, lanes: usize) -> u64 {
    if lanes <= 1 {
        index
    } else {
        debug_assert!(index < 1 << 48, "scenario index overflows the lane packing");
        index | ((lanes as u64) << 48)
    }
}

/// Splits a [`SpanKind::Scenario`] span payload into
/// `(scenario index, lane width)`; the lane width is 1 for scalar spans.
pub fn scenario_arg_parts(arg: u64) -> (u64, usize) {
    let lanes = (arg >> 48) as usize;
    if lanes == 0 {
        (arg, 1)
    } else {
        (arg & ((1 << 48) - 1), lanes)
    }
}

/// Whether an event opens a span, closes one, or stands alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Opens a span.
    Begin = 0,
    /// Closes the innermost open span of the same kind.
    End = 1,
    /// A point event.
    Instant = 2,
}

impl Phase {
    pub(crate) fn index(self) -> u8 {
        self as u8
    }

    pub(crate) fn from_index(i: u8) -> Option<Phase> {
        match i {
            0 => Some(Phase::Begin),
            1 => Some(Phase::End),
            2 => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// One recorded event: a span boundary or an instant, stamped with both
/// simulated time (femtoseconds) and wall time (nanoseconds since the
/// owning tracer was enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What the event describes.
    pub kind: SpanKind,
    /// Span boundary or instant.
    pub phase: Phase,
    /// Simulated time in femtoseconds.
    pub t_sim_fs: u64,
    /// Wall-clock nanoseconds since the owning tracer's epoch. Only
    /// comparable within one tracer; never exported to the trace file.
    pub wall_ns: u64,
    /// Kind-specific payload (see [`SpanKind`] variants).
    pub arg: u64,
}

/// The enabled state: an event buffer plus the wall-clock epoch.
#[derive(Debug, Clone)]
struct TracerCore {
    events: Vec<TraceEvent>,
    epoch: Instant,
}

/// A single-owner span recorder. Disabled by default; every recording
/// method is one branch when disabled.
///
/// ```
/// use ams_scope::{SpanKind, Tracer};
///
/// let mut off = Tracer::off();
/// off.instant(SpanKind::DeltaCycle, 0, 1); // no-op, one branch
/// assert!(!off.is_enabled());
///
/// let mut on = Tracer::on();
/// on.begin(SpanKind::MnaFactor, 10);
/// on.end(SpanKind::MnaFactor, 10);
/// assert_eq!(on.take_events().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Box<TracerCore>>);

impl Tracer {
    /// A disabled tracer: records nothing, costs one branch per hook.
    pub const fn off() -> Tracer {
        Tracer(None)
    }

    /// An enabled tracer with an empty buffer; the wall-clock epoch
    /// starts now.
    pub fn on() -> Tracer {
        Tracer(Some(Box::new(TracerCore {
            events: Vec::new(),
            epoch: Instant::now(),
        })))
    }

    /// Enables or disables recording. Enabling an enabled tracer keeps
    /// its buffer; disabling drops any recorded events.
    pub fn set_enabled(&mut self, enabled: bool) {
        match (enabled, self.0.is_some()) {
            (true, false) => *self = Tracer::on(),
            (false, true) => self.0 = None,
            _ => {}
        }
    }

    /// `true` when events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span of `kind` at simulated time `t_sim_fs`.
    #[inline]
    pub fn begin(&mut self, kind: SpanKind, t_sim_fs: u64) {
        if let Some(core) = &mut self.0 {
            core.record(kind, Phase::Begin, t_sim_fs, 0);
        }
    }

    /// Closes the innermost open span of `kind` at `t_sim_fs`.
    #[inline]
    pub fn end(&mut self, kind: SpanKind, t_sim_fs: u64) {
        if let Some(core) = &mut self.0 {
            core.record(kind, Phase::End, t_sim_fs, 0);
        }
    }

    /// Closes a span and attaches a payload to the closing event.
    #[inline]
    pub fn end_with(&mut self, kind: SpanKind, t_sim_fs: u64, arg: u64) {
        if let Some(core) = &mut self.0 {
            core.record(kind, Phase::End, t_sim_fs, arg);
        }
    }

    /// Records a point event with a kind-specific payload.
    #[inline]
    pub fn instant(&mut self, kind: SpanKind, t_sim_fs: u64, arg: u64) {
        if let Some(core) = &mut self.0 {
            core.record(kind, Phase::Instant, t_sim_fs, arg);
        }
    }

    /// Opens a span with a payload on the opening event (e.g. the
    /// scenario index of a [`SpanKind::Scenario`] span).
    #[inline]
    pub fn begin_with(&mut self, kind: SpanKind, t_sim_fs: u64, arg: u64) {
        if let Some(core) = &mut self.0 {
            core.record(kind, Phase::Begin, t_sim_fs, arg);
        }
    }

    /// Appends pre-recorded events (from a child component's tracer)
    /// into this buffer, preserving their order. No-op when disabled.
    pub fn extend(&mut self, events: Vec<TraceEvent>) {
        if let Some(core) = &mut self.0 {
            core.events.extend(events);
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |c| c.events.len())
    }

    /// `true` when no events are buffered (or the tracer is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the buffered events, leaving the tracer enabled (if it
    /// was) with an empty buffer.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.0
            .as_mut()
            .map_or_else(Vec::new, |c| std::mem::take(&mut c.events))
    }
}

impl TracerCore {
    #[inline]
    fn record(&mut self, kind: SpanKind, phase: Phase, t_sim_fs: u64, arg: u64) {
        let wall_ns = self.epoch.elapsed().as_nanos() as u64;
        self.events.push(TraceEvent {
            kind,
            phase,
            t_sim_fs,
            wall_ns,
            arg,
        });
    }
}

/// One tracer's worth of events, attributed to a (process, thread)
/// pair of the exported trace: `process` groups tracks that ran on the
/// same OS thread or shard ("coordinator", "worker-0", "shard-1"),
/// `thread` names the component ("kernel", "rc/solver", "scenarios").
#[derive(Debug, Clone, PartialEq)]
pub struct TrackEvents {
    /// Process-level grouping (worker or shard identity).
    pub process: String,
    /// Component name within the process.
    pub thread: String,
    /// Events in recorded order (well nested per track).
    pub events: Vec<TraceEvent>,
}

/// A deterministic collection of tracks, ready for export. Track order
/// is insertion order — collectors insert in a fixed order (coordinator
/// first, then workers by index), which the exporters preserve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScopeTrace {
    /// The tracks, in insertion order.
    pub tracks: Vec<TrackEvents>,
}

impl ScopeTrace {
    /// An empty trace.
    pub fn new() -> ScopeTrace {
        ScopeTrace::default()
    }

    /// Appends one track. Empty event lists are kept — a track with no
    /// events still names its worker in the export.
    pub fn add_track(
        &mut self,
        process: impl Into<String>,
        thread: impl Into<String>,
        events: Vec<TraceEvent>,
    ) {
        self.tracks.push(TrackEvents {
            process: process.into(),
            thread: thread.into(),
            events,
        });
    }

    /// Total events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// `true` when no track holds any event.
    pub fn is_empty(&self) -> bool {
        self.event_count() == 0
    }

    /// Moves every track of `other` to the end of this trace.
    pub fn append(&mut self, mut other: ScopeTrace) {
        self.tracks.append(&mut other.tracks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::off();
        t.begin(SpanKind::DeWindow, 0);
        t.instant(SpanKind::DeltaCycle, 5, 1);
        t.end(SpanKind::DeWindow, 10);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order_with_monotone_wall_time() {
        let mut t = Tracer::on();
        t.begin(SpanKind::MnaAssemble, 100);
        t.end(SpanKind::MnaAssemble, 100);
        t.instant(SpanKind::StepAccept, 200, 42);
        let ev = t.take_events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].kind, SpanKind::MnaAssemble);
        assert_eq!(ev[0].phase, Phase::Begin);
        assert_eq!(ev[1].phase, Phase::End);
        assert_eq!(ev[2].arg, 42);
        assert!(ev[0].wall_ns <= ev[1].wall_ns);
        assert!(ev[1].wall_ns <= ev[2].wall_ns);
        // Buffer drained, tracer still enabled.
        assert!(t.is_enabled());
        assert!(t.is_empty());
    }

    #[test]
    fn set_enabled_round_trips_and_drops_events_when_disabled() {
        let mut t = Tracer::off();
        t.set_enabled(true);
        t.instant(SpanKind::Custom, 0, 0);
        assert_eq!(t.len(), 1);
        t.set_enabled(false);
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn extend_preserves_child_order() {
        let mut child = Tracer::on();
        child.begin(SpanKind::MnaFactor, 1);
        child.end(SpanKind::MnaFactor, 2);
        let mut parent = Tracer::on();
        parent.begin_with(SpanKind::Scenario, 0, 7);
        parent.extend(child.take_events());
        parent.end(SpanKind::Scenario, 3);
        let ev = parent.take_events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].kind, SpanKind::Scenario);
        assert_eq!(ev[1].kind, SpanKind::MnaFactor);
        assert_eq!(ev[3].phase, Phase::End);
    }

    #[test]
    fn kind_indices_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(SpanKind::from_index(200), None);
        for phase in [Phase::Begin, Phase::End, Phase::Instant] {
            assert_eq!(Phase::from_index(phase.index()), Some(phase));
        }
    }

    #[test]
    fn scenario_arg_round_trips_and_keeps_scalar_args_plain() {
        // Scalar spans: the arg IS the index, bit-for-bit.
        assert_eq!(scenario_arg(42, 1), 42);
        assert_eq!(scenario_arg(42, 0), 42);
        assert_eq!(scenario_arg_parts(42), (42, 1));
        // Lane spans pack the width into the high bits.
        for lanes in [4usize, 8, 16] {
            let arg = scenario_arg(1234, lanes);
            assert_ne!(arg, 1234);
            assert_eq!(scenario_arg_parts(arg), (1234, lanes));
        }
        assert_eq!(scenario_arg_parts(scenario_arg(0, 8)), (0, 8));
    }

    #[test]
    fn trace_counts_events_across_tracks() {
        let mut trace = ScopeTrace::new();
        trace.add_track("coordinator", "exec", Vec::new());
        let mut t = Tracer::on();
        t.instant(SpanKind::Custom, 0, 0);
        trace.add_track("worker-0", "cluster", t.take_events());
        assert_eq!(trace.event_count(), 1);
        assert!(!trace.is_empty());
        assert_eq!(trace.tracks[0].process, "coordinator");
    }
}
