//! Chrome `trace_event` export (Perfetto / `chrome://tracing`).
//!
//! The export is an array-of-events JSON document in the Trace Event
//! Format: `"B"`/`"E"` duration events, `"i"` instants, and `"M"`
//! metadata events naming the tracks. Each tracer becomes one *thread*
//! track (`tid`), grouped into a *process* (`pid`) per worker or shard,
//! so a span is always attributed to the worker that executed it; in
//! sweep runs every event inside a [`SpanKind::Scenario`] span
//! additionally carries the scenario index in its `args`.
//!
//! **Timestamps are simulated time**, converted from femtoseconds to
//! the format's microseconds with exact integer arithmetic — no wall
//! clock, no floats — so the same run (same seed, same worker count)
//! exports a **byte-identical** file. Wall-time profiling lives in
//! [`ScopeReport`](crate::ScopeReport) instead.

use crate::{Phase, ScopeTrace, SpanKind};
use std::fmt::Write;

/// Serializes a trace to Chrome `trace_event` JSON (one event per
/// line). Deterministic: track order and event order are preserved,
/// timestamps are simulated time only.
pub fn export(trace: &ScopeTrace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut processes: Vec<&str> = Vec::new();

    for (ti, track) in trace.tracks.iter().enumerate() {
        let pid = match processes.iter().position(|p| *p == track.process) {
            Some(i) => i + 1,
            None => {
                processes.push(&track.process);
                let pid = processes.len();
                push_meta(&mut out, &mut first, "process_name", pid, 0, &track.process);
                pid
            }
        };
        let tid = trace.tracks[..ti]
            .iter()
            .filter(|t| t.process == track.process)
            .count();
        push_meta(&mut out, &mut first, "thread_name", pid, tid, &track.thread);

        // (scenario index, lane width); scalar spans decode to width 1.
        let mut scenario: Option<(u64, usize)> = None;
        for ev in &track.events {
            if ev.kind == SpanKind::Scenario {
                match ev.phase {
                    Phase::Begin => scenario = Some(crate::tracer::scenario_arg_parts(ev.arg)),
                    Phase::End => {}
                    Phase::Instant => {}
                }
            }
            sep(&mut out, &mut first);
            let ph = match ev.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}",
                escape(ev.kind.name()),
                fs_to_us(ev.t_sim_fs),
            );
            if ev.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            let arg = (ev.phase != Phase::End && ev.arg != 0 && ev.kind != SpanKind::Scenario)
                .then_some(ev.arg);
            if scenario.is_some() || arg.is_some() {
                out.push_str(",\"args\":{");
                if let Some((s, lanes)) = scenario {
                    let _ = write!(out, "\"scenario\":{s}");
                    if lanes > 1 {
                        // Lane-bundled span: the index is the bundle's
                        // first scenario; `lanes` scenarios share it.
                        let _ = write!(out, ",\"lanes\":{lanes}");
                    }
                    if arg.is_some() {
                        out.push(',');
                    }
                }
                if let Some(a) = arg {
                    let _ = write!(out, "\"arg\":{a}");
                }
                out.push('}');
            }
            out.push('}');
            if ev.kind == SpanKind::Scenario && ev.phase == Phase::End {
                scenario = None;
            }
        }
    }
    out.push_str("\n]\n");
    out
}

fn push_meta(out: &mut String, first: &mut bool, name: &str, pid: usize, tid: usize, value: &str) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"ts\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(value)
    );
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Femtoseconds → the format's microseconds, via exact integer
/// arithmetic (`fs / 1e9` with nine fractional digits).
fn fs_to_us(fs: u64) -> String {
    format!("{}.{:09}", fs / 1_000_000_000, fs % 1_000_000_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Checks that `json` is structurally a Chrome trace: an array of
/// objects, each carrying the required `ph`, `ts`, `pid` and `tid`
/// keys. Returns the number of events.
///
/// This is the Rust-side mirror of the CI schema check — a shape
/// validator, not a JSON parser: it splits top-level objects by brace
/// depth (string-aware) and checks the required keys appear in each.
///
/// # Errors
///
/// A description of the first structural violation.
pub fn validate(json: &str) -> Result<usize, String> {
    let body = json.trim();
    let body = body
        .strip_prefix('[')
        .ok_or("trace must be a JSON array")?
        .strip_suffix(']')
        .ok_or("unterminated JSON array")?;

    let mut count = 0usize;
    let mut depth = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| format!("unbalanced braces at byte {i}"))?;
                if depth == 0 {
                    let obj = &body[start.take().ok_or("object without start")?..=i];
                    for key in ["\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""] {
                        if !obj.contains(key) {
                            return Err(format!("event {count} is missing {key}: {obj}"));
                        }
                    }
                    count += 1;
                }
            }
            ',' | '\n' | '\r' | ' ' | '\t' => {}
            other if depth == 0 => {
                return Err(format!("unexpected character {other:?} between events"));
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err("truncated event object".into());
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_trace() -> ScopeTrace {
        let mut coord = Tracer::on();
        coord.begin(SpanKind::DeWindow, 0);
        coord.instant(SpanKind::DeltaCycle, 500_000, 2);
        coord.end(SpanKind::DeWindow, 1_000_000_000);
        let mut worker = Tracer::on();
        worker.begin_with(SpanKind::Scenario, 0, 7);
        worker.begin(SpanKind::MnaFactor, 0);
        worker.end(SpanKind::MnaFactor, 0);
        worker.end(SpanKind::Scenario, 2_000_000_000);
        let mut trace = ScopeTrace::new();
        trace.add_track("coordinator", "exec", coord.take_events());
        trace.add_track("worker-0", "scenarios", worker.take_events());
        trace
    }

    #[test]
    fn export_validates_and_counts_all_events() {
        let trace = sample_trace();
        let json = export(&trace);
        // 4 metadata (2 processes + 2 threads) + 7 events.
        assert_eq!(validate(&json).unwrap(), 4 + trace.event_count());
    }

    #[test]
    fn timestamps_are_simulated_microseconds() {
        let json = export(&sample_trace());
        // 1_000_000_000 fs = 1 µs; 500_000 fs = 0.0005 µs.
        assert!(json.contains("\"ts\":1.000000000"), "{json}");
        assert!(json.contains("\"ts\":0.000500000"), "{json}");
    }

    #[test]
    fn scenario_spans_attribute_their_contents() {
        let json = export(&sample_trace());
        // The Scenario begin and the nested factor span both carry the
        // scenario index.
        let factor_line = json
            .lines()
            .find(|l| l.contains("mna.factor") && l.contains("\"ph\":\"B\""))
            .expect("factor begin present");
        assert!(factor_line.contains("\"scenario\":7"), "{factor_line}");
        let scenario_line = json
            .lines()
            .find(|l| l.contains("sweep.scenario") && l.contains("\"ph\":\"B\""))
            .expect("scenario begin present");
        assert!(scenario_line.contains("\"scenario\":7"), "{scenario_line}");
    }

    #[test]
    fn lane_scenario_spans_carry_the_width() {
        let mut t = Tracer::on();
        t.begin_with(SpanKind::Scenario, 0, crate::scenario_arg(12, 8));
        t.begin(SpanKind::MnaSolve, 0);
        t.end(SpanKind::MnaSolve, 0);
        t.end(SpanKind::Scenario, 1);
        let mut trace = ScopeTrace::new();
        trace.add_track("shard-0", "scenarios", t.take_events());
        let json = export(&trace);
        let begin = json
            .lines()
            .find(|l| l.contains("sweep.scenario") && l.contains("\"ph\":\"B\""))
            .expect("scenario begin");
        assert!(begin.contains("\"scenario\":12"), "{begin}");
        assert!(begin.contains("\"lanes\":8"), "{begin}");
        // The nested solver span inherits both attributions.
        let solve = json
            .lines()
            .find(|l| l.contains("mna.solve") && l.contains("\"ph\":\"B\""))
            .expect("solve begin");
        assert!(solve.contains("\"scenario\":12") && solve.contains("\"lanes\":8"));
        validate(&json).unwrap();
    }

    #[test]
    fn scalar_scenario_spans_export_unchanged() {
        // A plain-index arg must not grow a "lanes" key.
        let json = export(&sample_trace());
        assert!(!json.contains("\"lanes\""), "{json}");
    }

    #[test]
    fn tracks_map_to_processes_and_threads() {
        let json = export(&sample_trace());
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("{\"name\":\"coordinator\"}"));
        assert!(json.contains("{\"name\":\"worker-0\"}"));
        assert!(json.contains("{\"name\":\"scenarios\"}"));
        // Second process gets pid 2.
        assert!(json.contains("\"pid\":2"));
    }

    #[test]
    fn export_is_deterministic() {
        // Same logical events, separate tracers (different wall times):
        // identical bytes.
        let a = export(&sample_trace());
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = export(&sample_trace());
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("{}").is_err());
        assert!(validate("[{\"ph\":\"B\"}]").is_err()); // missing ts/pid/tid
        assert!(validate("[{\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0}").is_err());
        assert_eq!(validate("[]").unwrap(), 0);
        assert_eq!(
            validate("[{\"ph\":\"i\",\"ts\":0.5,\"pid\":1,\"tid\":0,\"name\":\"x\"}]").unwrap(),
            1
        );
    }

    #[test]
    fn empty_trace_exports_an_empty_array() {
        let json = export(&ScopeTrace::new());
        assert_eq!(validate(&json).unwrap(), 0);
    }
}
