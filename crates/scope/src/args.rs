//! Tiny CLI helper for the examples' shared observability flags.
//!
//! Every example accepts `--trace <path>` (write a Chrome trace) and
//! `--report` (print the scope report); this module strips those two
//! flags out of `std::env::args()` so each example's own argument loop
//! only sees what it understands. No dependencies, ~no code per
//! example:
//!
//! ```no_run
//! let (scope, rest) = ams_scope::args::scope_args()?;
//! let mut args = rest.into_iter();
//! // ... example-specific parsing over `args` ...
//! # let trace = ams_scope::ScopeTrace::new();
//! # let metrics = ams_scope::MetricsRegistry::new();
//! scope.emit(&trace, &metrics)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{chrome, MetricsRegistry, ScopeReport, ScopeTrace};

/// The parsed observability flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeArgs {
    /// Where to write the Chrome trace, when `--trace` was given.
    pub trace: Option<String>,
    /// Whether `--report` was given.
    pub report: bool,
}

impl ScopeArgs {
    /// `true` when tracing must be enabled on the engines (either
    /// output was requested).
    pub fn enabled(&self) -> bool {
        self.trace.is_some() || self.report
    }

    /// Writes the requested outputs: the Chrome trace file (if
    /// `--trace`) and the rendered report on stdout (if `--report`).
    ///
    /// # Errors
    ///
    /// Propagates the trace file write failure.
    pub fn emit(&self, trace: &ScopeTrace, metrics: &MetricsRegistry) -> std::io::Result<()> {
        if let Some(path) = &self.trace {
            std::fs::write(path, chrome::export(trace))?;
            eprintln!(
                "wrote {} trace event(s) to {path} (load in Perfetto / chrome://tracing)",
                trace.event_count()
            );
        }
        if self.report {
            print!("{}", ScopeReport::from_parts(trace, metrics).render());
        }
        Ok(())
    }
}

/// Extracts `--trace <path>` / `--report` from a raw argument list,
/// returning the parsed flags plus the remaining arguments in order.
///
/// # Errors
///
/// `--trace` without a following path.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<(ScopeArgs, Vec<String>), String> {
    let mut scope = ScopeArgs::default();
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--trace" => {
                scope.trace = Some(iter.next().ok_or("--trace needs a file path")?);
            }
            "--report" => scope.report = true,
            _ => rest.push(a),
        }
    }
    Ok((scope, rest))
}

/// [`parse`] over `std::env::args().skip(1)`.
///
/// # Errors
///
/// `--trace` without a following path.
pub fn scope_args() -> Result<(ScopeArgs, Vec<String>), String> {
    parse(std::env::args().skip(1))
}

/// Rejects leftover arguments an example did not recognize.
///
/// Call after the example's own argument loop has consumed everything
/// it understands: any survivor is an unknown flag, and silently
/// ignoring it hides typos (`--senarios 16` quietly running the
/// default sweep). `usage` is the example's one-line synopsis, echoed
/// in the error.
///
/// # Errors
///
/// A `"unknown argument ... \nusage: ..."` message naming the first
/// leftover argument.
pub fn reject_unknown(rest: &[String], usage: &str) -> Result<(), String> {
    match rest.first() {
        None => Ok(()),
        Some(arg) => Err(format!("unknown argument {arg:?}\nusage: {usage}")),
    }
}

/// [`reject_unknown`] for examples whose only non-scope flag is
/// `--lint-only`: strips that flag, errors on anything else, and
/// returns whether it was present.
///
/// # Errors
///
/// See [`reject_unknown`].
pub fn lint_only_or_reject(rest: Vec<String>, usage: &str) -> Result<bool, String> {
    let mut lint_only = false;
    let leftover: Vec<String> = rest
        .into_iter()
        .filter(|a| {
            if a == "--lint-only" {
                lint_only = true;
                false
            } else {
                true
            }
        })
        .collect();
    reject_unknown(&leftover, usage)?;
    Ok(lint_only)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn strips_scope_flags_and_keeps_the_rest() {
        let (scope, rest) = parse(strs(&[
            "--scenarios",
            "16",
            "--trace",
            "out.json",
            "--workers",
            "2",
            "--report",
        ]))
        .unwrap();
        assert_eq!(scope.trace.as_deref(), Some("out.json"));
        assert!(scope.report);
        assert!(scope.enabled());
        assert_eq!(rest, strs(&["--scenarios", "16", "--workers", "2"]));
    }

    #[test]
    fn no_flags_means_disabled() {
        let (scope, rest) = parse(strs(&["--lint-only"])).unwrap();
        assert!(!scope.enabled());
        assert_eq!(rest, strs(&["--lint-only"]));
    }

    #[test]
    fn trace_requires_a_path() {
        assert!(parse(strs(&["--trace"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_with_usage() {
        assert!(reject_unknown(&[], "example").is_ok());
        let err =
            reject_unknown(&strs(&["--senarios", "16"]), "example [--scenarios N]").unwrap_err();
        assert!(err.contains("--senarios"), "{err}");
        assert!(err.contains("usage: example [--scenarios N]"), "{err}");
    }

    #[test]
    fn lint_only_is_stripped_everything_else_rejected() {
        assert_eq!(lint_only_or_reject(strs(&["--lint-only"]), "u"), Ok(true));
        assert_eq!(lint_only_or_reject(vec![], "u"), Ok(false));
        let err = lint_only_or_reject(strs(&["--lint-only", "--bogus"]), "u").unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn emit_writes_the_trace_file() {
        let dir = std::env::temp_dir().join(format!("ams-scope-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let scope = ScopeArgs {
            trace: Some(path.to_string_lossy().into_owned()),
            report: false,
        };
        let mut tracer = crate::Tracer::on();
        tracer.instant(crate::SpanKind::Custom, 0, 0);
        let mut trace = ScopeTrace::new();
        trace.add_track("p", "t", tracer.take_events());
        scope.emit(&trace, &MetricsRegistry::new()).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(chrome::validate(&written).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
