//! # ams-scope — unified tracing, metrics and profiling
//!
//! The paper's efficiency objectives (O5/O7: simulation speed, support
//! for analyses) are only verifiable if a run can show *where* time and
//! solver effort go. This crate is the substrate every other crate
//! reports into: a span/event tracer, a metrics registry, and exporters
//! — always compiled, but **zero-cost when disabled** (one branch per
//! hook, no allocation, no atomics).
//!
//! Three pillars:
//!
//! * **Spans and events** ([`Tracer`], [`TraceEvent`], [`SpanKind`]):
//!   scoped spans for DE windows, delta cycles, cluster activations,
//!   SDF iterations, MNA assemble/factor/solve, Newton iterations and
//!   adaptive-step accept/reject, each carrying *simulated* time (in
//!   femtoseconds) and wall time. Every tracer is single-owner, so the
//!   per-worker buffers are lock-free by construction; buffers that
//!   must cross threads live either travel with their owner or stream
//!   through the SPSC [`EventRing`](ring::EventRing).
//! * **Metrics** ([`MetricsRegistry`], [`Histogram`]): named counters,
//!   gauges and HDR-style log-bucket histograms (pure Rust, no deps)
//!   for step sizes, Newton iteration counts, refactorizations, ring
//!   occupancy and barrier waits. The `ExecStats`/`SolveStats`
//!   aggregates of the execution crates feed this registry.
//! * **Exporters**: Chrome `trace_event` JSON ([`chrome::export`],
//!   loadable in Perfetto / `chrome://tracing`, one track per tracer,
//!   timestamps in *simulated* time so exports are byte-identical
//!   across runs), a human-readable [`ScopeReport`], and a JSON
//!   summary ([`ScopeReport::to_json`]).
//!
//! # Determinism
//!
//! Chrome export uses only simulated time and the deterministic track
//! structure — wall-clock readings are confined to the profiling
//! aggregates of [`ScopeReport`]. The same model with the same seed and
//! worker count therefore produces a **byte-identical** trace file.
//!
//! # Example
//!
//! ```
//! use ams_scope::{chrome, ScopeTrace, SpanKind, Tracer};
//!
//! let mut tracer = Tracer::on();
//! tracer.begin(SpanKind::DeWindow, 0);
//! tracer.instant(SpanKind::NewtonIteration, 500, 3);
//! tracer.end(SpanKind::DeWindow, 1_000);
//!
//! let mut trace = ScopeTrace::new();
//! trace.add_track("coordinator", "exec", tracer.take_events());
//! let json = chrome::export(&trace);
//! assert!(chrome::validate(&json).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod chrome;
pub mod metrics;
pub mod report;
pub mod ring;
mod tracer;

pub use args::ScopeArgs;
pub use metrics::{Histogram, Metric, MetricsRegistry};
pub use report::ScopeReport;
pub use tracer::{
    scenario_arg, scenario_arg_parts, Phase, ScopeTrace, SpanKind, TraceEvent, Tracer, TrackEvents,
};
