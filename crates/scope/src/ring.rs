//! Wait-free SPSC ring for [`TraceEvent`]s.
//!
//! Mirrors the sample-ring design of `ams-exec`: each slot is a group
//! of `AtomicU64` words (packed kind/phase, simulated time, wall time,
//! payload), and the head/tail indices publish slots with release
//! stores and consume them with acquire loads. Capacity rounds up to a
//! power of two so indexing is a mask.
//!
//! A trace ring connects a shard worker that records spans to a
//! coordinator that drains them live — the sweep engine's aggregation
//! loop already spins between result pops, so trace draining rides the
//! same loop without new synchronization.

use crate::{Phase, SpanKind, TraceEvent};
use std::sync::{
    atomic::{AtomicU64, AtomicUsize, Ordering},
    Arc,
};

struct RingShared {
    /// `kind | phase << 8`, one word per slot.
    tags: Vec<AtomicU64>,
    times: Vec<AtomicU64>,
    walls: Vec<AtomicU64>,
    args: Vec<AtomicU64>,
    /// Next slot the consumer will read. Only the consumer stores it.
    head: AtomicUsize,
    /// Next slot the producer will write. Only the producer stores it.
    tail: AtomicUsize,
    /// Highest occupancy ever observed by the producer.
    high_water: AtomicUsize,
    mask: usize,
}

impl RingShared {
    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

/// Producer half of an SPSC event ring.
pub struct EventProducer {
    shared: Arc<RingShared>,
}

/// Consumer half of an SPSC event ring.
pub struct EventConsumer {
    shared: Arc<RingShared>,
}

/// Creates a ring holding up to `capacity` events (rounded up to a
/// power of two, minimum 2).
///
/// # Panics
///
/// Panics on a zero capacity.
pub fn event_ring(capacity: usize) -> (EventProducer, EventConsumer) {
    assert!(capacity > 0, "event ring capacity must be non-zero");
    let cap = capacity.next_power_of_two().max(2);
    let shared = Arc::new(RingShared {
        tags: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        times: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        walls: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        args: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        high_water: AtomicUsize::new(0),
        mask: cap - 1,
    });
    (
        EventProducer {
            shared: shared.clone(),
        },
        EventConsumer { shared },
    )
}

impl EventProducer {
    /// Attempts to enqueue an event; fails (returning it back) when the
    /// ring is full.
    pub fn try_push(&mut self, ev: TraceEvent) -> Result<(), TraceEvent> {
        let s = &self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        let occupancy = tail.wrapping_sub(head);
        if occupancy == s.capacity() {
            return Err(ev);
        }
        let slot = tail & s.mask;
        let tag = u64::from(ev.kind.index()) | (u64::from(ev.phase.index()) << 8);
        s.tags[slot].store(tag, Ordering::Relaxed);
        s.times[slot].store(ev.t_sim_fs, Ordering::Relaxed);
        s.walls[slot].store(ev.wall_ns, Ordering::Relaxed);
        s.args[slot].store(ev.arg, Ordering::Relaxed);
        // Publish the slot: the stores above happen-before any consumer
        // that acquires this tail value.
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        let occ = occupancy + 1;
        if occ > s.high_water.load(Ordering::Relaxed) {
            s.high_water.store(occ, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Enqueues an event, spinning (with yields) until the consumer
    /// frees a slot. Correct only when the consumer drains the ring
    /// concurrently, as the sweep coordinator does.
    pub fn push_spin(&mut self, ev: TraceEvent) {
        let mut item = ev;
        let mut spins = 0u32;
        while let Err(back) = self.try_push(item) {
            item = back;
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Relaxed)
    }
}

impl EventConsumer {
    /// Dequeues the oldest event, if any.
    pub fn try_pop(&mut self) -> Option<TraceEvent> {
        let s = &self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = head & s.mask;
        let tag = s.tags[slot].load(Ordering::Relaxed);
        let ev = TraceEvent {
            kind: SpanKind::from_index((tag & 0xFF) as u8).expect("producer wrote a valid kind"),
            phase: Phase::from_index(((tag >> 8) & 0xFF) as u8)
                .expect("producer wrote a valid phase"),
            t_sim_fs: s.times[slot].load(Ordering::Relaxed),
            wall_ns: s.walls[slot].load(Ordering::Relaxed),
            arg: s.args[slot].load(Ordering::Relaxed),
        };
        // Release the slot back to the producer.
        s.head.store(head.wrapping_add(1), Ordering::Release);
        Some(ev)
    }

    /// Events currently in flight (approximate under concurrency).
    pub fn len(&self) -> usize {
        let s = &self.shared;
        s.tail
            .load(Ordering::Acquire)
            .wrapping_sub(s.head.load(Ordering::Relaxed))
    }

    /// `true` when no events are in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.shared.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, phase: Phase, t: u64) -> TraceEvent {
        TraceEvent {
            kind,
            phase,
            t_sim_fs: t,
            wall_ns: t * 2,
            arg: t * 3,
        }
    }

    #[test]
    fn fifo_order_and_field_round_trip() {
        let (mut tx, mut rx) = event_ring(4);
        assert!(rx.try_pop().is_none());
        tx.try_push(ev(SpanKind::DeWindow, Phase::Begin, 1))
            .unwrap();
        tx.try_push(ev(SpanKind::NewtonIteration, Phase::Instant, 2))
            .unwrap();
        let a = rx.try_pop().unwrap();
        assert_eq!(a, ev(SpanKind::DeWindow, Phase::Begin, 1));
        let b = rx.try_pop().unwrap();
        assert_eq!(b.kind, SpanKind::NewtonIteration);
        assert_eq!(b.phase, Phase::Instant);
        assert_eq!(b.arg, 6);
        assert!(rx.try_pop().is_none());
    }

    #[test]
    fn full_ring_rejects_then_accepts() {
        let (mut tx, mut rx) = event_ring(2);
        let e = ev(SpanKind::Custom, Phase::Instant, 0);
        assert!(tx.try_push(e).is_ok());
        assert!(tx.try_push(e).is_ok());
        assert_eq!(tx.try_push(e), Err(e));
        assert!(rx.try_pop().is_some());
        assert!(tx.try_push(e).is_ok());
        assert_eq!(tx.high_water(), 2);
    }

    #[test]
    fn push_spin_with_concurrent_consumer_preserves_every_event() {
        let (mut tx, mut rx) = event_ring(8);
        const N: u64 = 50_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push_spin(ev(SpanKind::StepAccept, Phase::Instant, i));
            }
        });
        let mut next = 0u64;
        while next < N {
            match rx.try_pop() {
                Some(e) => {
                    assert_eq!(e.t_sim_fs, next);
                    assert_eq!(e.arg, next * 3);
                    next += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().expect("producer panicked");
        assert!(rx.is_empty());
    }
}
