//! Aggregated run report: span profiles + metrics.
//!
//! A [`ScopeReport`] folds a [`ScopeTrace`] into per-kind span
//! profiles (count, total simulated duration, total wall duration —
//! wall deltas are always taken between the begin and end events of
//! the *same* tracer, so epochs never mix) and derives distribution
//! metrics from the event payloads: accepted/rejected step sizes,
//! Newton iterations per solve, barrier waits. Execution-level
//! aggregates (`ExecStats` and friends) merge in through an extra
//! [`MetricsRegistry`].

use crate::{Histogram, Metric, MetricsRegistry, Phase, ScopeTrace, SpanKind};
use std::fmt::Write;

/// Per-[`SpanKind`] aggregate of one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KindSummary {
    /// Completed (begin/end matched) spans.
    pub spans: u64,
    /// Instant events.
    pub instants: u64,
    /// Total simulated duration of completed spans, femtoseconds.
    pub sim_fs: u64,
    /// Total wall duration of completed spans, nanoseconds.
    pub wall_ns: u64,
    /// Distribution of per-span wall durations, nanoseconds.
    pub wall: Histogram,
}

/// A rendered-on-demand profile of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScopeReport {
    /// Aggregates indexed by [`SpanKind`] discriminant.
    kinds: Vec<KindSummary>,
    /// Number of tracks folded in.
    pub tracks: usize,
    /// Number of events folded in.
    pub events: usize,
    /// Derived + externally supplied metrics.
    pub metrics: MetricsRegistry,
}

impl ScopeReport {
    /// Builds a report from a trace plus externally computed metrics
    /// (pass an empty registry when there are none).
    pub fn from_parts(trace: &ScopeTrace, extra: &MetricsRegistry) -> ScopeReport {
        let mut kinds = vec![KindSummary::default(); SpanKind::ALL.len()];
        let mut metrics = MetricsRegistry::new();
        for track in &trace.tracks {
            // One stack per kind: end events close the innermost open
            // span of their kind within this track.
            let mut stacks: Vec<Vec<(u64, u64)>> = vec![Vec::new(); SpanKind::ALL.len()];
            for ev in &track.events {
                let slot = &mut kinds[ev.kind.index() as usize];
                match ev.phase {
                    Phase::Begin => {
                        stacks[ev.kind.index() as usize].push((ev.t_sim_fs, ev.wall_ns))
                    }
                    Phase::End => {
                        if let Some((t0, w0)) = stacks[ev.kind.index() as usize].pop() {
                            slot.spans += 1;
                            slot.sim_fs += ev.t_sim_fs.saturating_sub(t0);
                            let wall = ev.wall_ns.saturating_sub(w0);
                            slot.wall_ns += wall;
                            slot.wall.record(wall as f64);
                            if ev.kind == SpanKind::BarrierWait {
                                metrics.record("exec.barrier_wait_us", wall as f64 / 1e3);
                            }
                        }
                    }
                    Phase::Instant => {
                        slot.instants += 1;
                        match ev.kind {
                            SpanKind::StepAccept => {
                                metrics.record("step.h_accepted", f64::from_bits(ev.arg));
                            }
                            SpanKind::StepReject => {
                                metrics.record("step.h_rejected", f64::from_bits(ev.arg));
                            }
                            SpanKind::NewtonIteration => {
                                metrics.record("newton.iterations_per_solve", ev.arg as f64);
                            }
                            SpanKind::DeltaCycle => {
                                metrics.counter_add("de.activations", ev.arg);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        metrics.merge(extra);
        ScopeReport {
            kinds,
            tracks: trace.tracks.len(),
            events: trace.event_count(),
            metrics,
        }
    }

    /// The aggregate for one span kind.
    pub fn kind(&self, kind: SpanKind) -> &KindSummary {
        &self.kinds[kind.index() as usize]
    }

    /// The human-readable profile.
    pub fn render(&self) -> String {
        let mut out = format!(
            "scope report: {} events on {} track(s)\n",
            self.events, self.tracks
        );
        let mut any = false;
        for kind in SpanKind::ALL {
            let k = self.kind(kind);
            if k.spans == 0 && k.instants == 0 {
                continue;
            }
            if !any {
                out.push_str("spans:\n");
                any = true;
            }
            let _ = write!(out, "  {}:", kind.name());
            if k.spans > 0 {
                let _ = write!(
                    out,
                    " {} span(s), sim {}, wall {} (p50 {}, p95 {}, max {})",
                    k.spans,
                    fmt_seconds(k.sim_fs as f64 * 1e-15),
                    fmt_seconds(k.wall_ns as f64 * 1e-9),
                    fmt_seconds(k.wall.percentile(50.0) * 1e-9),
                    fmt_seconds(k.wall.percentile(95.0) * 1e-9),
                    fmt_seconds(k.wall.max() * 1e-9),
                );
            }
            if k.instants > 0 {
                let _ = write!(out, " {} instant(s)", k.instants);
            }
            out.push('\n');
        }
        if !self.metrics.is_empty() {
            out.push_str("metrics:\n");
            out.push_str(&self.metrics.render());
        }
        out
    }

    /// The machine-readable JSON summary.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"tracks\":{},\"events\":{},\"spans\":{{",
            self.tracks, self.events
        );
        let mut first = true;
        for kind in SpanKind::ALL {
            let k = self.kind(kind);
            if k.spans == 0 && k.instants == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"spans\":{},\"instants\":{},\"sim_fs\":{},\"wall_ns\":{}}}",
                kind.name(),
                k.spans,
                k.instants,
                k.sim_fs,
                k.wall_ns
            );
        }
        out.push_str("},\"metrics\":{");
        let mut first = true;
        for (name, metric) in self.metrics.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{name}\":");
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{c}}}");
                }
                Metric::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", json_num(*v));
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{},\"min\":{},\"max\":{},\
                         \"mean\":{},\"p50\":{},\"p95\":{}}}",
                        h.count(),
                        json_num(h.min()),
                        json_num(h.max()),
                        json_num(h.mean()),
                        json_num(h.percentile(50.0)),
                        json_num(h.percentile(95.0))
                    );
                }
            }
        }
        out.push_str("}}");
        out
    }
}

/// JSON has no NaN/Inf: non-finite values serialize as `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".into()
    }
}

/// `3.25e-5` → `"32.500 µs"`, for the human-readable report.
fn fmt_seconds(s: f64) -> String {
    let (scale, unit) = if s >= 1.0 {
        (1.0, "s")
    } else if s >= 1e-3 {
        (1e3, "ms")
    } else if s >= 1e-6 {
        (1e6, "µs")
    } else {
        (1e9, "ns")
    };
    format!("{:.3} {unit}", s * scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn trace() -> ScopeTrace {
        let mut t = Tracer::on();
        t.begin(SpanKind::DeWindow, 0);
        t.instant(SpanKind::StepAccept, 1_000, 1e-6f64.to_bits());
        t.instant(SpanKind::StepAccept, 2_000, 2e-6f64.to_bits());
        t.instant(SpanKind::StepReject, 2_500, 8e-6f64.to_bits());
        t.instant(SpanKind::NewtonIteration, 3_000, 4);
        t.end(SpanKind::DeWindow, 1_000_000);
        let mut trace = ScopeTrace::new();
        trace.add_track("coordinator", "exec", t.take_events());
        trace
    }

    #[test]
    fn spans_and_instants_are_aggregated() {
        let r = ScopeReport::from_parts(&trace(), &MetricsRegistry::new());
        assert_eq!(r.kind(SpanKind::DeWindow).spans, 1);
        assert_eq!(r.kind(SpanKind::DeWindow).sim_fs, 1_000_000);
        assert_eq!(r.kind(SpanKind::StepAccept).instants, 2);
        assert_eq!(r.events, 6);
        assert_eq!(r.tracks, 1);
    }

    #[test]
    fn step_and_newton_metrics_derive_from_the_events() {
        let r = ScopeReport::from_parts(&trace(), &MetricsRegistry::new());
        let h = r.metrics.histogram("step.h_accepted").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1e-6);
        assert_eq!(h.max(), 2e-6);
        assert_eq!(r.metrics.histogram("step.h_rejected").unwrap().max(), 8e-6);
        let n = r.metrics.histogram("newton.iterations_per_solve").unwrap();
        assert_eq!(n.mean(), 4.0);
    }

    #[test]
    fn extra_metrics_merge_in() {
        let mut extra = MetricsRegistry::new();
        extra.counter_add("exec.windows", 9);
        let r = ScopeReport::from_parts(&trace(), &extra);
        assert_eq!(r.metrics.counter("exec.windows"), 9);
    }

    #[test]
    fn render_and_json_mention_every_active_kind() {
        let r = ScopeReport::from_parts(&trace(), &MetricsRegistry::new());
        let text = r.render();
        assert!(text.contains("de.window: 1 span(s)"), "{text}");
        assert!(text.contains("step.accept"), "{text}");
        assert!(text.contains("step.h_accepted"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"de.window\":{\"spans\":1"), "{json}");
        assert!(json.contains("\"newton.iterations_per_solve\""), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn span_lines_carry_wall_percentile_columns() {
        let mut t = Tracer::on();
        for _ in 0..3 {
            t.begin(SpanKind::MnaFactor, 0);
            t.end(SpanKind::MnaFactor, 100);
        }
        let mut tr = ScopeTrace::new();
        tr.add_track("p", "t", t.take_events());
        let r = ScopeReport::from_parts(&tr, &MetricsRegistry::new());
        assert_eq!(r.kind(SpanKind::MnaFactor).wall.count(), 3);
        let text = r.render();
        assert!(
            text.contains("(p50 ") && text.contains(", p95 ") && text.contains(", max "),
            "{text}"
        );
    }

    #[test]
    fn unbalanced_end_is_ignored() {
        let mut t = Tracer::on();
        t.end(SpanKind::MnaSolve, 10);
        let mut tr = ScopeTrace::new();
        tr.add_track("p", "t", t.take_events());
        let r = ScopeReport::from_parts(&tr, &MetricsRegistry::new());
        assert_eq!(r.kind(SpanKind::MnaSolve).spans, 0);
    }

    #[test]
    fn seconds_formatting_picks_a_unit() {
        assert_eq!(fmt_seconds(2.5), "2.500 s");
        assert_eq!(fmt_seconds(3.25e-5), "32.500 µs");
        assert_eq!(fmt_seconds(1.5e-3), "1.500 ms");
        assert_eq!(fmt_seconds(4.2e-8), "42.000 ns");
    }
}
