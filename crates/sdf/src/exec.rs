//! Token-based execution of SDF graphs.
//!
//! The executor runs a precomputed [`Schedule`](crate::Schedule) against
//! user-supplied actor implementations, moving typed tokens through FIFO
//! channels. Digital signal-processing chains in the examples (digital
//! filters, DSP blocks in Figure 1) run on this engine.

use crate::{ActorId, Schedule, SdfError, SdfGraph};
use ams_scope::{SpanKind, TraceEvent, Tracer};
use std::collections::VecDeque;

/// Per-firing I/O window handed to an actor.
///
/// Input tokens for this firing have already been popped from the input
/// FIFOs (exactly `consume` per input edge); the actor must push exactly
/// `produce` tokens to each output edge, or the executor reports a
/// [`SdfError::RateViolation`].
#[derive(Debug)]
pub struct ActorIo<'a, T> {
    /// Consumed input tokens, indexed by the actor's input port order
    /// (the order edges were connected).
    inputs: &'a [Vec<T>],
    /// Output staging: one vector per output port.
    outputs: &'a mut [Vec<T>],
}

impl<T: Clone> ActorIo<'_, T> {
    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The tokens consumed on input port `port` this firing.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn input(&self, port: usize) -> &[T] {
        &self.inputs[port]
    }

    /// Convenience: the single token on input `port` (rate-1 ports).
    ///
    /// # Panics
    ///
    /// Panics if the port consumed a number of tokens other than one.
    pub fn input_one(&self, port: usize) -> T {
        assert_eq!(
            self.inputs[port].len(),
            1,
            "input_one requires a consumption rate of 1"
        );
        self.inputs[port][0].clone()
    }

    /// Pushes a token to output port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn push(&mut self, port: usize, token: T) {
        self.outputs[port].push(token);
    }

    /// Pushes several tokens to output port `port`.
    pub fn push_all(&mut self, port: usize, tokens: impl IntoIterator<Item = T>) {
        self.outputs[port].extend(tokens);
    }
}

/// An SDF actor implementation over token type `T`.
pub trait SdfActor<T> {
    /// One firing: consume the provided inputs, produce outputs.
    fn fire(&mut self, io: &mut ActorIo<'_, T>);
}

impl<T, F: FnMut(&mut ActorIo<'_, T>)> SdfActor<T> for F {
    fn fire(&mut self, io: &mut ActorIo<'_, T>) {
        self(io)
    }
}

/// Executes a scheduled SDF graph over tokens of type `T`.
///
/// # Example
///
/// A doubling actor between a source and a sink:
///
/// ```
/// use ams_sdf::{schedule, ActorIo, SdfExecutor, SdfGraph};
///
/// # fn main() -> Result<(), ams_sdf::SdfError> {
/// let mut g = SdfGraph::new();
/// let src = g.add_actor("src");
/// let dbl = g.add_actor("double");
/// let sink = g.add_actor("sink");
/// g.connect(src, 1, dbl, 1, 0)?;
/// g.connect(dbl, 1, sink, 1, 0)?;
/// let sched = schedule(&g)?;
///
/// let mut exec = SdfExecutor::new(&g, sched)?;
/// let mut n = 0.0_f64;
/// exec.set_actor(src, move |io: &mut ActorIo<'_, f64>| {
///     n += 1.0;
///     io.push(0, n);
/// });
/// exec.set_actor(dbl, |io: &mut ActorIo<'_, f64>| {
///     let x = io.input_one(0);
///     io.push(0, 2.0 * x);
/// });
/// exec.set_actor(sink, move |io: &mut ActorIo<'_, f64>| {
///     let doubled = io.input_one(0);
///     assert_eq!(doubled % 2.0, 0.0);
/// });
/// exec.run_iterations(3)?;
/// # Ok(())
/// # }
/// ```
pub struct SdfExecutor<T> {
    graph: SdfGraph,
    sched: Schedule,
    actors: Vec<Option<Box<dyn SdfActor<T> + Send>>>,
    fifos: Vec<VecDeque<T>>,
    /// Per-actor input/output edge lists, in connection order.
    in_edges: Vec<Vec<usize>>,
    out_edges: Vec<Vec<usize>>,
    iterations_run: u64,
    firings: u64,
    /// Per-edge FIFO occupancy high-water marks.
    fifo_high_water: Vec<usize>,
    tracer: Tracer,
}

/// Execution counters of one [`SdfExecutor`], surfaced to the
/// instrumentation layer in `ams-exec`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SdfExecStats {
    /// Completed schedule iterations.
    pub iterations: u64,
    /// Actor firings across all iterations.
    pub firings: u64,
    /// Highest FIFO occupancy observed on any edge.
    pub fifo_high_water: usize,
}

impl<T: Clone + Default + 'static> SdfExecutor<T> {
    /// Creates an executor for `graph` with the given `schedule`.
    ///
    /// Edges carrying initial tokens are pre-filled with `T::default()`
    /// values (dataflow delays).
    ///
    /// # Errors
    ///
    /// Currently infallible for a schedule produced from the same graph;
    /// returns [`SdfError::UnknownHandle`] if the schedule references
    /// actors outside the graph.
    pub fn new(graph: &SdfGraph, schedule: Schedule) -> Result<Self, SdfError> {
        let n = graph.actor_count();
        for &actor in schedule.firings() {
            if actor.index() >= n {
                return Err(SdfError::UnknownHandle {
                    kind: "actor",
                    index: actor.index(),
                });
            }
        }
        let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut fifos = Vec::with_capacity(graph.edge_count());
        for (id, e) in graph.edges() {
            out_edges[e.src.index()].push(id.index());
            in_edges[e.dst.index()].push(id.index());
            let mut q = VecDeque::new();
            for _ in 0..e.initial_tokens {
                q.push_back(T::default());
            }
            fifos.push(q);
        }
        let fifo_high_water = fifos.iter().map(|q| q.len()).collect();
        Ok(SdfExecutor {
            graph: graph.clone(),
            sched: schedule,
            actors: (0..n).map(|_| None).collect(),
            fifos,
            in_edges,
            out_edges,
            iterations_run: 0,
            firings: 0,
            fifo_high_water,
            tracer: Tracer::off(),
        })
    }

    /// Enables or disables span tracing: one `sdf.iteration` span per
    /// schedule iteration, with the iteration index as its timestamp
    /// (SDF is untimed) and the firing count as its argument. Disabled
    /// (the default) costs one branch per iteration.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Drains the trace events recorded since the last call.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take_events()
    }

    /// Installs the implementation for an actor.
    ///
    /// Actors are `Send` so the executor can run on a worker thread of
    /// the parallel execution engine; share observation state through
    /// `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (from another graph). Use
    /// [`try_set_actor`](SdfExecutor::try_set_actor) to get a
    /// diagnosable [`SdfError::UnknownHandle`] (code `TDF010`) instead.
    pub fn set_actor(&mut self, id: ActorId, actor: impl SdfActor<T> + Send + 'static) {
        self.try_set_actor(id, actor)
            .expect("stale actor handle passed to set_actor");
    }

    /// Fallible variant of [`set_actor`](SdfExecutor::set_actor):
    /// rejects stale handles with [`SdfError::UnknownHandle`] instead of
    /// panicking, matching the `TDF010` lint/runtime diagnostic code.
    ///
    /// # Errors
    ///
    /// [`SdfError::UnknownHandle`] if `id` does not name an actor of the
    /// graph this executor was built from.
    pub fn try_set_actor(
        &mut self,
        id: ActorId,
        actor: impl SdfActor<T> + Send + 'static,
    ) -> Result<(), SdfError> {
        let slot = self
            .actors
            .get_mut(id.index())
            .ok_or(SdfError::UnknownHandle {
                kind: "actor",
                index: id.index(),
            })?;
        *slot = Some(Box::new(actor));
        Ok(())
    }

    /// Number of completed iterations.
    pub fn iterations_run(&self) -> u64 {
        self.iterations_run
    }

    /// Current queue length of an edge FIFO (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `edge` is stale (from another graph).
    pub fn fifo_len(&self, edge: crate::EdgeId) -> usize {
        self.fifos[edge.index()].len()
    }

    /// Actor firings per schedule iteration — the static cost model used
    /// by the `ams-exec` partitioner.
    pub fn iteration_cost(&self) -> u64 {
        self.sched.firings().len() as u64
    }

    /// Execution counters (iterations, firings, FIFO high-water mark).
    pub fn stats(&self) -> SdfExecStats {
        SdfExecStats {
            iterations: self.iterations_run,
            firings: self.firings,
            fifo_high_water: self.fifo_high_water.iter().copied().max().unwrap_or(0),
        }
    }

    /// The occupancy high-water mark of one edge FIFO.
    pub fn fifo_high_water(&self, edge: crate::EdgeId) -> usize {
        self.fifo_high_water[edge.index()]
    }

    /// Rewinds the executor to its initial token state without
    /// rebuilding it: every FIFO is cleared and re-filled with its
    /// edge's initial (delay) tokens, and the counters restart from
    /// zero. Actor implementations keep their internal state — reinstall
    /// them with [`SdfExecutor::set_actor`] if they are stateful.
    pub fn reset(&mut self) {
        for (id, e) in self.graph.edges() {
            let q = &mut self.fifos[id.index()];
            q.clear();
            for _ in 0..e.initial_tokens {
                q.push_back(T::default());
            }
        }
        for (hw, q) in self.fifo_high_water.iter_mut().zip(&self.fifos) {
            *hw = q.len();
        }
        self.iterations_run = 0;
        self.firings = 0;
    }

    /// Freezes the executor's token state — every FIFO's contents, the
    /// iteration/firing counters and the per-edge high-water marks —
    /// into an [`SdfCheckpoint`] that [`SdfExecutor::restore`] can
    /// re-apply later, to this executor or to another one built from the
    /// same graph. Actor-internal state is *not* captured (actors are
    /// opaque closures); stateful actors should be reinstalled, exactly
    /// as after [`SdfExecutor::reset`].
    pub fn save(&self) -> SdfCheckpoint<T> {
        SdfCheckpoint {
            fifos: self
                .fifos
                .iter()
                .map(|q| q.iter().cloned().collect())
                .collect(),
            iterations_run: self.iterations_run,
            firings: self.firings,
            fifo_high_water: self.fifo_high_water.clone(),
        }
    }

    /// Rewinds the executor to a state captured with
    /// [`SdfExecutor::save`]. The target must have the same edge count
    /// (i.e. be built from the same graph); on error it is unchanged.
    ///
    /// # Errors
    ///
    /// [`SdfError::UnknownHandle`] when the checkpoint's edge count does
    /// not match this executor's.
    pub fn restore(&mut self, cp: &SdfCheckpoint<T>) -> Result<(), SdfError> {
        if cp.fifos.len() != self.fifos.len() {
            return Err(SdfError::UnknownHandle {
                kind: "checkpoint edge",
                index: cp.fifos.len(),
            });
        }
        for (q, saved) in self.fifos.iter_mut().zip(&cp.fifos) {
            q.clear();
            q.extend(saved.iter().cloned());
        }
        self.fifo_high_water.clone_from(&cp.fifo_high_water);
        self.iterations_run = cp.iterations_run;
        self.firings = cp.firings;
        Ok(())
    }

    /// Runs `count` complete schedule iterations.
    ///
    /// # Errors
    ///
    /// * [`SdfError::UnknownHandle`] if a scheduled actor has no
    ///   implementation installed.
    /// * [`SdfError::RateViolation`] if an actor produced the wrong number
    ///   of tokens.
    pub fn run_iterations(&mut self, count: u64) -> Result<(), SdfError> {
        for _ in 0..count {
            self.run_one_iteration()?;
        }
        Ok(())
    }

    fn run_one_iteration(&mut self) -> Result<(), SdfError> {
        let traced = self.tracer.is_enabled();
        let firings_before = self.firings;
        if traced {
            self.tracer
                .begin(SpanKind::SdfIteration, self.iterations_run);
        }
        let firings: Vec<ActorId> = self.sched.firings().to_vec();
        for actor_id in firings {
            self.fire_actor(actor_id)?;
        }
        self.iterations_run += 1;
        if traced {
            self.tracer.end_with(
                SpanKind::SdfIteration,
                self.iterations_run,
                self.firings - firings_before,
            );
        }
        Ok(())
    }

    fn fire_actor(&mut self, actor_id: ActorId) -> Result<(), SdfError> {
        let a = actor_id.index();
        let mut actor = self.actors[a].take().ok_or(SdfError::UnknownHandle {
            kind: "actor implementation",
            index: a,
        })?;

        // Pop inputs.
        let mut inputs: Vec<Vec<T>> = Vec::with_capacity(self.in_edges[a].len());
        for &ei in &self.in_edges[a] {
            let rate = self.graph.edge(crate::EdgeId(ei)).consume as usize;
            if self.fifos[ei].len() < rate {
                self.actors[a] = Some(actor);
                return Err(SdfError::RateViolation {
                    actor: a,
                    detail: format!(
                        "edge {ei} has {} tokens, firing needs {rate}",
                        self.fifos[ei].len()
                    ),
                });
            }
            let toks: Vec<T> = (0..rate)
                .map(|_| self.fifos[ei].pop_front().expect("length checked above"))
                .collect();
            inputs.push(toks);
        }

        // Fire into staging buffers.
        let mut outputs: Vec<Vec<T>> = vec![Vec::new(); self.out_edges[a].len()];
        {
            let mut io = ActorIo {
                inputs: &inputs,
                outputs: &mut outputs,
            };
            actor.fire(&mut io);
        }
        self.actors[a] = Some(actor);

        // Validate and commit outputs.
        for (port, &ei) in self.out_edges[a].iter().enumerate() {
            let rate = self.graph.edge(crate::EdgeId(ei)).produce as usize;
            if outputs[port].len() != rate {
                return Err(SdfError::RateViolation {
                    actor: a,
                    detail: format!(
                        "output port {port} produced {} tokens, declared rate is {rate}",
                        outputs[port].len()
                    ),
                });
            }
            self.fifos[ei].extend(outputs[port].drain(..));
            let occupancy = self.fifos[ei].len();
            if occupancy > self.fifo_high_water[ei] {
                self.fifo_high_water[ei] = occupancy;
            }
        }
        self.firings += 1;
        Ok(())
    }
}

/// A frozen [`SdfExecutor`] token state: FIFO contents and execution
/// counters, captured by [`SdfExecutor::save`] and re-applied by
/// [`SdfExecutor::restore`]. Generic over the token type; clones are
/// cheap relative to a run, so prefix-sharing forks clone one saved
/// checkpoint per branch.
#[derive(Debug, Clone, PartialEq)]
pub struct SdfCheckpoint<T> {
    fifos: Vec<Vec<T>>,
    iterations_run: u64,
    firings: u64,
    fifo_high_water: Vec<usize>,
}

impl<T> SdfCheckpoint<T> {
    /// Completed schedule iterations at the capture point.
    pub fn iterations_run(&self) -> u64 {
        self.iterations_run
    }

    /// Total tokens frozen across all FIFOs.
    pub fn token_count(&self) -> usize {
        self.fifos.iter().map(Vec::len).sum()
    }
}

impl<T> std::fmt::Debug for SdfExecutor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SdfExecutor")
            .field("actors", &self.actors.len())
            .field("edges", &self.fifos.len())
            .field("iterations_run", &self.iterations_run)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule;
    use std::sync::{Arc, Mutex};

    fn pipeline() -> (SdfGraph, ActorId, ActorId, ActorId) {
        let mut g = SdfGraph::new();
        let src = g.add_actor("src");
        let mid = g.add_actor("mid");
        let sink = g.add_actor("sink");
        g.connect(src, 1, mid, 1, 0).unwrap();
        g.connect(mid, 1, sink, 1, 0).unwrap();
        (g, src, mid, sink)
    }

    #[test]
    fn tokens_flow_through_pipeline() {
        let (g, src, mid, sink) = pipeline();
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();

        let mut counter = 0.0;
        exec.set_actor(src, move |io: &mut ActorIo<'_, f64>| {
            counter += 1.0;
            io.push(0, counter);
        });
        exec.set_actor(mid, |io: &mut ActorIo<'_, f64>| {
            let x = io.input_one(0);
            io.push(0, x * 10.0);
        });
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = out.clone();
        exec.set_actor(sink, move |io: &mut ActorIo<'_, f64>| {
            o2.lock().unwrap().push(io.input_one(0));
        });

        exec.run_iterations(4).unwrap();
        assert_eq!(*out.lock().unwrap(), vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(exec.iterations_run(), 4);
    }

    #[test]
    fn multirate_decimator() {
        // src (1) -> (4) avg : consumes 4 tokens, emits their mean.
        let mut g = SdfGraph::new();
        let src = g.add_actor("src");
        let avg = g.add_actor("avg");
        let sink = g.add_actor("sink");
        g.connect(src, 1, avg, 4, 0).unwrap();
        g.connect(avg, 1, sink, 1, 0).unwrap();
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();

        let mut n = 0.0;
        exec.set_actor(src, move |io: &mut ActorIo<'_, f64>| {
            n += 1.0;
            io.push(0, n);
        });
        exec.set_actor(avg, |io: &mut ActorIo<'_, f64>| {
            let mean = io.input(0).iter().sum::<f64>() / io.input(0).len() as f64;
            io.push(0, mean);
        });
        let out = Arc::new(Mutex::new(Vec::new()));
        let o2 = out.clone();
        exec.set_actor(sink, move |io: &mut ActorIo<'_, f64>| {
            o2.lock().unwrap().push(io.input_one(0));
        });

        exec.run_iterations(2).unwrap();
        // First iteration consumes 1,2,3,4 → 2.5; second 5,6,7,8 → 6.5.
        assert_eq!(*out.lock().unwrap(), vec![2.5, 6.5]);
    }

    #[test]
    fn tracing_spans_one_per_iteration() {
        let (g, src, mid, sink) = pipeline();
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();
        exec.set_actor(src, |io: &mut ActorIo<'_, f64>| io.push(0, 1.0));
        exec.set_actor(mid, |io: &mut ActorIo<'_, f64>| {
            let x = io.input_one(0);
            io.push(0, x);
        });
        exec.set_actor(sink, |_: &mut ActorIo<'_, f64>| {});
        exec.set_tracing(true);
        exec.run_iterations(3).unwrap();
        let events = exec.take_trace_events();
        // Begin/end pairs, one per iteration, three firings each.
        assert_eq!(events.len(), 6);
        assert!(events.iter().all(|e| e.kind == SpanKind::SdfIteration));
        assert_eq!(events[1].arg, 3);
        // Disabled again: nothing recorded.
        exec.set_tracing(false);
        exec.run_iterations(1).unwrap();
        assert!(exec.take_trace_events().is_empty());
    }

    #[test]
    fn missing_actor_implementation_errors() {
        let (g, src, _mid, sink) = pipeline();
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();
        exec.set_actor(src, |io: &mut ActorIo<'_, f64>| io.push(0, 0.0));
        exec.set_actor(sink, |_io: &mut ActorIo<'_, f64>| {});
        assert!(matches!(
            exec.run_iterations(1),
            Err(SdfError::UnknownHandle { .. })
        ));
    }

    #[test]
    fn wrong_production_rate_detected() {
        let (g, src, mid, sink) = pipeline();
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();
        exec.set_actor(src, |io: &mut ActorIo<'_, f64>| {
            io.push(0, 1.0);
        });
        exec.set_actor(mid, |io: &mut ActorIo<'_, f64>| {
            let x = io.input_one(0);
            io.push(0, x);
            io.push(0, x); // one too many
        });
        exec.set_actor(sink, |_: &mut ActorIo<'_, f64>| {});
        match exec.run_iterations(1) {
            Err(SdfError::RateViolation { actor, .. }) => assert_eq!(actor, 1),
            other => panic!("expected rate violation, got {other:?}"),
        }
    }

    #[test]
    fn initial_tokens_act_as_delays() {
        // Feedback: acc -> add -> acc with one initial token (delay).
        let mut g = SdfGraph::new();
        let add = g.add_actor("add");
        let delay_edge = g.connect(add, 1, add, 1, 1).unwrap();
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();
        // Self-loop accumulator: y[n] = y[n-1] + 1.
        exec.set_actor(add, |io: &mut ActorIo<'_, f64>| {
            let prev = io.input_one(0);
            io.push(0, prev + 1.0);
        });
        exec.run_iterations(5).unwrap();
        assert_eq!(exec.fifo_len(delay_edge), 1);
    }

    #[test]
    fn integer_tokens() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 2, b, 2, 0).unwrap();
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<i64> = SdfExecutor::new(&g, sched).unwrap();
        exec.set_actor(a, |io: &mut ActorIo<'_, i64>| {
            io.push_all(0, [1, 2]);
        });
        let sum = Arc::new(Mutex::new(0i64));
        let s2 = sum.clone();
        exec.set_actor(b, move |io: &mut ActorIo<'_, i64>| {
            *s2.lock().unwrap() += io.input(0).iter().sum::<i64>();
        });
        exec.run_iterations(3).unwrap();
        assert_eq!(*sum.lock().unwrap(), 9);
    }

    #[test]
    fn stale_actor_handle_is_rejected_not_panicked() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let mut other = SdfGraph::new();
        let _ = other.add_actor("x");
        let stale = other.add_actor("y"); // index 1, unknown to `g`
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();
        exec.try_set_actor(a, |_: &mut ActorIo<'_, f64>| {})
            .unwrap();
        let err = exec
            .try_set_actor(stale, |_: &mut ActorIo<'_, f64>| {})
            .unwrap_err();
        assert!(matches!(err, SdfError::UnknownHandle { index: 1, .. }));
        assert_eq!(err.code(), "TDF010");
    }

    #[test]
    fn save_restore_resumes_identical_token_stream() {
        // Accumulator with a delay edge: all state lives in the FIFO, so
        // a restored run must reproduce the original token sequence.
        let mut g = SdfGraph::new();
        let add = g.add_actor("add");
        let edge = g.connect(add, 1, add, 1, 1).unwrap();
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched.clone()).unwrap();
        exec.set_actor(add, |io: &mut ActorIo<'_, f64>| {
            let prev = io.input_one(0);
            io.push(0, prev + 1.0);
        });
        exec.run_iterations(3).unwrap();
        let cp = exec.save();
        assert_eq!(cp.iterations_run(), 3);
        assert_eq!(cp.token_count(), 1);
        exec.run_iterations(4).unwrap();
        let final_stats = exec.stats();
        let final_len = exec.fifo_len(edge);

        // Rewind the same executor and replay.
        exec.restore(&cp).unwrap();
        assert_eq!(exec.iterations_run(), 3);
        exec.run_iterations(4).unwrap();
        assert_eq!(exec.stats(), final_stats);
        assert_eq!(exec.fifo_len(edge), final_len);

        // Restore into a fresh executor over the same graph.
        let mut other: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();
        other.set_actor(add, |io: &mut ActorIo<'_, f64>| {
            let prev = io.input_one(0);
            io.push(0, prev + 1.0);
        });
        other.restore(&cp).unwrap();
        other.run_iterations(4).unwrap();
        assert_eq!(other.stats(), final_stats);

        // A graph with a different edge count is rejected untouched.
        let mut g2 = SdfGraph::new();
        let _ = g2.add_actor("lonely");
        let mut mismatched: SdfExecutor<f64> =
            SdfExecutor::new(&g2, schedule(&g2).unwrap()).unwrap();
        assert!(mismatched.restore(&cp).is_err());
        assert_eq!(mismatched.iterations_run(), 0);
    }

    #[test]
    fn missing_actor_implementation_is_an_error() {
        let mut g = SdfGraph::new();
        let _ = g.add_actor("lonely");
        let sched = schedule(&g).unwrap();
        let mut exec: SdfExecutor<f64> = SdfExecutor::new(&g, sched).unwrap();
        let err = exec.run_iterations(1).unwrap_err();
        assert_eq!(err.code(), "TDF010");
    }
}
