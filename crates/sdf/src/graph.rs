//! SDF graph topology and rate (balance-equation) analysis.
//!
//! "In the particular case of static or synchronous dataflow (SDF), the
//! scheduling of the operations is static … They have the nice property
//! that a finite static scheduling can always be found" (paper §3). This
//! module computes the *repetition vector* — the number of firings of
//! each actor per schedule iteration — by solving the balance equations
//! with exact rational arithmetic, and validates consistency.

use crate::SdfError;
use ams_math::{common_denominator, gcd, Rational};
use std::fmt;

/// Handle to an actor in an [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// The raw index of the actor.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to an edge (FIFO channel) in an [`SdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// The raw index of the edge.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ActorInfo {
    pub name: String,
}

/// Connectivity and rates of one FIFO edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    /// Producing actor.
    pub src: ActorId,
    /// Tokens produced per firing of `src`.
    pub produce: u64,
    /// Consuming actor.
    pub dst: ActorId,
    /// Tokens consumed per firing of `dst`.
    pub consume: u64,
    /// Initial tokens (delays) present before the first iteration.
    pub initial_tokens: u64,
}

/// A static dataflow graph: actors connected by token-rate-annotated
/// FIFO edges.
///
/// # Example
///
/// ```
/// use ams_sdf::SdfGraph;
///
/// # fn main() -> Result<(), ams_sdf::SdfError> {
/// // A 1→2 upsampler feeding a consumer: src fires twice per sink firing…
/// let mut g = SdfGraph::new();
/// let src = g.add_actor("src");
/// let up = g.add_actor("upsample");
/// let sink = g.add_actor("sink");
/// g.connect(src, 1, up, 1, 0)?;
/// g.connect(up, 2, sink, 1, 0)?;
/// let q = g.repetition_vector()?;
/// assert_eq!(q, vec![1, 1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SdfGraph {
    pub(crate) actors: Vec<ActorInfo>,
    pub(crate) edges: Vec<EdgeInfo>,
}

impl SdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SdfGraph::default()
    }

    /// Adds an actor and returns its handle.
    pub fn add_actor(&mut self, name: impl Into<String>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(ActorInfo { name: name.into() });
        id
    }

    /// Connects `src` to `dst` with the given token rates and initial
    /// tokens (delays).
    ///
    /// # Errors
    ///
    /// * [`SdfError::ZeroRate`] if either rate is zero.
    /// * [`SdfError::UnknownHandle`] if an actor handle is stale.
    pub fn connect(
        &mut self,
        src: ActorId,
        produce: u64,
        dst: ActorId,
        consume: u64,
        initial_tokens: u64,
    ) -> Result<EdgeId, SdfError> {
        let edge = self.edges.len();
        if src.0 >= self.actors.len() {
            return Err(SdfError::UnknownHandle {
                kind: "actor",
                index: src.0,
            });
        }
        if dst.0 >= self.actors.len() {
            return Err(SdfError::UnknownHandle {
                kind: "actor",
                index: dst.0,
            });
        }
        if produce == 0 || consume == 0 {
            return Err(SdfError::ZeroRate { edge });
        }
        self.edges.push(EdgeInfo {
            src,
            produce,
            dst,
            consume,
            initial_tokens,
        });
        Ok(EdgeId(edge))
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Name of an actor.
    pub fn actor_name(&self, id: ActorId) -> &str {
        &self.actors[id.0].name
    }

    /// The connectivity record of an edge.
    pub fn edge(&self, id: EdgeId) -> &EdgeInfo {
        &self.edges[id.0]
    }

    /// Iterates over all edges with their handles.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &EdgeInfo)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Solves the balance equations and returns the minimal repetition
    /// vector: `q[src]·produce == q[dst]·consume` for every edge, with the
    /// smallest positive integers satisfying all constraints.
    ///
    /// Disconnected components are each normalized independently.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::InconsistentRates`] if no solution exists.
    pub fn repetition_vector(&self) -> Result<Vec<u64>, SdfError> {
        let n = self.actors.len();
        let mut q: Vec<Option<Rational>> = vec![None; n];

        // Adjacency over undirected rate constraints.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.src.0].push(i);
            adj[e.dst.0].push(i);
        }

        for start in 0..n {
            if q[start].is_some() {
                continue;
            }
            q[start] = Some(Rational::ONE);
            let mut stack = vec![start];
            while let Some(a) = stack.pop() {
                let qa = q[a].expect("actor on stack has an assigned rate");
                for &ei in &adj[a] {
                    let e = &self.edges[ei];
                    let (other, q_other) = if e.src.0 == a {
                        // q[dst] = q[src]·produce/consume
                        (
                            e.dst.0,
                            qa * Rational::new(e.produce, e.consume)
                                .expect("consume is non-zero by construction"),
                        )
                    } else {
                        (
                            e.src.0,
                            qa * Rational::new(e.consume, e.produce)
                                .expect("produce is non-zero by construction"),
                        )
                    };
                    match q[other] {
                        None => {
                            q[other] = Some(q_other);
                            stack.push(other);
                        }
                        Some(existing) => {
                            if existing != q_other {
                                return Err(SdfError::InconsistentRates { edge: ei });
                            }
                        }
                    }
                }
            }

            // Normalize this component to minimal integers.
            let component: Vec<usize> = (0..n)
                .filter(|&i| q[i].is_some() && self.same_component(start, i, &adj))
                .collect();
            let rats: Vec<Rational> = component
                .iter()
                .map(|&i| q[i].expect("component members are assigned"))
                .collect();
            let denom = common_denominator(&rats);
            let scaled: Vec<u64> = rats
                .iter()
                .map(|r| r.numer() * (denom / r.denom()))
                .collect();
            let g = scaled.iter().fold(0, |acc, &v| gcd(acc, v)).max(1);
            for (&i, &v) in component.iter().zip(scaled.iter()) {
                q[i] = Some(Rational::from_int(v / g));
            }
        }

        Ok(q.into_iter()
            .map(|r| r.expect("all actors assigned").numer())
            .collect())
    }

    /// Returns `true` if actors `a` and `b` are in the same undirected
    /// component (helper for per-component normalization).
    fn same_component(&self, a: usize, b: usize, adj: &[Vec<usize>]) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.actors.len()];
        let mut stack = vec![a];
        seen[a] = true;
        while let Some(x) = stack.pop() {
            for &ei in &adj[x] {
                let e = &self.edges[ei];
                for y in [e.src.0, e.dst.0] {
                    if !seen[y] {
                        if y == b {
                            return true;
                        }
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
        }
        false
    }
}

impl fmt::Display for SdfGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SdfGraph ({} actors, {} edges)",
            self.actors.len(),
            self.edges.len()
        )?;
        for (i, e) in self.edges.iter().enumerate() {
            writeln!(
                f,
                "  e{}: {}[{}] -> [{}]{} (init {})",
                i,
                self.actors[e.src.0].name,
                e.produce,
                e.consume,
                self.actors[e.dst.0].name,
                e.initial_tokens
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_repetition_vector() {
        // a -2-> -3- b: q = [3, 2]
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 2, b, 3, 0).unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![3, 2]);
    }

    #[test]
    fn classic_three_actor_example() {
        // Lee & Messerschmitt style: a -1->2- b -3->1- c
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        let c = g.add_actor("c");
        g.connect(a, 1, b, 2, 0).unwrap();
        g.connect(b, 3, c, 1, 0).unwrap();
        // q_a·1 = q_b·2, q_b·3 = q_c·1 → q = [2, 1, 3]
        assert_eq!(g.repetition_vector().unwrap(), vec![2, 1, 3]);
    }

    #[test]
    fn inconsistent_cycle_detected() {
        // a -1->1- b, b -1->1- a but with a 2x gain somewhere: impossible.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 1, b, 1, 0).unwrap();
        g.connect(b, 2, a, 1, 1).unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(SdfError::InconsistentRates { edge: 1 })
        ));
    }

    #[test]
    fn consistent_cycle_ok() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 2, b, 1, 0).unwrap();
        g.connect(b, 1, a, 2, 2).unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![1, 2]);
    }

    #[test]
    fn disconnected_components_normalized_independently() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        let c = g.add_actor("c");
        let d = g.add_actor("d");
        g.connect(a, 2, b, 4, 0).unwrap(); // q = [2,1] → minimal
        g.connect(c, 5, d, 5, 0).unwrap(); // q = [1,1]
        assert_eq!(g.repetition_vector().unwrap(), vec![2, 1, 1, 1]);
    }

    #[test]
    fn zero_rate_rejected() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        assert!(matches!(
            g.connect(a, 0, b, 1, 0),
            Err(SdfError::ZeroRate { .. })
        ));
    }

    #[test]
    fn stale_handle_rejected() {
        let mut g1 = SdfGraph::new();
        let mut g2 = SdfGraph::new();
        let a1 = g1.add_actor("a");
        let b2 = g2.add_actor("b");
        // Using g1's handle in g2 (same index 0 exists, so simulate a
        // genuinely out-of-range one).
        let fake = ActorId(5);
        assert!(matches!(
            g2.connect(b2, 1, fake, 1, 0),
            Err(SdfError::UnknownHandle { .. })
        ));
        let _ = a1;
    }

    #[test]
    fn isolated_actor_gets_one() {
        let mut g = SdfGraph::new();
        g.add_actor("lonely");
        assert_eq!(g.repetition_vector().unwrap(), vec![1]);
    }

    #[test]
    fn multirate_decimation_chain() {
        // src -1->1- fir -4->1- decim: decimator consumes 4 per firing.
        let mut g = SdfGraph::new();
        let src = g.add_actor("src");
        let fir = g.add_actor("fir");
        let dec = g.add_actor("decim");
        g.connect(src, 1, fir, 1, 0).unwrap();
        g.connect(fir, 1, dec, 4, 0).unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![4, 4, 1]);
    }

    #[test]
    fn display_lists_edges() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 1, b, 2, 3).unwrap();
        let s = g.to_string();
        assert!(s.contains("a[1] -> [2]b"));
        assert!(s.contains("init 3"));
    }
}
