//! Synchronous dataflow (SDF): rate analysis, static scheduling and
//! execution.
//!
//! "The dataflow (DF) MoC views a system as a directed graph where the
//! vertices represent computations and the edges represent totally ordered
//! sequences (or streams) of tokens. In the particular case of static or
//! synchronous dataflow (SDF), the scheduling of the operations is static"
//! (paper §3). This crate provides:
//!
//! * [`SdfGraph`] — topology with production/consumption rates and
//!   initial tokens (delays);
//! * [`SdfGraph::repetition_vector`] — the balance equations solved with
//!   exact rational arithmetic, with consistency checking;
//! * [`schedule`] — periodic admissible sequential schedule construction
//!   with deadlock detection and FIFO bound analysis;
//! * [`SdfExecutor`] — a typed token-moving execution engine.
//!
//! The AMS core crate reuses the analysis half to schedule timed-dataflow
//! clusters; the executor runs untimed DSP chains (digital filters, DSP
//! blocks in the paper's Figure 1 example).
//!
//! # Example
//!
//! ```
//! use ams_sdf::{schedule, SdfGraph};
//!
//! # fn main() -> Result<(), ams_sdf::SdfError> {
//! let mut g = SdfGraph::new();
//! let src = g.add_actor("src");
//! let fir = g.add_actor("fir");
//! let dec = g.add_actor("decimate");
//! g.connect(src, 1, fir, 1, 0)?;
//! g.connect(fir, 1, dec, 8, 0)?; // 8:1 decimation
//! let s = schedule(&g)?;
//! assert_eq!(s.repetition_vector(), &[8, 8, 1]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;
mod graph;
mod schedule;

pub use error::SdfError;
pub use exec::{ActorIo, SdfActor, SdfCheckpoint, SdfExecStats, SdfExecutor};
pub use graph::{ActorId, EdgeId, EdgeInfo, SdfGraph};
pub use schedule::{schedule, Schedule};
