use std::fmt;

/// Errors from SDF graph analysis and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfError {
    /// The balance equations have no non-trivial solution: some cycle of
    /// rate ratios is inconsistent, so no periodic schedule with bounded
    /// buffers exists.
    InconsistentRates {
        /// Index of the edge where the inconsistency was detected.
        edge: usize,
    },
    /// The graph is consistent but deadlocks: no actor can fire even
    /// though the iteration is incomplete (insufficient initial tokens on
    /// some cycle).
    Deadlock {
        /// Actors (by index) with unfinished firings when execution stalled.
        stuck_actors: Vec<usize>,
    },
    /// A rate of zero was specified; every port must move at least one
    /// token per firing.
    ZeroRate {
        /// Index of the offending edge.
        edge: usize,
    },
    /// A handle referenced an actor or edge that does not exist.
    UnknownHandle {
        /// What kind of handle was invalid.
        kind: &'static str,
        /// Raw index of the invalid handle.
        index: usize,
    },
    /// An actor fired without producing/consuming the declared number of
    /// tokens (executor integrity check).
    RateViolation {
        /// Actor that misbehaved.
        actor: usize,
        /// Description of the violation.
        detail: String,
    },
}

impl SdfError {
    /// The stable diagnostic code of this error, from the same registry
    /// `ams-lint` uses (`TDF001` = inconsistent rates, `TDF002` =
    /// deadlock, …), so a runtime scheduling failure and the
    /// pre-elaboration lint finding that predicts it are correlated by
    /// code.
    pub fn code(&self) -> &'static str {
        match self {
            SdfError::InconsistentRates { .. } => "TDF001",
            SdfError::Deadlock { .. } => "TDF002",
            SdfError::ZeroRate { .. } => "TDF009",
            SdfError::UnknownHandle { .. } => "TDF010",
            SdfError::RateViolation { .. } => "TDF011",
        }
    }
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::InconsistentRates { edge } => {
                write!(f, "inconsistent dataflow rates at edge {edge}")
            }
            SdfError::Deadlock { stuck_actors } => {
                write!(f, "dataflow deadlock; stuck actors: {stuck_actors:?}")
            }
            SdfError::ZeroRate { edge } => write!(f, "zero token rate on edge {edge}"),
            SdfError::UnknownHandle { kind, index } => {
                write!(f, "unknown {kind} handle with index {index}")
            }
            SdfError::RateViolation { actor, detail } => {
                write!(f, "rate violation by actor {actor}: {detail}")
            }
        }
    }
}

impl std::error::Error for SdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SdfError::InconsistentRates { edge: 2 }
            .to_string()
            .contains("edge 2"));
        assert!(SdfError::Deadlock {
            stuck_actors: vec![0, 1]
        }
        .to_string()
        .contains("[0, 1]"));
    }
}
