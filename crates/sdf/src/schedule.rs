//! Static schedule construction (PASS) and buffer-bound analysis.
//!
//! "One cycle of the scheduling consists in traversing the graph until all
//! required nodes have been visited and their corresponding computations
//! executed" (paper §3). Given a consistent repetition vector, this module
//! builds a *periodic admissible sequential schedule* by symbolic token
//! simulation, detecting deadlock when no admissible firing exists, and
//! reports the maximum buffer occupancy of each edge over one iteration.

use crate::{ActorId, SdfError, SdfGraph};

/// A periodic admissible sequential schedule: the actor firing order for
/// one graph iteration, plus derived bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    firings: Vec<ActorId>,
    repetition: Vec<u64>,
    buffer_bounds: Vec<u64>,
}

impl Schedule {
    /// The firing sequence for one iteration.
    pub fn firings(&self) -> &[ActorId] {
        &self.firings
    }

    /// The repetition vector used to build the schedule.
    pub fn repetition_vector(&self) -> &[u64] {
        &self.repetition
    }

    /// Maximum tokens simultaneously buffered on each edge during one
    /// iteration, starting from the initial-token configuration. This is
    /// the FIFO capacity needed to run the schedule without blocking.
    pub fn buffer_bounds(&self) -> &[u64] {
        &self.buffer_bounds
    }

    /// Total firings per iteration.
    pub fn len(&self) -> usize {
        self.firings.len()
    }

    /// Returns `true` for an empty schedule (graph with no actors).
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty()
    }
}

/// Builds a schedule for one iteration of the graph.
///
/// The construction is the classic "simulate token counts" PASS algorithm:
/// repeatedly fire any actor that (a) still has remaining firings this
/// iteration and (b) has enough tokens on all inputs. List order is used
/// as the tie-break, which yields a deterministic schedule.
///
/// # Errors
///
/// * Propagates [`SdfError::InconsistentRates`] from the balance
///   equations.
/// * Returns [`SdfError::Deadlock`] if the iteration cannot complete.
///
/// # Example
///
/// ```
/// use ams_sdf::{schedule, SdfGraph};
///
/// # fn main() -> Result<(), ams_sdf::SdfError> {
/// let mut g = SdfGraph::new();
/// let a = g.add_actor("a");
/// let b = g.add_actor("b");
/// g.connect(a, 2, b, 1, 0)?;
/// let s = schedule(&g)?;
/// assert_eq!(s.firings().len(), 3); // a once, b twice
/// # Ok(())
/// # }
/// ```
pub fn schedule(graph: &SdfGraph) -> Result<Schedule, SdfError> {
    let repetition = graph.repetition_vector()?;
    let n = graph.actor_count();
    let mut remaining: Vec<u64> = repetition.clone();
    let mut tokens: Vec<u64> = graph.edges().map(|(_, e)| e.initial_tokens).collect();
    let mut bounds: Vec<u64> = tokens.clone();
    let total: u64 = repetition.iter().sum();
    let mut firings = Vec::with_capacity(total as usize);

    // Precompute incidence for speed.
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, e) in graph.edges() {
        out_edges[e.src.index()].push(id.index());
        in_edges[e.dst.index()].push(id.index());
    }

    let mut fired_this_pass = true;
    while firings.len() < total as usize {
        if !fired_this_pass {
            let stuck: Vec<usize> = (0..n).filter(|&a| remaining[a] > 0).collect();
            return Err(SdfError::Deadlock {
                stuck_actors: stuck,
            });
        }
        fired_this_pass = false;
        for a in 0..n {
            while remaining[a] > 0 {
                let ready = in_edges[a].iter().all(|&ei| {
                    let e = graph.edge(crate::EdgeId(ei));
                    tokens[ei] >= e.consume
                });
                if !ready {
                    break;
                }
                // Fire.
                for &ei in &in_edges[a] {
                    let e = graph.edge(crate::EdgeId(ei));
                    tokens[ei] -= e.consume;
                }
                for &ei in &out_edges[a] {
                    let e = graph.edge(crate::EdgeId(ei));
                    tokens[ei] += e.produce;
                    bounds[ei] = bounds[ei].max(tokens[ei]);
                }
                remaining[a] -= 1;
                firings.push(ActorId(a));
                fired_this_pass = true;
            }
        }
    }

    // Sanity: after one iteration, token counts must return to initial.
    for ((_, e), (&t, _)) in graph.edges().zip(tokens.iter().zip(0..)) {
        debug_assert_eq!(
            t, e.initial_tokens,
            "token counts must be periodic over one iteration"
        );
    }

    Ok(Schedule {
        firings,
        repetition,
        buffer_bounds: bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain_schedule_order() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 1, b, 1, 0).unwrap();
        let s = schedule(&g).unwrap();
        assert_eq!(s.firings(), &[a, b]);
        assert_eq!(s.buffer_bounds(), &[1]);
    }

    #[test]
    fn multirate_counts() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 3, b, 2, 0).unwrap();
        let s = schedule(&g).unwrap();
        // q = [2, 3]: a fires 2×, b fires 3×.
        let a_count = s.firings().iter().filter(|&&x| x == a).count();
        let b_count = s.firings().iter().filter(|&&x| x == b).count();
        assert_eq!((a_count, b_count), (2, 3));
        assert_eq!(s.repetition_vector(), &[2, 3]);
    }

    #[test]
    fn cycle_without_delay_deadlocks() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 1, b, 1, 0).unwrap();
        g.connect(b, 1, a, 1, 0).unwrap();
        match schedule(&g) {
            Err(SdfError::Deadlock { stuck_actors }) => {
                assert_eq!(stuck_actors, vec![0, 1]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn cycle_with_initial_token_schedules() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 1, b, 1, 0).unwrap();
        g.connect(b, 1, a, 1, 1).unwrap(); // one delay breaks the deadlock
        let s = schedule(&g).unwrap();
        assert_eq!(s.firings(), &[a, b]);
    }

    #[test]
    fn buffer_bounds_track_peak_occupancy() {
        // a produces 4, b consumes 1: peak of 4 tokens on the edge.
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 4, b, 1, 0).unwrap();
        let s = schedule(&g).unwrap();
        assert_eq!(s.buffer_bounds(), &[4]);
    }

    #[test]
    fn empty_graph_gives_empty_schedule() {
        let g = SdfGraph::new();
        let s = schedule(&g).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn diamond_topology() {
        //    ┌-> b ─┐
        //  a ┤      ├-> d
        //    └-> c ─┘
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        let c = g.add_actor("c");
        let d = g.add_actor("d");
        g.connect(a, 1, b, 1, 0).unwrap();
        g.connect(a, 1, c, 1, 0).unwrap();
        g.connect(b, 1, d, 1, 0).unwrap();
        g.connect(c, 1, d, 1, 0).unwrap();
        let s = schedule(&g).unwrap();
        assert_eq!(s.len(), 4);
        // d must fire last.
        assert_eq!(*s.firings().last().unwrap(), d);
        // a must fire first.
        assert_eq!(s.firings()[0], a);
    }

    #[test]
    fn schedule_is_deterministic() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        let c = g.add_actor("c");
        g.connect(a, 2, b, 1, 0).unwrap();
        g.connect(b, 1, c, 2, 0).unwrap();
        let s1 = schedule(&g).unwrap();
        let s2 = schedule(&g).unwrap();
        assert_eq!(s1, s2);
    }
}
