//! Property-based tests of the SDF analysis invariants over randomized
//! graph topologies.

use ams_sdf::{schedule, SdfGraph};
use proptest::prelude::*;

proptest! {
    /// Random multirate chains: the repetition vector balances every
    /// edge and the schedule fires each actor exactly q times.
    #[test]
    fn chain_schedules_are_consistent(
        rates in proptest::collection::vec((1u64..8, 1u64..8), 1..6),
    ) {
        let mut g = SdfGraph::new();
        let mut actors = vec![g.add_actor("a0")];
        for (i, &(p, c)) in rates.iter().enumerate() {
            let next = g.add_actor(format!("a{}", i + 1));
            g.connect(actors[i], p, next, c, 0).unwrap();
            actors.push(next);
        }
        let s = schedule(&g).unwrap();
        let q = s.repetition_vector().to_vec();
        // Balance on every edge.
        for (i, &(p, c)) in rates.iter().enumerate() {
            prop_assert_eq!(q[i] * p, q[i + 1] * c, "edge {} unbalanced", i);
        }
        // Firing counts match q.
        let mut counts = vec![0u64; actors.len()];
        for &f in s.firings() {
            counts[f.index()] += 1;
        }
        prop_assert_eq!(counts, q);
    }

    /// A fork/join (diamond) with arbitrary rates either schedules
    /// consistently or reports a typed error — never panics — and when it
    /// schedules, replaying the firing order never underflows any FIFO.
    #[test]
    fn diamond_never_underflows(
        p1 in 1u64..5, c1 in 1u64..5,
        p2 in 1u64..5, c2 in 1u64..5,
        p3 in 1u64..5, c3 in 1u64..5,
        p4 in 1u64..5, c4 in 1u64..5,
    ) {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        let c = g.add_actor("c");
        let d = g.add_actor("d");
        g.connect(a, p1, b, c1, 0).unwrap();
        g.connect(a, p2, c, c2, 0).unwrap();
        g.connect(b, p3, d, c3, 0).unwrap();
        g.connect(c, p4, d, c4, 0).unwrap();
        match schedule(&g) {
            Err(_) => {} // inconsistent rates: acceptable, typed
            Ok(s) => {
                // Replay with token counting.
                let edges = [
                    (a, b, p1, c1),
                    (a, c, p2, c2),
                    (b, d, p3, c3),
                    (c, d, p4, c4),
                ];
                let mut tokens = [0i64; 4];
                for &f in s.firings() {
                    for (k, &(src, dst, p, c)) in edges.iter().enumerate() {
                        if f == dst {
                            tokens[k] -= c as i64;
                            prop_assert!(tokens[k] >= 0, "fifo {k} underflow");
                        }
                        if f == src {
                            tokens[k] += p as i64;
                        }
                    }
                }
                // Periodicity: back to the initial state.
                prop_assert!(tokens.iter().all(|&t| t == 0));
                // Buffer bounds hold: replay stays within the reported caps.
                for (k, &bound) in s.buffer_bounds().iter().enumerate() {
                    prop_assert!(bound >= 1, "edge {k} bound {bound}");
                }
            }
        }
    }

    /// Initial tokens (delays) never make a consistent graph *less*
    /// schedulable, and the reported buffer bound grows at most by the
    /// added delay.
    #[test]
    fn delays_preserve_schedulability(
        p in 1u64..5, c in 1u64..5, delay in 0u64..6,
    ) {
        let mut g0 = SdfGraph::new();
        let a0 = g0.add_actor("a");
        let b0 = g0.add_actor("b");
        g0.connect(a0, p, b0, c, 0).unwrap();
        let s0 = schedule(&g0).unwrap();

        let mut g1 = SdfGraph::new();
        let a1 = g1.add_actor("a");
        let b1 = g1.add_actor("b");
        g1.connect(a1, p, b1, c, delay).unwrap();
        let s1 = schedule(&g1).unwrap();

        prop_assert_eq!(s0.repetition_vector(), s1.repetition_vector());
        prop_assert!(s1.buffer_bounds()[0] <= s0.buffer_bounds()[0] + delay);
    }
}
