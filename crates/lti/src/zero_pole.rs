//! Zero-pole-gain models `H(s) = k·∏(s − zᵢ) / ∏(s − pⱼ)`.
//!
//! The second of the paper's three "predefined linear operators" (phase
//! 1). Zero-pole form is how filter designers think; this type converts
//! losslessly to [`TransferFunction`] for simulation.

use crate::TransferFunction;
use ams_math::{Complex64, MathError, Poly};
use std::fmt;

/// A zero-pole-gain transfer function description.
///
/// Complex zeros/poles must come in conjugate pairs so the expanded
/// polynomials are real.
///
/// # Example
///
/// ```
/// use ams_lti::ZeroPole;
/// use ams_math::Complex64;
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// // Two real poles at -10 and -100, no zeros, unity DC gain.
/// let zp = ZeroPole::new(
///     vec![],
///     vec![Complex64::from_real(-10.0), Complex64::from_real(-100.0)],
///     1000.0,
/// )?;
/// let tf = zp.to_transfer_function()?;
/// assert!((tf.dc_gain()? - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZeroPole {
    zeros: Vec<Complex64>,
    poles: Vec<Complex64>,
    gain: f64,
}

impl ZeroPole {
    /// Creates a zero-pole-gain model.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if there are no poles and no
    /// zeros with a zero gain (degenerate), or if the sets are not closed
    /// under conjugation (checked on conversion).
    pub fn new(zeros: Vec<Complex64>, poles: Vec<Complex64>, gain: f64) -> Result<Self, MathError> {
        if !gain.is_finite() {
            return Err(MathError::invalid("gain must be finite"));
        }
        Ok(ZeroPole { zeros, poles, gain })
    }

    /// The zeros.
    pub fn zeros(&self) -> &[Complex64] {
        &self.zeros
    }

    /// The poles.
    pub fn poles(&self) -> &[Complex64] {
        &self.poles
    }

    /// The gain factor `k`.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Evaluates `H(s)`.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        let num: Complex64 = self.zeros.iter().map(|&z| s - z).product();
        let den: Complex64 = self.poles.iter().map(|&p| s - p).product();
        Complex64::from_real(self.gain) * num / den
    }

    /// Frequency response `H(jω)`.
    pub fn freq_response(&self, omega: f64) -> Complex64 {
        self.eval(Complex64::new(0.0, omega))
    }

    /// Expands into numerator/denominator polynomial form.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if the zeros or poles are
    /// not conjugate-symmetric (the result would not be a real-coefficient
    /// system).
    pub fn to_transfer_function(&self) -> Result<TransferFunction, MathError> {
        const TOL: f64 = 1e-9;
        let num = Poly::from_complex_roots(&self.zeros, TOL)?.scale(self.gain);
        let den = Poly::from_complex_roots(&self.poles, TOL)?;
        TransferFunction::from_polys(num, den)
    }

    /// A Butterworth low-pass prototype of the given order and cutoff
    /// `w0` (rad/s), with unity DC gain.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] unless `order ≥ 1` and
    /// `w0 > 0`.
    pub fn butterworth(order: usize, w0: f64) -> Result<Self, MathError> {
        if order == 0 {
            return Err(MathError::invalid("butterworth order must be >= 1"));
        }
        if w0 <= 0.0 || !w0.is_finite() {
            return Err(MathError::invalid("cutoff frequency must be positive"));
        }
        // Poles equally spaced on the left half of the circle of radius w0:
        // pₖ = w0·e^{j·π·(2k + n + 1)/(2n)}, k = 0..n-1.
        let n = order;
        let poles: Vec<Complex64> = (0..n)
            .map(|k| {
                let theta = std::f64::consts::PI * (2 * k + n + 1) as f64 / (2 * n) as f64;
                Complex64::from_polar(w0, theta)
            })
            .collect();
        // DC gain of ∏ 1/(s-p) at s=0 is 1/∏(-p); normalize with k = ∏|p| = w0^n.
        let gain = w0.powi(n as i32);
        ZeroPole::new(Vec::new(), poles, gain)
    }

    /// A Chebyshev type-I low-pass prototype: equiripple passband with
    /// `ripple_db` of ripple up to `w0` (rad/s), then the steepest
    /// roll-off any all-pole filter of that order achieves.
    ///
    /// The DC gain is 1 for odd orders and `1/√(1+ε²)` (the ripple
    /// trough) for even orders, per the standard definition.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] unless `order ≥ 1`,
    /// `w0 > 0` and `ripple_db > 0`.
    pub fn chebyshev1(order: usize, w0: f64, ripple_db: f64) -> Result<Self, MathError> {
        if order == 0 {
            return Err(MathError::invalid("chebyshev order must be >= 1"));
        }
        if w0 <= 0.0 || !w0.is_finite() {
            return Err(MathError::invalid("cutoff frequency must be positive"));
        }
        if ripple_db <= 0.0 || !ripple_db.is_finite() {
            return Err(MathError::invalid("passband ripple must be positive"));
        }
        let n = order;
        let eps = (10f64.powf(ripple_db / 10.0) - 1.0).sqrt();
        let a = (1.0 / eps).asinh() / n as f64;
        let (sinh_a, cosh_a) = (a.sinh(), a.cosh());
        let poles: Vec<Complex64> = (0..n)
            .map(|k| {
                let theta = std::f64::consts::PI * (2 * k + 1) as f64 / (2 * n) as f64;
                Complex64::new(-sinh_a * theta.sin() * w0, cosh_a * theta.cos() * w0)
            })
            .collect();
        // k = ∏(−pₖ) gives unity DC gain; even orders sit in a ripple
        // trough at DC, scaled by 1/√(1+ε²).
        let prod: Complex64 = poles.iter().map(|&p| -p).product();
        let mut gain = prod.re; // imaginary part cancels by conjugate symmetry
        if n.is_multiple_of(2) {
            gain /= (1.0 + eps * eps).sqrt();
        }
        ZeroPole::new(Vec::new(), poles, gain)
    }
}

impl fmt::Display for ZeroPole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "zpk(zeros: {:?}, poles: {:?}, k: {})",
            self.zeros, self.poles, self.gain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_expanded_form() {
        let zp = ZeroPole::new(
            vec![Complex64::from_real(-5.0)],
            vec![Complex64::from_real(-1.0), Complex64::from_real(-10.0)],
            2.0,
        )
        .unwrap();
        let tf = zp.to_transfer_function().unwrap();
        for w in [0.0, 0.3, 1.0, 3.0, 30.0] {
            let a = zp.freq_response(w);
            let b = tf.freq_response(w);
            assert!((a - b).abs() < 1e-9, "mismatch at ω = {w}");
        }
    }

    #[test]
    fn conjugate_pair_gives_real_tf() {
        let zp = ZeroPole::new(
            vec![],
            vec![Complex64::new(-1.0, 2.0), Complex64::new(-1.0, -2.0)],
            5.0,
        )
        .unwrap();
        let tf = zp.to_transfer_function().unwrap();
        // (s+1)² + 4 = s² + 2s + 5
        assert!((tf.den().coeffs()[0] - 5.0).abs() < 1e-12);
        assert!((tf.den().coeffs()[1] - 2.0).abs() < 1e-12);
        assert!((tf.dc_gain().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lone_complex_pole_rejected() {
        let zp = ZeroPole::new(vec![], vec![Complex64::new(-1.0, 2.0)], 1.0).unwrap();
        assert!(zp.to_transfer_function().is_err());
    }

    #[test]
    fn butterworth_properties() {
        for order in 1..=5 {
            let w0 = 100.0;
            let zp = ZeroPole::butterworth(order, w0).unwrap();
            let tf = zp.to_transfer_function().unwrap();
            // Unity DC gain.
            assert!(
                (tf.dc_gain().unwrap() - 1.0).abs() < 1e-6,
                "order {order} dc gain"
            );
            // -3 dB at cutoff for every order.
            let m = tf.freq_response(w0).abs();
            assert!(
                (m - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6,
                "order {order}: |H(jω₀)| = {m}"
            );
            // All poles strictly stable.
            assert!(tf.is_stable().unwrap(), "order {order} stable");
            // Roll-off: at 10·w0 the attenuation is ≈ order·20 dB.
            let att_db = -20.0 * tf.freq_response(10.0 * w0).abs().log10();
            assert!(
                (att_db - 20.0 * order as f64).abs() < 1.0,
                "order {order}: rolloff {att_db} dB"
            );
        }
    }

    #[test]
    fn chebyshev_equiripple_passband() {
        for order in 1..=6 {
            let w0 = 1000.0;
            let ripple_db = 1.0;
            let zp = ZeroPole::chebyshev1(order, w0, ripple_db).unwrap();
            let tf = zp.to_transfer_function().unwrap();
            assert!(tf.is_stable().unwrap(), "order {order} stable");
            // Every passband point lies within [−ripple, 0] dB.
            let mut min_db: f64 = 0.0;
            let mut max_db = f64::NEG_INFINITY;
            for i in 0..=100 {
                let w = w0 * i as f64 / 100.0;
                let db = 20.0 * tf.freq_response(w).abs().log10();
                min_db = min_db.min(db);
                max_db = max_db.max(db);
            }
            assert!(max_db < 1e-6, "order {order}: peak {max_db} dB");
            assert!(
                min_db > -ripple_db - 1e-6,
                "order {order}: trough {min_db} dB"
            );
            // The full ripple range is actually used (equiripple).
            if order >= 2 {
                assert!(
                    min_db < -ripple_db + 0.05,
                    "order {order}: ripple reaches the bound ({min_db} dB)"
                );
            }
            // At the band edge the response is exactly −ripple dB.
            let edge_db = 20.0 * tf.freq_response(w0).abs().log10();
            assert!(
                (edge_db + ripple_db).abs() < 1e-6,
                "order {order}: edge {edge_db} dB"
            );
        }
    }

    #[test]
    fn chebyshev_rolls_off_faster_than_butterworth() {
        let w0 = 1.0;
        let bw = ZeroPole::butterworth(5, w0)
            .unwrap()
            .to_transfer_function()
            .unwrap();
        let ch = ZeroPole::chebyshev1(5, w0, 1.0)
            .unwrap()
            .to_transfer_function()
            .unwrap();
        let att_bw = -20.0 * bw.freq_response(3.0 * w0).abs().log10();
        let att_ch = -20.0 * ch.freq_response(3.0 * w0).abs().log10();
        assert!(
            att_ch > att_bw + 10.0,
            "chebyshev {att_ch:.1} dB vs butterworth {att_bw:.1} dB at 3ω₀"
        );
    }

    #[test]
    fn chebyshev_invalid_parameters() {
        assert!(ZeroPole::chebyshev1(0, 1.0, 1.0).is_err());
        assert!(ZeroPole::chebyshev1(3, -1.0, 1.0).is_err());
        assert!(ZeroPole::chebyshev1(3, 1.0, 0.0).is_err());
    }

    #[test]
    fn infinite_gain_rejected() {
        assert!(ZeroPole::new(vec![], vec![], f64::INFINITY).is_err());
        assert!(ZeroPole::butterworth(0, 1.0).is_err());
        assert!(ZeroPole::butterworth(2, -1.0).is_err());
    }
}
