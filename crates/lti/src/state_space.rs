//! State-space models `ẋ = A·x + B·u, y = C·x + D·u`.
//!
//! The multi-input multi-output "equation interface" of the paper's O7:
//! behavioural continuous-time models formulated directly as first-order
//! linear ODE systems. These are what the fixed-step LTI solver and the
//! AC analysis consume.

use ams_math::{Complex64, DMat, DVec, Lu, MathError, Poly};

/// A continuous-time linear state-space model.
///
/// # Example
///
/// ```
/// use ams_lti::StateSpace;
/// use ams_math::DMat;
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// // RC low-pass, τ = 1: ẋ = -x + u, y = x.
/// let ss = StateSpace::new(
///     DMat::from_rows(&[&[-1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     DMat::from_rows(&[&[0.0]]),
/// )?;
/// assert_eq!(ss.order(), 1);
/// assert!((ss.dc_gain()?[(0, 0)] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpace {
    a: DMat<f64>,
    b: DMat<f64>,
    c: DMat<f64>,
    d: DMat<f64>,
}

impl StateSpace {
    /// Creates a model, validating shape compatibility:
    /// `A: n×n`, `B: n×m`, `C: p×n`, `D: p×m`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] on inconsistent shapes.
    pub fn new(a: DMat<f64>, b: DMat<f64>, c: DMat<f64>, d: DMat<f64>) -> Result<Self, MathError> {
        let n = a.rows();
        if !a.is_square() {
            return Err(MathError::dims(
                "square A",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        if b.rows() != n {
            return Err(MathError::dims(
                format!("B with {n} rows"),
                format!("{} rows", b.rows()),
            ));
        }
        if c.cols() != n {
            return Err(MathError::dims(
                format!("C with {n} cols"),
                format!("{} cols", c.cols()),
            ));
        }
        if d.rows() != c.rows() || d.cols() != b.cols() {
            return Err(MathError::dims(
                format!("D of shape {}x{}", c.rows(), b.cols()),
                format!("{}x{}", d.rows(), d.cols()),
            ));
        }
        Ok(StateSpace { a, b, c, d })
    }

    /// System matrix `A`.
    pub fn a(&self) -> &DMat<f64> {
        &self.a
    }

    /// Input matrix `B`.
    pub fn b(&self) -> &DMat<f64> {
        &self.b
    }

    /// Output matrix `C`.
    pub fn c(&self) -> &DMat<f64> {
        &self.c
    }

    /// Feedthrough matrix `D`.
    pub fn d(&self) -> &DMat<f64> {
        &self.d
    }

    /// Number of states.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.c.rows()
    }

    /// Evaluates the transfer matrix `H(s) = C·(sI − A)⁻¹·B + D` at `s`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::SingularMatrix`] if `s` is an eigenvalue of
    /// `A` (evaluation exactly on a pole).
    pub fn eval(&self, s: Complex64) -> Result<DMat<Complex64>, MathError> {
        let n = self.order();
        if n == 0 {
            return Ok(self.d.map(Complex64::from_real));
        }
        // (sI − A) in complex arithmetic.
        let mut m = DMat::<Complex64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let aij = Complex64::from_real(self.a[(i, j)]);
                m[(i, j)] = if i == j { s - aij } else { -aij };
            }
        }
        let lu = Lu::factor(&m)?;
        let bc = self.b.map(Complex64::from_real);
        let x = lu.solve_mat(&bc)?; // (sI-A)⁻¹ B
        let cc = self.c.map(Complex64::from_real);
        let cx = cc.mul_mat(&x)?;
        let dc = self.d.map(Complex64::from_real);
        Ok(&cx + &dc)
    }

    /// Frequency response `H(jω)`.
    ///
    /// # Errors
    ///
    /// See [`StateSpace::eval`].
    pub fn freq_response(&self, omega: f64) -> Result<DMat<Complex64>, MathError> {
        self.eval(Complex64::new(0.0, omega))
    }

    /// DC gain `−C·A⁻¹·B + D`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::SingularMatrix`] for systems with a pole at
    /// the origin.
    pub fn dc_gain(&self) -> Result<DMat<f64>, MathError> {
        let n = self.order();
        if n == 0 {
            return Ok(self.d.clone());
        }
        let lu = Lu::factor(&self.a)?;
        let x = lu.solve_mat(&self.b)?; // A⁻¹ B
        let cx = self.c.mul_mat(&x)?;
        Ok(&self.d - &cx)
    }

    /// The characteristic polynomial `det(sI − A)` via the
    /// Leverrier–Faddeev recursion (exact in rational arithmetic terms,
    /// O(n⁴) — fine for behavioural model orders).
    pub fn characteristic_polynomial(&self) -> Poly {
        let n = self.order();
        if n == 0 {
            return Poly::one();
        }
        // Faddeev–LeVerrier: M₀ = I, cₙ = 1;
        // Mₖ = A·Mₖ₋₁ + cₙ₋ₖ₊₁·I with cₙ₋ₖ = -tr(A·Mₖ₋₁)/k … standard form:
        let mut coeffs = vec![0.0; n + 1];
        coeffs[n] = 1.0;
        let mut m = DMat::<f64>::identity(n);
        for k in 1..=n {
            let am = self.a.mul_mat(&m).expect("square times square");
            let trace: f64 = (0..n).map(|i| am[(i, i)]).sum();
            let ck = -trace / k as f64;
            coeffs[n - k] = ck;
            // M ← A·M + ck·I
            m = am;
            for i in 0..n {
                m[(i, i)] += ck;
            }
        }
        Poly::new(coeffs)
    }

    /// The system poles (eigenvalues of `A`).
    ///
    /// # Errors
    ///
    /// Propagates root-finding failures.
    pub fn poles(&self) -> Result<Vec<Complex64>, MathError> {
        if self.order() == 0 {
            return Ok(Vec::new());
        }
        self.characteristic_polynomial().roots()
    }

    /// Returns `true` if every pole has a strictly negative real part.
    ///
    /// # Errors
    ///
    /// Propagates root-finding failures.
    pub fn is_stable(&self) -> Result<bool, MathError> {
        Ok(self.poles()?.iter().all(|p| p.re < 0.0))
    }

    /// Evaluates the state derivative `ẋ = A·x + B·u` into `dx`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the model dimensions.
    #[allow(clippy::needless_range_loop)]
    pub fn derivative(&self, x: &[f64], u: &[f64], dx: &mut [f64]) {
        let n = self.order();
        let m = self.inputs();
        assert_eq!(x.len(), n, "state length");
        assert_eq!(u.len(), m, "input length");
        assert_eq!(dx.len(), n, "derivative length");
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += self.a[(i, j)] * x[j];
            }
            for j in 0..m {
                acc += self.b[(i, j)] * u[j];
            }
            dx[i] = acc;
        }
    }

    /// Computes the output `y = C·x + D·u`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the model dimensions.
    #[allow(clippy::needless_range_loop)]
    pub fn output(&self, x: &[f64], u: &[f64]) -> DVec<f64> {
        let p = self.outputs();
        let n = self.order();
        let m = self.inputs();
        assert_eq!(x.len(), n, "state length");
        assert_eq!(u.len(), m, "input length");
        let mut y = DVec::zeros(p);
        for i in 0..p {
            let mut acc = 0.0;
            for j in 0..n {
                acc += self.c[(i, j)] * x[j];
            }
            for j in 0..m {
                acc += self.d[(i, j)] * u[j];
            }
            y[i] = acc;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> StateSpace {
        StateSpace::new(
            DMat::from_rows(&[&[-1.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[0.0]]),
        )
        .unwrap()
    }

    #[test]
    fn shape_validation() {
        let bad = StateSpace::new(
            DMat::zeros(2, 2),
            DMat::zeros(1, 1),
            DMat::zeros(1, 2),
            DMat::zeros(1, 1),
        );
        assert!(matches!(bad, Err(MathError::DimensionMismatch { .. })));
    }

    #[test]
    fn rc_dc_gain_and_response() {
        let ss = rc();
        assert!((ss.dc_gain().unwrap()[(0, 0)] - 1.0).abs() < 1e-12);
        let h1 = ss.freq_response(1.0).unwrap()[(0, 0)];
        assert!((h1.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((h1.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn characteristic_polynomial_of_companion() {
        // A = [[0, 1], [-2, -3]] → char poly s² + 3s + 2.
        let ss = StateSpace::new(
            DMat::from_rows(&[&[0.0, 1.0], &[-2.0, -3.0]]),
            DMat::zeros(2, 1),
            DMat::zeros(1, 2),
            DMat::zeros(1, 1),
        )
        .unwrap();
        let p = ss.characteristic_polynomial();
        assert_eq!(p.coeffs(), &[2.0, 3.0, 1.0]);
        let mut poles: Vec<f64> = ss.poles().unwrap().iter().map(|z| z.re).collect();
        poles.sort_by(f64::total_cmp);
        assert!((poles[0] + 2.0).abs() < 1e-8);
        assert!((poles[1] + 1.0).abs() < 1e-8);
        assert!(ss.is_stable().unwrap());
    }

    #[test]
    fn derivative_and_output() {
        let ss = rc();
        let mut dx = [0.0];
        ss.derivative(&[2.0], &[5.0], &mut dx);
        assert_eq!(dx[0], 3.0); // -2 + 5
        let y = ss.output(&[2.0], &[5.0]);
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn mimo_shapes() {
        // 2 states, 2 inputs, 3 outputs.
        let ss = StateSpace::new(
            DMat::from_rows(&[&[-1.0, 0.0], &[0.0, -2.0]]),
            DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
            DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]),
            DMat::zeros(3, 2),
        )
        .unwrap();
        assert_eq!((ss.order(), ss.inputs(), ss.outputs()), (2, 2, 3));
        let h = ss.freq_response(0.0).unwrap();
        assert_eq!(h.rows(), 3);
        assert_eq!(h.cols(), 2);
        assert!((h[(0, 0)].re - 1.0).abs() < 1e-12); // 1/1
        assert!((h[(1, 1)].re - 0.5).abs() < 1e-12); // 1/2
        assert!((h[(2, 0)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pole_at_origin_blocks_dc_gain() {
        let ss = StateSpace::new(
            DMat::from_rows(&[&[0.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[0.0]]),
        )
        .unwrap();
        assert!(matches!(
            ss.dc_gain(),
            Err(MathError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn eval_on_pole_is_singular() {
        let ss = rc();
        assert!(ss.eval(Complex64::from_real(-1.0)).is_err());
    }

    #[test]
    fn static_system_order_zero() {
        let ss = StateSpace::new(
            DMat::zeros(0, 0),
            DMat::zeros(0, 2),
            DMat::zeros(1, 0),
            DMat::from_rows(&[&[3.0, 4.0]]),
        )
        .unwrap();
        assert_eq!(ss.order(), 0);
        let h = ss.freq_response(10.0).unwrap();
        assert!((h[(0, 1)].re - 4.0).abs() < 1e-12);
        assert!(ss.poles().unwrap().is_empty());
    }
}
