//! Laplace-domain rational transfer functions.
//!
//! The paper's phase 1 requires "predefined linear operators (Laplace
//! transfer function, zero-pole transfer function, state-space equations)".
//! [`TransferFunction`] is the `H(s) = N(s)/D(s)` form; conversions to the
//! other two forms live in [`crate::ZeroPole`] and [`crate::StateSpace`].

use crate::StateSpace;
use ams_math::{Complex64, DMat, MathError, Poly};
use std::fmt;

/// A single-input single-output continuous-time transfer function
/// `H(s) = num(s) / den(s)`.
///
/// # Example
///
/// A unity-DC-gain RC low-pass with cutoff `ω₀`:
///
/// ```
/// use ams_lti::TransferFunction;
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let w0 = 2.0 * std::f64::consts::PI * 1000.0; // 1 kHz
/// let h = TransferFunction::low_pass1(w0)?;
/// assert!((h.dc_gain()? - 1.0).abs() < 1e-12);
/// // At the cutoff the magnitude is 1/√2.
/// let mag = h.freq_response(w0).abs();
/// assert!((mag - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFunction {
    num: Poly,
    den: Poly,
}

impl TransferFunction {
    /// Creates `H(s) = num(s)/den(s)` from ascending coefficient vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if the denominator is the
    /// zero polynomial.
    pub fn new(num: Vec<f64>, den: Vec<f64>) -> Result<Self, MathError> {
        let num = Poly::new(num);
        let den = Poly::new(den);
        if den.is_zero() {
            return Err(MathError::invalid("transfer function denominator is zero"));
        }
        Ok(TransferFunction { num, den })
    }

    /// Creates a transfer function from polynomials.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if `den` is zero.
    pub fn from_polys(num: Poly, den: Poly) -> Result<Self, MathError> {
        if den.is_zero() {
            return Err(MathError::invalid("transfer function denominator is zero"));
        }
        Ok(TransferFunction { num, den })
    }

    /// A pure gain `H(s) = k`.
    pub fn gain(k: f64) -> Self {
        TransferFunction {
            num: Poly::new(vec![k]),
            den: Poly::one(),
        }
    }

    /// An integrator `H(s) = 1/s`.
    pub fn integrator() -> Self {
        TransferFunction {
            num: Poly::one(),
            den: Poly::new(vec![0.0, 1.0]),
        }
    }

    /// First-order low-pass `H(s) = ω₀ / (s + ω₀)` (unity DC gain).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] unless `w0 > 0`.
    pub fn low_pass1(w0: f64) -> Result<Self, MathError> {
        if w0 <= 0.0 || !w0.is_finite() {
            return Err(MathError::invalid("cutoff frequency must be positive"));
        }
        TransferFunction::new(vec![w0], vec![w0, 1.0])
    }

    /// First-order high-pass `H(s) = s / (s + ω₀)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] unless `w0 > 0`.
    pub fn high_pass1(w0: f64) -> Result<Self, MathError> {
        if w0 <= 0.0 || !w0.is_finite() {
            return Err(MathError::invalid("cutoff frequency must be positive"));
        }
        TransferFunction::new(vec![0.0, 1.0], vec![w0, 1.0])
    }

    /// Second-order low-pass `H(s) = ω₀² / (s² + (ω₀/Q)·s + ω₀²)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] unless `w0 > 0` and `q > 0`.
    pub fn low_pass2(w0: f64, q: f64) -> Result<Self, MathError> {
        if w0 <= 0.0 || q <= 0.0 || !w0.is_finite() || !q.is_finite() {
            return Err(MathError::invalid("w0 and q must be positive"));
        }
        TransferFunction::new(vec![w0 * w0], vec![w0 * w0, w0 / q, 1.0])
    }

    /// Second-order band-pass `H(s) = (ω₀/Q)·s / (s² + (ω₀/Q)·s + ω₀²)`
    /// (unity gain at resonance).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] unless `w0 > 0` and `q > 0`.
    pub fn band_pass2(w0: f64, q: f64) -> Result<Self, MathError> {
        if w0 <= 0.0 || q <= 0.0 || !w0.is_finite() || !q.is_finite() {
            return Err(MathError::invalid("w0 and q must be positive"));
        }
        TransferFunction::new(vec![0.0, w0 / q], vec![w0 * w0, w0 / q, 1.0])
    }

    /// Numerator polynomial.
    pub fn num(&self) -> &Poly {
        &self.num
    }

    /// Denominator polynomial.
    pub fn den(&self) -> &Poly {
        &self.den
    }

    /// Degree of the denominator (system order).
    pub fn order(&self) -> usize {
        self.den.degree()
    }

    /// Returns `true` if `deg(num) ≤ deg(den)` (realizable as state space).
    pub fn is_proper(&self) -> bool {
        self.num.degree() <= self.den.degree()
    }

    /// Returns `true` if `deg(num) < deg(den)`.
    pub fn is_strictly_proper(&self) -> bool {
        self.num.degree() < self.den.degree() || self.num.is_zero()
    }

    /// Evaluates `H(s)` at a complex frequency.
    pub fn eval(&self, s: Complex64) -> Complex64 {
        self.num.eval_complex(s) / self.den.eval_complex(s)
    }

    /// Evaluates the frequency response `H(jω)`.
    pub fn freq_response(&self, omega: f64) -> Complex64 {
        self.eval(Complex64::new(0.0, omega))
    }

    /// DC gain `H(0)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] when the system has a pole
    /// at the origin (infinite DC gain).
    pub fn dc_gain(&self) -> Result<f64, MathError> {
        let d0 = self.den.coeffs()[0];
        if d0 == 0.0 {
            return Err(MathError::invalid(
                "dc gain undefined: pole at the origin (integrating system)",
            ));
        }
        Ok(self.num.coeffs()[0] / d0)
    }

    /// The system poles (roots of the denominator).
    ///
    /// # Errors
    ///
    /// Propagates root-finding failures.
    pub fn poles(&self) -> Result<Vec<Complex64>, MathError> {
        self.den.roots()
    }

    /// The system zeros (roots of the numerator); empty for a constant
    /// numerator.
    ///
    /// # Errors
    ///
    /// Propagates root-finding failures.
    pub fn zeros(&self) -> Result<Vec<Complex64>, MathError> {
        if self.num.degree() == 0 {
            return Ok(Vec::new());
        }
        self.num.roots()
    }

    /// Returns `true` if all poles have strictly negative real parts.
    ///
    /// # Errors
    ///
    /// Propagates root-finding failures.
    pub fn is_stable(&self) -> Result<bool, MathError> {
        Ok(self.poles()?.iter().all(|p| p.re < 0.0))
    }

    /// Series (cascade) connection: `self · other`.
    pub fn series(&self, other: &TransferFunction) -> TransferFunction {
        TransferFunction {
            num: &self.num * &other.num,
            den: &self.den * &other.den,
        }
    }

    /// Parallel connection: `self + other`.
    pub fn parallel(&self, other: &TransferFunction) -> TransferFunction {
        TransferFunction {
            num: &(&self.num * &other.den) + &(&other.num * &self.den),
            den: &self.den * &other.den,
        }
    }

    /// Negative feedback loop: `self / (1 + self·other)` where `other` is
    /// in the feedback path.
    pub fn feedback(&self, other: &TransferFunction) -> TransferFunction {
        TransferFunction {
            num: &self.num * &other.den,
            den: &(&self.den * &other.den) + &(&self.num * &other.num),
        }
    }

    /// Converts to state-space form (controllable canonical form).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] for improper transfer
    /// functions (`deg(num) > deg(den)`), which have no state-space
    /// realization.
    pub fn to_state_space(&self) -> Result<StateSpace, MathError> {
        if !self.is_proper() {
            return Err(MathError::invalid(
                "improper transfer function has no state-space realization",
            ));
        }
        let n = self.den.degree();
        let dn = self.den.leading();
        // Normalize to a monic denominator.
        let den: Vec<f64> = self.den.coeffs().iter().map(|c| c / dn).collect();
        let mut num: Vec<f64> = self.num.coeffs().iter().map(|c| c / dn).collect();
        num.resize(n + 1, 0.0);
        let d_term = num[n]; // direct feedthrough when deg(num) == deg(den)

        if n == 0 {
            // Pure gain.
            return StateSpace::new(
                DMat::zeros(0, 0),
                DMat::zeros(0, 1),
                DMat::zeros(1, 0),
                DMat::from_rows(&[&[d_term]]),
            );
        }

        // Controllable canonical form.
        let mut a = DMat::zeros(n, n);
        for i in 0..n - 1 {
            a[(i, i + 1)] = 1.0;
        }
        for j in 0..n {
            a[(n - 1, j)] = -den[j];
        }
        let mut b = DMat::zeros(n, 1);
        b[(n - 1, 0)] = 1.0;
        let mut c = DMat::zeros(1, n);
        for j in 0..n {
            // cᵢ = numᵢ − denᵢ·d (strictly proper part).
            c[(0, j)] = num[j] - den[j] * d_term;
        }
        let d = DMat::from_rows(&[&[d_term]]);
        StateSpace::new(a, b, c, d)
    }
}

impl fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn zero_denominator_rejected() {
        assert!(TransferFunction::new(vec![1.0], vec![0.0]).is_err());
    }

    #[test]
    fn low_pass_response_shape() {
        let w0 = 100.0;
        let h = TransferFunction::low_pass1(w0).unwrap();
        assert!((h.freq_response(0.0).abs() - 1.0).abs() < 1e-12);
        assert!((h.freq_response(w0).abs() - FRAC_1_SQRT_2).abs() < 1e-12);
        // -20 dB/decade: at 10·ω₀ the magnitude is ≈ 0.0995.
        let m = h.freq_response(10.0 * w0).abs();
        assert!((m - 0.0995).abs() < 1e-3);
    }

    #[test]
    fn high_pass_blocks_dc() {
        let h = TransferFunction::high_pass1(100.0).unwrap();
        assert_eq!(h.freq_response(0.0).abs(), 0.0);
        assert!((h.freq_response(1e6).abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn band_pass_peaks_at_resonance() {
        let h = TransferFunction::band_pass2(1000.0, 5.0).unwrap();
        assert!((h.freq_response(1000.0).abs() - 1.0).abs() < 1e-9);
        assert!(h.freq_response(100.0).abs() < 0.3);
        assert!(h.freq_response(10000.0).abs() < 0.3);
    }

    #[test]
    fn resonant_poles() {
        let h = TransferFunction::low_pass2(10.0, 10.0).unwrap();
        let poles = h.poles().unwrap();
        assert_eq!(poles.len(), 2);
        for p in poles {
            assert!(p.re < 0.0);
            assert!((p.abs() - 10.0).abs() < 1e-6, "pole magnitude = ω₀");
        }
        assert!(h.is_stable().unwrap());
    }

    #[test]
    fn unstable_system_detected() {
        // H(s) = 1/(s - 1): pole at +1.
        let h = TransferFunction::new(vec![1.0], vec![-1.0, 1.0]).unwrap();
        assert!(!h.is_stable().unwrap());
    }

    #[test]
    fn integrator_has_no_dc_gain() {
        assert!(TransferFunction::integrator().dc_gain().is_err());
    }

    #[test]
    fn series_parallel_feedback_algebra() {
        let a = TransferFunction::gain(2.0);
        let b = TransferFunction::gain(3.0);
        assert!((a.series(&b).dc_gain().unwrap() - 6.0).abs() < 1e-12);
        assert!((a.parallel(&b).dc_gain().unwrap() - 5.0).abs() < 1e-12);
        // 2 / (1 + 2·3) = 2/7
        assert!((a.feedback(&b).dc_gain().unwrap() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn feedback_closes_integrator_loop() {
        // 1/s with unity feedback → 1/(s+1).
        let h = TransferFunction::integrator().feedback(&TransferFunction::gain(1.0));
        let expect = TransferFunction::new(vec![1.0], vec![1.0, 1.0]).unwrap();
        for w in [0.1, 1.0, 10.0] {
            assert!((h.freq_response(w) - expect.freq_response(w)).abs() < 1e-12);
        }
    }

    #[test]
    fn state_space_roundtrip_frequency_response() {
        let h = TransferFunction::new(vec![2.0, 1.0], vec![4.0, 3.0, 1.0]).unwrap();
        let ss = h.to_state_space().unwrap();
        for w in [0.0, 0.5, 1.0, 5.0, 50.0] {
            let a = h.freq_response(w);
            let b = ss.freq_response(w).unwrap()[(0, 0)];
            assert!((a - b).abs() < 1e-9, "mismatch at ω={w}: {a} vs {b}");
        }
    }

    #[test]
    fn biproper_tf_has_feedthrough() {
        // H(s) = (s+2)/(s+1): D = 1, C·(sI−A)⁻¹·B strictly proper part.
        let h = TransferFunction::new(vec![2.0, 1.0], vec![1.0, 1.0]).unwrap();
        let ss = h.to_state_space().unwrap();
        assert_eq!(ss.d()[(0, 0)], 1.0);
        let a = h.freq_response(3.0);
        let b = ss.freq_response(3.0).unwrap()[(0, 0)];
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn improper_tf_rejected_for_state_space() {
        // H(s) = s (differentiator) is improper.
        let h = TransferFunction::new(vec![0.0, 1.0], vec![1.0]).unwrap();
        assert!(!h.is_proper());
        assert!(h.to_state_space().is_err());
    }

    #[test]
    fn pure_gain_state_space() {
        let h = TransferFunction::gain(4.0);
        let ss = h.to_state_space().unwrap();
        assert_eq!(ss.order(), 0);
        let r = ss.freq_response(123.0).unwrap();
        assert!((r[(0, 0)].re - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let h = TransferFunction::new(vec![1.0], vec![1.0, 1.0]).unwrap();
        assert_eq!(h.to_string(), "(1) / (1·x + 1)");
    }
}
