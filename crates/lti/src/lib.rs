//! Linear time-invariant continuous-time models and solvers.
//!
//! Phase 1 of the paper's development plan requires a "linear dynamic
//! continuous-time model of computation (MoC), including transient,
//! small-signal AC … simulation" with "predefined linear operators
//! (Laplace transfer function, zero-pole transfer function, state-space
//! equations)". This crate provides exactly those three operator forms,
//! conversions between them, and the machinery to execute them:
//!
//! * [`TransferFunction`] — `H(s) = N(s)/D(s)` with poles/zeros/stability
//!   analysis and block algebra (series/parallel/feedback);
//! * [`ZeroPole`] — zero-pole-gain form plus a Butterworth designer;
//! * [`StateSpace`] — MIMO `ẋ = Ax + Bu, y = Cx + Du` with frequency
//!   response and characteristic-polynomial pole extraction;
//! * [`discretize`]/[`expm`] — backward-Euler, bilinear and exact ZOH
//!   discretization (scaling-and-squaring matrix exponential);
//! * [`LtiSolver`] — the fixed-step stepper embedded in TDF modules
//!   ("linear ODE systems … solved using a fixed integration time step
//!   that can be synchronized with the rate at which samples are handled
//!   by the SDF model", §3);
//! * [`FreqResponse`] — Bode sweeps of any `ω → H(jω)` map.
//!
//! # Example
//!
//! ```
//! use ams_lti::{Discretization, LtiSolver, TransferFunction};
//!
//! # fn main() -> Result<(), ams_math::MathError> {
//! let filter = TransferFunction::low_pass2(2.0 * std::f64::consts::PI * 50.0, 0.707)?;
//! assert!(filter.is_stable()?);
//! let mut solver = LtiSolver::from_transfer_function(&filter, 1e-5, Discretization::Zoh)?;
//! let y = solver.step(&[1.0])[0];
//! assert!(y.abs() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod discretize;
mod freq;
mod solver;
mod state_space;
mod transfer_function;
mod zero_pole;

pub use discretize::{discretize, expm, DiscreteSystem, Discretization};
pub use freq::{lin_space, log_space, FreqResponse};
pub use solver::LtiSolver;
pub use state_space::StateSpace;
pub use transfer_function::TransferFunction;
pub use zero_pole::ZeroPole;
