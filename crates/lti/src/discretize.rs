//! Discretization of continuous state-space models for fixed-step
//! execution.
//!
//! Phase 1 of the paper requires "time-domain simulation with a fixed
//! timestep" where "the resulting system of equations can be solved
//! without iterations" for linear models. Discretizing `ẋ = A·x + B·u`
//! once per timestep change turns every step into a single matrix-vector
//! product — no Newton iterations, exactly the dedicated linear path the
//! paper (and seed work \[6\]) describes.

use crate::StateSpace;
use ams_math::{DMat, Lu, MathError};

/// The discretization rules available for [`discretize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Discretization {
    /// Backward Euler: `x⁺ = (I − hA)⁻¹(x + hB·u⁺)`. L-stable, first
    /// order; heavily damps high-frequency modes.
    BackwardEuler,
    /// Bilinear (Tustin / trapezoidal): second order, maps the jω axis
    /// onto the unit circle; the default for signal-processing work.
    #[default]
    Bilinear,
    /// Zero-order hold: exact for piecewise-constant inputs; uses the
    /// matrix exponential.
    Zoh,
}

/// A discrete-time update `x⁺ = F·x + G·u` with output
/// `y = C·x + D·u` evaluated on the *new* state and input.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSystem {
    /// State update matrix `F`.
    pub f: DMat<f64>,
    /// Input matrix `G`.
    pub g: DMat<f64>,
    /// Output matrix (carried over from the continuous model).
    pub c: DMat<f64>,
    /// Feedthrough matrix (carried over).
    pub d: DMat<f64>,
    /// The step size the matrices were computed for.
    pub h: f64,
    /// The rule used.
    pub method: Discretization,
}

/// Matrix exponential `e^A` by scaling-and-squaring with a Padé(6)
/// approximant.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] for non-square input and
/// propagates factorization failures (cannot occur for the diagonally
/// dominant Padé denominator after scaling).
///
/// # Example
///
/// ```
/// use ams_lti::expm;
/// use ams_math::DMat;
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let a = DMat::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]); // rotation generator
/// let e = expm(&a.scale(std::f64::consts::PI))?; // rotate by π
/// assert!((e[(0, 0)] + 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &DMat<f64>) -> Result<DMat<f64>, MathError> {
    if !a.is_square() {
        return Err(MathError::dims(
            "square matrix",
            format!("{}x{}", a.rows(), a.cols()),
        ));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(DMat::zeros(0, 0));
    }
    // Scale so ‖A/2ˢ‖∞ ≤ 0.5.
    let norm = a.norm_inf();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(1.0 / f64::powi(2.0, s as i32));

    // Padé(6): N = Σ cₖ Aᵏ, D = Σ (−1)ᵏ cₖ Aᵏ with
    // cₖ = (2q−k)!·q! / ((2q)!·k!·(q−k)!), q = 6.
    const Q: usize = 6;
    let mut c = [1.0; Q + 1];
    for k in 1..=Q {
        c[k] = c[k - 1] * (Q + 1 - k) as f64 / ((2 * Q + 1 - k) as f64 * k as f64);
    }
    let eye: DMat<f64> = DMat::identity(n);
    let mut num = eye.scale(c[0]);
    let mut den = eye.scale(c[0]);
    let mut pow = eye.clone();
    for (k, &ck) in c.iter().enumerate().skip(1) {
        pow = pow.mul_mat(&scaled)?;
        num = &num + &pow.scale(ck);
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        den = &den + &pow.scale(sign * ck);
    }
    let lu = Lu::factor(&den)?;
    let mut e = lu.solve_mat(&num)?;
    // Undo the scaling by repeated squaring.
    for _ in 0..s {
        e = e.mul_mat(&e)?;
    }
    Ok(e)
}

/// Discretizes a continuous model with step `h` using the given rule.
///
/// # Errors
///
/// * [`MathError::InvalidArgument`] if `h` is not positive and finite.
/// * [`MathError::SingularMatrix`] if `(I − hA)` (or the bilinear
///   equivalent) is singular — i.e. `1/h` (or `2/h`) hits an eigenvalue of
///   `A`, which cannot happen for stable systems with `h > 0`.
pub fn discretize(
    ss: &StateSpace,
    h: f64,
    method: Discretization,
) -> Result<DiscreteSystem, MathError> {
    if h <= 0.0 || !h.is_finite() {
        return Err(MathError::invalid("step size must be positive and finite"));
    }
    let n = ss.order();
    let a = ss.a();
    let b = ss.b();
    let eye: DMat<f64> = DMat::identity(n);

    let (f, g) = match method {
        Discretization::BackwardEuler => {
            // (I − hA)·x⁺ = x + hB·u⁺
            let m = &eye - &a.scale(h);
            let lu = Lu::factor(&m)?;
            let f = lu.solve_mat(&eye)?;
            let g = lu.solve_mat(&b.scale(h))?;
            (f, g)
        }
        Discretization::Bilinear => {
            // (I − hA/2)·x⁺ = (I + hA/2)·x + hB·(u + u⁺)/2.
            // With the input averaged, fold into G applied to u⁺ and use a
            // modified state so the update keeps the x⁺ = F·x + G·u form:
            // classical Tustin with input held at u⁺ for the G term is a
            // second-order-accurate simplification for slowly varying u;
            // we implement the exact trapezoidal update for u constant
            // over the step (u⁺):
            let m = &eye - &a.scale(h / 2.0);
            let lu = Lu::factor(&m)?;
            let f = lu.solve_mat(&(&eye + &a.scale(h / 2.0)))?;
            let g = lu.solve_mat(&b.scale(h))?;
            (f, g)
        }
        Discretization::Zoh => {
            // Exact: augment [[A, B], [0, 0]], exponentiate, read blocks.
            let m = ss.inputs();
            let mut aug = DMat::zeros(n + m, n + m);
            for i in 0..n {
                for j in 0..n {
                    aug[(i, j)] = a[(i, j)] * h;
                }
                for j in 0..m {
                    aug[(i, n + j)] = b[(i, j)] * h;
                }
            }
            let e = expm(&aug)?;
            let mut f = DMat::zeros(n, n);
            let mut g = DMat::zeros(n, m);
            for i in 0..n {
                for j in 0..n {
                    f[(i, j)] = e[(i, j)];
                }
                for j in 0..m {
                    g[(i, j)] = e[(i, n + j)];
                }
            }
            (f, g)
        }
    };

    Ok(DiscreteSystem {
        f,
        g,
        c: ss.c().clone(),
        d: ss.d().clone(),
        h,
        method,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_math::DMat;

    fn rc(tau: f64) -> StateSpace {
        StateSpace::new(
            DMat::from_rows(&[&[-1.0 / tau]]),
            DMat::from_rows(&[&[1.0 / tau]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[0.0]]),
        )
        .unwrap()
    }

    #[test]
    fn expm_identity_and_zero() {
        let z: DMat<f64> = DMat::zeros(3, 3);
        let e = expm(&z).unwrap();
        assert!((&e - &DMat::identity(3)).norm_inf() < 1e-14);
    }

    #[test]
    fn expm_scalar_matches_exp() {
        for &x in &[-3.0, -0.1, 0.0, 0.7, 4.2] {
            let a = DMat::from_rows(&[&[x]]);
            let e = expm(&a).unwrap();
            assert!((e[(0, 0)] - x.exp()).abs() < 1e-10 * x.exp().max(1.0));
        }
    }

    #[test]
    fn expm_rotation() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]);
        let theta = 0.73;
        let e = expm(&a.scale(theta)).unwrap();
        assert!((e[(0, 0)] - theta.cos()).abs() < 1e-12);
        assert!((e[(0, 1)] - theta.sin()).abs() < 1e-12);
        assert!((e[(1, 0)] + theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn expm_nonsquare_rejected() {
        let a: DMat<f64> = DMat::zeros(2, 3);
        assert!(expm(&a).is_err());
    }

    #[allow(clippy::needless_range_loop)]
    fn simulate(d: &DiscreteSystem, steps: usize, u: f64) -> f64 {
        let n = d.f.rows();
        let mut x = vec![0.0; n];
        for _ in 0..steps {
            let mut xn = vec![0.0; n];
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += d.f[(i, j)] * x[j];
                }
                acc += d.g[(i, 0)] * u;
                xn[i] = acc;
            }
            x = xn;
        }
        // y = C x + D u
        let mut y = d.d[(0, 0)] * u;
        for j in 0..n {
            y += d.c[(0, j)] * x[j];
        }
        y
    }

    #[test]
    fn step_response_accuracy_by_method() {
        // RC with τ = 1, step input; exact y(T) = 1 − e^{−T} at T = 1.
        let ss = rc(1.0);
        let h = 0.01;
        let steps = 100;
        let exact = 1.0 - (-1.0f64).exp();
        for (method, tol) in [
            (Discretization::BackwardEuler, 5e-3),
            (Discretization::Bilinear, 1e-5),
            (Discretization::Zoh, 1e-12),
        ] {
            let d = discretize(&ss, h, method).unwrap();
            let y = simulate(&d, steps, 1.0);
            assert!(
                (y - exact).abs() < tol,
                "{method:?}: y = {y}, exact = {exact}"
            );
        }
    }

    #[test]
    fn zoh_is_exact_for_constant_input() {
        let ss = rc(0.5);
        // Even with a huge step, ZOH lands exactly on the analytic value.
        let d = discretize(&ss, 2.0, Discretization::Zoh).unwrap();
        let y = simulate(&d, 1, 1.0);
        let exact = 1.0 - (-2.0f64 / 0.5).exp();
        assert!((y - exact).abs() < 1e-12);
    }

    #[test]
    fn backward_euler_is_stable_with_large_steps() {
        // Stiff: τ = 1e-6, step 1.0 (h/τ = 1e6). BE must not blow up.
        let ss = rc(1e-6);
        let d = discretize(&ss, 1.0, Discretization::BackwardEuler).unwrap();
        let y = simulate(&d, 10, 1.0);
        assert!((y - 1.0).abs() < 1e-5, "y = {y}");
    }

    #[test]
    fn invalid_step_rejected() {
        let ss = rc(1.0);
        assert!(discretize(&ss, 0.0, Discretization::Bilinear).is_err());
        assert!(discretize(&ss, f64::NAN, Discretization::Zoh).is_err());
    }

    #[test]
    fn order_zero_system() {
        let ss = StateSpace::new(
            DMat::zeros(0, 0),
            DMat::zeros(0, 1),
            DMat::zeros(1, 0),
            DMat::from_rows(&[&[2.5]]),
        )
        .unwrap();
        let d = discretize(&ss, 0.1, Discretization::Zoh).unwrap();
        assert_eq!(simulate(&d, 3, 2.0), 5.0);
    }
}
