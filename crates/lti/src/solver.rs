//! The fixed-step LTI time-domain solver.
//!
//! [`LtiSolver`] wraps a discretized state-space model so a TDF module can
//! advance its embedded continuous dynamics by exactly one sample period
//! per `processing()` call — the paper's phase-1 execution model
//! ("continuous behaviour encapsulated in static dataflow modules",
//! fixed-timestep integration "synchronized with the rate at which samples
//! are handled by the SDF model").

use crate::{discretize, DiscreteSystem, Discretization, StateSpace};
use ams_math::MathError;

/// A stepping solver for one linear time-invariant block.
///
/// # Example
///
/// A unity-gain RC low-pass driven by a unit step:
///
/// ```
/// use ams_lti::{Discretization, LtiSolver, TransferFunction};
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let tf = TransferFunction::low_pass1(1.0)?; // τ = 1 s
/// let mut solver = LtiSolver::from_transfer_function(&tf, 0.001, Discretization::Zoh)?;
/// let mut y = 0.0;
/// for _ in 0..1000 {
///     y = solver.step(&[1.0])[0]; // 1 simulated second
/// }
/// assert!((y - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LtiSolver {
    ss: StateSpace,
    disc: DiscreteSystem,
    x: Vec<f64>,
    y: Vec<f64>,
    steps_taken: u64,
}

impl LtiSolver {
    /// Creates a solver for a state-space model with step `h`.
    ///
    /// # Errors
    ///
    /// Propagates discretization failures (invalid step, singular
    /// implicit matrix).
    pub fn new(ss: StateSpace, h: f64, method: Discretization) -> Result<Self, MathError> {
        let disc = discretize(&ss, h, method)?;
        let n = ss.order();
        let p = ss.outputs();
        Ok(LtiSolver {
            ss,
            disc,
            x: vec![0.0; n],
            y: vec![0.0; p],
            steps_taken: 0,
        })
    }

    /// Creates a solver from a SISO transfer function.
    ///
    /// # Errors
    ///
    /// Propagates conversion (improper transfer function) and
    /// discretization failures.
    pub fn from_transfer_function(
        tf: &crate::TransferFunction,
        h: f64,
        method: Discretization,
    ) -> Result<Self, MathError> {
        LtiSolver::new(tf.to_state_space()?, h, method)
    }

    /// The underlying continuous model.
    pub fn state_space(&self) -> &StateSpace {
        &self.ss
    }

    /// The current step size.
    pub fn step_size(&self) -> f64 {
        self.disc.h
    }

    /// The discretization rule in use.
    pub fn method(&self) -> Discretization {
        self.disc.method
    }

    /// Number of steps taken since creation or the last reset.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Current state vector.
    pub fn state(&self) -> &[f64] {
        &self.x
    }

    /// Overwrites the state (e.g. to apply a DC operating point before
    /// transient simulation — the paper's "consistent initial state").
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the model order.
    pub fn set_state(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.x.len(), "state length mismatch");
        self.x.copy_from_slice(x);
    }

    /// Re-discretizes for a new step size, preserving the state.
    ///
    /// # Errors
    ///
    /// Propagates discretization failures.
    pub fn set_step_size(&mut self, h: f64) -> Result<(), MathError> {
        self.disc = discretize(&self.ss, h, self.disc.method)?;
        Ok(())
    }

    /// Initializes the state to the DC equilibrium for a constant input
    /// `u` (solves `A·x = −B·u`), so transient simulation starts from the
    /// quiescent point.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::SingularMatrix`] for systems with poles at the
    /// origin (no unique equilibrium).
    pub fn initialize_dc(&mut self, u: &[f64]) -> Result<(), MathError> {
        let n = self.ss.order();
        if n == 0 {
            return Ok(());
        }
        let lu = ams_math::Lu::factor(self.ss.a())?;
        // rhs = -B·u
        let mut rhs = ams_math::DVec::zeros(n);
        for i in 0..n {
            let mut acc = 0.0;
            for (j, &uj) in u.iter().enumerate() {
                acc += self.ss.b()[(i, j)] * uj;
            }
            rhs[i] = -acc;
        }
        let x = lu.solve(&rhs)?;
        self.x.copy_from_slice(x.as_slice());
        Ok(())
    }

    /// Advances the model one step with input `u` (held for the step) and
    /// returns the outputs at the new time.
    ///
    /// # Panics
    ///
    /// Panics if `u.len()` differs from the model's input count.
    #[allow(clippy::needless_range_loop)]
    pub fn step(&mut self, u: &[f64]) -> &[f64] {
        let n = self.x.len();
        let m = self.ss.inputs();
        assert_eq!(u.len(), m, "input length mismatch");
        let mut xn = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += self.disc.f[(i, j)] * self.x[j];
            }
            for j in 0..m {
                acc += self.disc.g[(i, j)] * u[j];
            }
            xn[i] = acc;
        }
        self.x = xn;
        // y = C·x⁺ + D·u
        for i in 0..self.y.len() {
            let mut acc = 0.0;
            for j in 0..n {
                acc += self.disc.c[(i, j)] * self.x[j];
            }
            for j in 0..m {
                acc += self.disc.d[(i, j)] * u[j];
            }
            self.y[i] = acc;
        }
        self.steps_taken += 1;
        &self.y
    }

    /// Resets state and step counter to zero.
    pub fn reset(&mut self) {
        self.x.iter_mut().for_each(|v| *v = 0.0);
        self.y.iter_mut().for_each(|v| *v = 0.0);
        self.steps_taken = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransferFunction;

    #[test]
    fn rc_step_response() {
        let tf = TransferFunction::low_pass1(10.0).unwrap();
        let mut s = LtiSolver::from_transfer_function(&tf, 1e-4, Discretization::Bilinear).unwrap();
        let mut y = 0.0;
        for _ in 0..10_000 {
            y = s.step(&[1.0])[0]; // 1 s total, τ = 0.1 s
        }
        assert!((y - 1.0).abs() < 1e-4);
        assert_eq!(s.steps_taken(), 10_000);
    }

    #[test]
    fn resonator_rings_at_natural_frequency() {
        // Underdamped 2nd order (ω₀ = 2π·10 Hz, Q = 20), impulse-ish kick.
        let w0 = 2.0 * std::f64::consts::PI * 10.0;
        let tf = TransferFunction::low_pass2(w0, 20.0).unwrap();
        let h = 1e-4;
        let mut s = LtiSolver::from_transfer_function(&tf, h, Discretization::Zoh).unwrap();
        // Drive with a short pulse then observe zero crossings.
        let mut samples = Vec::new();
        for k in 0..20_000 {
            let u = if k < 10 { 100.0 } else { 0.0 };
            samples.push(s.step(&[u])[0]);
        }
        // Count zero crossings in the free-ringing tail → frequency.
        let tail = &samples[1000..];
        let crossings = tail
            .windows(2)
            .filter(|w| w[0] < 0.0 && w[1] >= 0.0)
            .count();
        let duration = tail.len() as f64 * h;
        let freq = crossings as f64 / duration;
        assert!((freq - 10.0).abs() < 0.5, "ring frequency {freq} Hz");
    }

    #[test]
    fn dc_initialization_removes_startup_transient() {
        let tf = TransferFunction::low_pass1(100.0).unwrap();
        let mut s = LtiSolver::from_transfer_function(&tf, 1e-5, Discretization::Bilinear).unwrap();
        s.initialize_dc(&[2.0]).unwrap();
        // Already at equilibrium: output stays at 2.0 from the first step.
        for _ in 0..100 {
            let y = s.step(&[2.0])[0];
            assert!((y - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn set_step_size_preserves_state() {
        let tf = TransferFunction::low_pass1(1.0).unwrap();
        let mut s = LtiSolver::from_transfer_function(&tf, 1e-3, Discretization::Bilinear).unwrap();
        for _ in 0..500 {
            s.step(&[1.0]);
        }
        let x_before = s.state().to_vec();
        s.set_step_size(1e-4).unwrap();
        assert_eq!(s.state(), x_before.as_slice());
        assert_eq!(s.step_size(), 1e-4);
    }

    #[test]
    fn reset_zeroes_everything() {
        let tf = TransferFunction::low_pass1(1.0).unwrap();
        let mut s = LtiSolver::from_transfer_function(&tf, 0.01, Discretization::Zoh).unwrap();
        s.step(&[5.0]);
        s.reset();
        assert_eq!(s.state(), &[0.0]);
        assert_eq!(s.steps_taken(), 0);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        let tf = TransferFunction::low_pass1(1.0).unwrap();
        let mut s = LtiSolver::from_transfer_function(&tf, 0.01, Discretization::Zoh).unwrap();
        let _ = s.step(&[1.0, 2.0]);
    }
}
