//! Frequency-response sweeps (Bode data).
//!
//! "The frequency-domain model can be derived from the time-domain
//! description" (paper §3, O3): these helpers sweep any function
//! `ω → H(jω)` — from transfer functions, state-space models, TDF graph
//! AC analysis or netlist AC analysis — into magnitude/phase tables.

use ams_math::{Complex64, MathError};

/// Generates `n` logarithmically spaced values between `start` and `stop`
/// (inclusive).
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] unless `0 < start < stop` and
/// `n ≥ 2`.
pub fn log_space(start: f64, stop: f64, n: usize) -> Result<Vec<f64>, MathError> {
    if !(start > 0.0 && stop > start) {
        return Err(MathError::invalid("need 0 < start < stop for log spacing"));
    }
    if n < 2 {
        return Err(MathError::invalid("need at least 2 points"));
    }
    let l0 = start.log10();
    let l1 = stop.log10();
    Ok((0..n)
        .map(|i| 10f64.powf(l0 + (l1 - l0) * i as f64 / (n - 1) as f64))
        .collect())
}

/// Generates `n` linearly spaced values between `start` and `stop`
/// (inclusive).
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] unless `n ≥ 2` and
/// `stop > start`.
pub fn lin_space(start: f64, stop: f64, n: usize) -> Result<Vec<f64>, MathError> {
    if n < 2 {
        return Err(MathError::invalid("need at least 2 points"));
    }
    if stop <= start {
        return Err(MathError::invalid("need stop > start"));
    }
    let step = (stop - start) / (n - 1) as f64;
    Ok((0..n).map(|i| start + i as f64 * step).collect())
}

/// A sampled frequency response: frequencies (Hz) with complex values.
///
/// # Example
///
/// ```
/// use ams_lti::{FreqResponse, TransferFunction};
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let tf = TransferFunction::low_pass1(2.0 * std::f64::consts::PI * 1e3)?;
/// let resp = FreqResponse::sweep(10.0, 1e6, 101, |w| tf.freq_response(w))?;
/// // Find the -3 dB frequency: close to 1 kHz.
/// let f3 = resp.crossing_frequency(-3.0103).expect("has a -3 dB point");
/// assert!((f3 - 1e3).abs() / 1e3 < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FreqResponse {
    freqs_hz: Vec<f64>,
    values: Vec<Complex64>,
}

impl FreqResponse {
    /// Sweeps `eval` (a function of angular frequency ω in rad/s) over a
    /// logarithmic grid of `n` frequencies between `f_start` and `f_stop`
    /// in Hz.
    ///
    /// # Errors
    ///
    /// Propagates grid-construction errors.
    pub fn sweep(
        f_start: f64,
        f_stop: f64,
        n: usize,
        mut eval: impl FnMut(f64) -> Complex64,
    ) -> Result<Self, MathError> {
        let freqs_hz = log_space(f_start, f_stop, n)?;
        let values = freqs_hz
            .iter()
            .map(|&f| eval(2.0 * std::f64::consts::PI * f))
            .collect();
        Ok(FreqResponse { freqs_hz, values })
    }

    /// Builds a response from parallel vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] on length mismatch.
    pub fn from_points(freqs_hz: Vec<f64>, values: Vec<Complex64>) -> Result<Self, MathError> {
        if freqs_hz.len() != values.len() {
            return Err(MathError::invalid("frequency/value length mismatch"));
        }
        Ok(FreqResponse { freqs_hz, values })
    }

    /// The frequency grid in Hz.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// The complex response values.
    pub fn values(&self) -> &[Complex64] {
        &self.values
    }

    /// Magnitudes in dB (`20·log10|H|`).
    pub fn mag_db(&self) -> Vec<f64> {
        self.values.iter().map(|v| 20.0 * v.abs().log10()).collect()
    }

    /// Phases in degrees, unwrapped so adjacent points never jump by more
    /// than 180°.
    pub fn phase_deg(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.values.len());
        let mut offset = 0.0;
        let mut prev = None;
        for v in &self.values {
            let mut ph = v.arg().to_degrees();
            if let Some(p) = prev {
                while ph + offset - p > 180.0 {
                    offset -= 360.0;
                }
                while ph + offset - p < -180.0 {
                    offset += 360.0;
                }
            }
            ph += offset;
            prev = Some(ph);
            out.push(ph);
        }
        out
    }

    /// The first frequency (Hz) where the magnitude crosses `level_db`
    /// going downward, linearly interpolated in log-frequency.
    pub fn crossing_frequency(&self, level_db: f64) -> Option<f64> {
        let mags = self.mag_db();
        for i in 1..mags.len() {
            if mags[i - 1] >= level_db && mags[i] < level_db {
                let t = (level_db - mags[i - 1]) / (mags[i] - mags[i - 1]);
                let lf = self.freqs_hz[i - 1].log10()
                    + t * (self.freqs_hz[i].log10() - self.freqs_hz[i - 1].log10());
                return Some(10f64.powf(lf));
            }
        }
        None
    }

    /// Peak magnitude in dB and the frequency (Hz) where it occurs.
    pub fn peak(&self) -> Option<(f64, f64)> {
        let mags = self.mag_db();
        let (idx, &db) = mags.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        Some((self.freqs_hz[idx], db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransferFunction;

    #[test]
    fn log_space_endpoints_and_ratio() {
        let g = log_space(1.0, 1000.0, 4).unwrap();
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[3] - 1000.0).abs() < 1e-9);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!(log_space(0.0, 1.0, 4).is_err());
        assert!(log_space(10.0, 1.0, 4).is_err());
        assert!(log_space(1.0, 10.0, 1).is_err());
    }

    #[test]
    fn lin_space_basics() {
        assert_eq!(lin_space(0.0, 1.0, 3).unwrap(), vec![0.0, 0.5, 1.0]);
        assert!(lin_space(1.0, 1.0, 3).is_err());
    }

    #[test]
    fn bode_of_low_pass() {
        let w0 = 2.0 * std::f64::consts::PI * 100.0;
        let tf = TransferFunction::low_pass1(w0).unwrap();
        let r = FreqResponse::sweep(1.0, 1e5, 201, |w| tf.freq_response(w)).unwrap();
        let mags = r.mag_db();
        // DC ≈ 0 dB.
        assert!(mags[0].abs() < 0.01);
        // Far above cutoff: slope −20 dB/dec.
        let f3 = r.crossing_frequency(-3.0103).unwrap();
        assert!((f3 - 100.0).abs() < 2.0, "-3 dB at {f3} Hz");
        // Phase goes 0 → −90°.
        let ph = r.phase_deg();
        assert!(ph[0].abs() < 1.0);
        assert!((ph.last().unwrap() + 90.0).abs() < 1.0);
    }

    #[test]
    fn resonant_peak_detected() {
        let w0 = 2.0 * std::f64::consts::PI * 1000.0;
        let q = 10.0;
        let tf = TransferFunction::low_pass2(w0, q).unwrap();
        let r = FreqResponse::sweep(10.0, 1e5, 401, |w| tf.freq_response(w)).unwrap();
        let (f_peak, db_peak) = r.peak().unwrap();
        assert!((f_peak - 1000.0).abs() / 1000.0 < 0.05, "peak at {f_peak}");
        // Peak of a Q=10 biquad ≈ 20·log10(Q) = 20 dB.
        assert!((db_peak - 20.0).abs() < 0.5, "peak {db_peak} dB");
    }

    #[test]
    fn phase_unwrap_monotone_for_double_pole() {
        let tf = TransferFunction::new(vec![1.0], vec![1.0, 2.0, 1.0]).unwrap(); // (s+1)²
        let r = FreqResponse::sweep(0.001, 1e4, 301, |w| tf.freq_response(w)).unwrap();
        let ph = r.phase_deg();
        // Ends near −180° without wrapping to +180.
        assert!(
            (ph.last().unwrap() + 180.0).abs() < 2.0,
            "{}",
            ph.last().unwrap()
        );
        assert!(ph.windows(2).all(|w| w[1] <= w[0] + 1e-9), "monotone");
    }

    #[test]
    fn from_points_validates_lengths() {
        assert!(FreqResponse::from_points(vec![1.0], vec![]).is_err());
    }
}
