//! Property-based parity tests: the sparse path (`Triplets` →
//! [`CsrMat`] → [`SparseLu`]) must agree with the dense reference
//! (`DMat` → [`Lu`]) on assembly, matrix–vector products, solves and
//! singularity detection, over randomized diagonally dominant systems.

use ams_math::{CsrMat, DMat, DVec, Lu, MathError, SparseLu, Triplets};
use proptest::prelude::*;

const N_MAX: usize = 16;

/// Builds the dense and sparse assemblies of the same randomized system
/// of `n` unknowns. Raw coordinates are reduced modulo `n`; duplicates
/// are intended (MNA stamping sums them). The diagonal is set to (row
/// absolute sum) + margin after the off-diagonal stamps, making the
/// matrix strictly diagonally dominant and therefore nonsingular.
fn assemble(n: usize, off: &[(usize, usize, f64)], margin: &[f64]) -> (DMat<f64>, CsrMat<f64>) {
    let mut dense = DMat::<f64>::zeros(n, n);
    let mut trip = Triplets::new(n, n);
    for &(i, j, v) in off {
        let (i, j) = (i % n, j % n);
        if i != j {
            dense[(i, j)] += v;
            trip.push(i, j, v);
        }
    }
    for i in 0..n {
        let row_sum: f64 = (0..n)
            .filter(|&j| j != i)
            .map(|j| dense[(i, j)].abs())
            .sum();
        let d = row_sum + margin[i];
        dense[(i, i)] += d;
        trip.push(i, i, d);
    }
    (dense, trip.build())
}

proptest! {
    #[test]
    fn csr_round_trips_through_dense(
        n in 2usize..N_MAX,
        off in proptest::collection::vec((0usize..N_MAX, 0usize..N_MAX, -5.0f64..5.0), 0..4 * N_MAX),
        margin in proptest::collection::vec(0.5f64..4.0, N_MAX),
    ) {
        let (dense, csr) = assemble(n, &off, &margin);
        // Triplet assembly ≡ dense assembly. Duplicate coordinates may be
        // summed in a different order than the dense `+=` loop, so allow
        // rounding at the last ulp instead of demanding bitwise equality.
        let expanded = csr.to_dense();
        for (a, b) in expanded.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()), "{} vs {}", a, b);
        }
        // Dense → CSR → dense round-trip.
        let back = CsrMat::from_dense(&dense).to_dense();
        prop_assert_eq!(back.as_slice(), dense.as_slice());
    }

    #[test]
    fn sparse_mat_vec_matches_dense(
        n in 2usize..N_MAX,
        off in proptest::collection::vec((0usize..N_MAX, 0usize..N_MAX, -5.0f64..5.0), 0..4 * N_MAX),
        margin in proptest::collection::vec(0.5f64..4.0, N_MAX),
        b in proptest::collection::vec(-10.0f64..10.0, N_MAX),
    ) {
        let (dense, csr) = assemble(n, &off, &margin);
        let x = DVec::from(b[..n].to_vec());
        let yd = dense.mul_vec(&x).unwrap();
        let ys = csr.mul_vec(&x).unwrap();
        for i in 0..n {
            prop_assert!((yd[i] - ys[i]).abs() <= 1e-10 * (1.0 + yd[i].abs()));
        }
    }

    #[test]
    fn sparse_solve_matches_dense_lu(
        n in 2usize..N_MAX,
        off in proptest::collection::vec((0usize..N_MAX, 0usize..N_MAX, -5.0f64..5.0), 0..4 * N_MAX),
        margin in proptest::collection::vec(0.5f64..4.0, N_MAX),
        b in proptest::collection::vec(-10.0f64..10.0, N_MAX),
    ) {
        let (dense, csr) = assemble(n, &off, &margin);
        let rhs = DVec::from(b[..n].to_vec());
        let xd = Lu::factor(&dense).unwrap().solve(&rhs).unwrap();
        let xs = SparseLu::factor(&csr).unwrap().solve(&rhs).unwrap();
        for i in 0..n {
            prop_assert!(
                (xd[i] - xs[i]).abs() <= 1e-10 * (1.0 + xd[i].abs()),
                "row {}: dense {} vs sparse {}", i, xd[i], xs[i]
            );
        }
    }

    #[test]
    fn refactor_matches_fresh_factor(
        n in 2usize..N_MAX,
        off in proptest::collection::vec((0usize..N_MAX, 0usize..N_MAX, -5.0f64..5.0), 0..4 * N_MAX),
        margin in proptest::collection::vec(0.5f64..4.0, N_MAX),
        b in proptest::collection::vec(-10.0f64..10.0, N_MAX),
        scale in 0.25f64..4.0,
    ) {
        let (_, csr) = assemble(n, &off, &margin);
        let mut lu = SparseLu::factor(&csr).unwrap();
        // Same pattern, scaled values: a numeric refactor must agree with
        // a from-scratch factorization.
        let mut scaled = csr.clone();
        for v in scaled.values_mut() {
            *v *= scale;
        }
        lu.refactor(&scaled).unwrap();
        let rhs = DVec::from(b[..n].to_vec());
        let x_re = lu.solve(&rhs).unwrap();
        let x_fresh = SparseLu::factor(&scaled).unwrap().solve(&rhs).unwrap();
        for i in 0..n {
            prop_assert!((x_re[i] - x_fresh[i]).abs() <= 1e-10 * (1.0 + x_fresh[i].abs()));
        }
    }

    #[test]
    fn singular_detection_parity(
        n in 2usize..N_MAX,
        row in 0usize..N_MAX,
        off in proptest::collection::vec((0usize..N_MAX, 0usize..N_MAX, -5.0f64..5.0), 0..4 * N_MAX),
        margin in proptest::collection::vec(0.5f64..4.0, N_MAX),
    ) {
        // Take a nonsingular system and zero out one row: both backends
        // must report a singular matrix.
        let row = row % n;
        let (mut dense, _) = assemble(n, &off, &margin);
        for j in 0..n {
            dense[(row, j)] = 0.0;
        }
        let csr = CsrMat::from_dense(&dense);
        let dense_singular = matches!(
            Lu::factor(&dense).err(),
            Some(MathError::SingularMatrix { .. })
        );
        let sparse_singular = matches!(
            SparseLu::factor(&csr).err(),
            Some(MathError::SingularMatrix { .. })
        );
        prop_assert!(dense_singular);
        prop_assert!(sparse_singular);
    }
}
