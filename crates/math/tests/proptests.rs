//! Property-based tests of the numerical kernels, beyond the unit tests:
//! algebraic laws, round-trips and invariants over randomized inputs.

use ams_math::{fft, Complex64, DMat, DVec, Lu, Poly, Rational};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    range.prop_filter("finite", |v| v.is_finite())
}

proptest! {
    // ---------- complex field laws ----------------------------------------

    #[test]
    fn complex_field_laws(
        ar in finite_f64(-100.0..100.0), ai in finite_f64(-100.0..100.0),
        br in finite_f64(-100.0..100.0), bi in finite_f64(-100.0..100.0),
        cr in finite_f64(-100.0..100.0), ci in finite_f64(-100.0..100.0),
    ) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        let c = Complex64::new(cr, ci);
        let close = |x: Complex64, y: Complex64| (x - y).abs() < 1e-9 * (1.0 + x.abs() + y.abs());
        prop_assert!(close(a + b, b + a));
        prop_assert!(close(a * b, b * a));
        prop_assert!(close(a * (b + c), a * b + a * c));
        prop_assert!(close((a * b) * c, a * (b * c)));
        if b.abs() > 1e-6 {
            prop_assert!(close(a / b * b, a));
        }
    }

    #[test]
    fn complex_modulus_is_multiplicative(
        ar in finite_f64(-50.0..50.0), ai in finite_f64(-50.0..50.0),
        br in finite_f64(-50.0..50.0), bi in finite_f64(-50.0..50.0),
    ) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        let lhs = (a * b).abs();
        let rhs = a.abs() * b.abs();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs));
    }

    // ---------- polynomials -------------------------------------------------

    #[test]
    fn poly_ring_laws(
        pa in proptest::collection::vec(finite_f64(-10.0..10.0), 1..6),
        pb in proptest::collection::vec(finite_f64(-10.0..10.0), 1..6),
        x in finite_f64(-3.0..3.0),
    ) {
        let a = Poly::new(pa);
        let b = Poly::new(pb);
        // Evaluation is a ring homomorphism.
        let sum = &a + &b;
        let prod = &a * &b;
        prop_assert!((sum.eval(x) - (a.eval(x) + b.eval(x))).abs() < 1e-6);
        prop_assert!((prod.eval(x) - a.eval(x) * b.eval(x)).abs() < 1e-4 * (1.0 + a.eval(x).abs() * b.eval(x).abs()));
    }

    #[test]
    fn poly_roots_reconstruct(roots in proptest::collection::vec(finite_f64(-5.0..5.0), 1..5)) {
        // Reject pathologically clustered roots (ill-conditioned).
        let mut sorted = roots.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assume!(sorted.windows(2).all(|w| (w[1] - w[0]).abs() > 0.3));
        let p = Poly::from_real_roots(&roots);
        let mut found: Vec<f64> = p.roots().unwrap().iter().map(|z| z.re).collect();
        found.sort_by(f64::total_cmp);
        for (f, r) in found.iter().zip(sorted.iter()) {
            prop_assert!((f - r).abs() < 1e-4, "root {f} vs {r}");
        }
    }

    #[test]
    fn derivative_is_linear(
        pa in proptest::collection::vec(finite_f64(-10.0..10.0), 1..6),
        pb in proptest::collection::vec(finite_f64(-10.0..10.0), 1..6),
    ) {
        let a = Poly::new(pa);
        let b = Poly::new(pb);
        let lhs = (&a + &b).derivative();
        let rhs = &a.derivative() + &b.derivative();
        // Trailing-zero trimming can differ, so compare by evaluation
        // (up to float rounding in the coefficient sums).
        prop_assert!(lhs.degree() <= rhs.degree().max(lhs.degree()));
        for i in 0..=lhs.degree().max(rhs.degree()) {
            let lc = lhs.coeffs().get(i).copied().unwrap_or(0.0);
            let rc = rhs.coeffs().get(i).copied().unwrap_or(0.0);
            prop_assert!((lc - rc).abs() <= 1e-12 * (1.0 + lc.abs()), "coeff {i}: {lc} vs {rc}");
        }
    }

    // ---------- linear algebra ----------------------------------------------

    #[test]
    fn lu_inverse_roundtrip(seed in proptest::collection::vec(finite_f64(-5.0..5.0), 9)) {
        let mut a = DMat::from_fn(3, 3, |i, j| seed[i * 3 + j]);
        for i in 0..3 {
            a[(i, i)] += 20.0;
        }
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        let eye: DMat<f64> = DMat::identity(3);
        prop_assert!((&prod - &eye).norm_inf() < 1e-9);
    }

    #[test]
    fn transpose_respects_products(
        sa in proptest::collection::vec(finite_f64(-5.0..5.0), 6),
        sb in proptest::collection::vec(finite_f64(-5.0..5.0), 6),
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ for a 2×3 times 3×2.
        let a = DMat::from_fn(2, 3, |i, j| sa[i * 3 + j]);
        let b = DMat::from_fn(3, 2, |i, j| sb[i * 2 + j]);
        let lhs = a.mul_mat(&b).unwrap().transpose();
        let rhs = b.transpose().mul_mat(&a.transpose()).unwrap();
        prop_assert!((&lhs - &rhs).norm_inf() < 1e-12);
    }

    #[test]
    fn complex_lu_solves_hermitian_like_systems(
        seed in proptest::collection::vec(finite_f64(-3.0..3.0), 8),
        rhs in proptest::collection::vec(finite_f64(-3.0..3.0), 4),
    ) {
        // 2×2 complex system with dominant diagonal.
        let mut a = DMat::<Complex64>::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                a[(i, j)] = Complex64::new(seed[(i * 2 + j) * 2], seed[(i * 2 + j) * 2 + 1]);
            }
            a[(i, i)] += Complex64::from_real(15.0);
        }
        let b: DVec<Complex64> = (0..2)
            .map(|i| Complex64::new(rhs[i * 2], rhs[i * 2 + 1]))
            .collect();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let r = &a.mul_vec(&x).unwrap() - &b;
        prop_assert!(r.norm_inf() < 1e-10);
    }

    // ---------- FFT ----------------------------------------------------------

    #[test]
    fn fft_time_shift_preserves_magnitude(
        values in proptest::collection::vec(finite_f64(-10.0..10.0), 32),
        shift in 0usize..32,
    ) {
        // Circular shift changes phases only.
        let shifted: Vec<f64> = (0..32).map(|i| values[(i + shift) % 32]).collect();
        let a = fft::fft_real(&values).unwrap();
        let b = fft::fft_real(&shifted).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.abs() - y.abs()).abs() < 1e-8 * (1.0 + x.abs()));
        }
    }

    // ---------- rationals ------------------------------------------------------

    #[test]
    fn rational_reduction_is_canonical(n in 1u64..10_000, d in 1u64..10_000, k in 1u64..50) {
        // (k·n)/(k·d) reduces to the same representation as n/d.
        let a = Rational::new(n, d).unwrap();
        let b = Rational::new(k * n, k * d).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(ams_math::gcd(a.numer(), a.denom()), 1);
    }

    #[test]
    fn rational_ordering_matches_floats(
        an in 1u64..1000, ad in 1u64..1000,
        bn in 1u64..1000, bd in 1u64..1000,
    ) {
        let a = Rational::new(an, ad).unwrap();
        let b = Rational::new(bn, bd).unwrap();
        if a.to_f64() < b.to_f64() - 1e-9 {
            prop_assert!(a < b);
        }
        if a.to_f64() > b.to_f64() + 1e-9 {
            prop_assert!(a > b);
        }
    }

    // ---------- ODE integration ---------------------------------------------

    #[test]
    fn rk4_linear_decay_bounded(rate in finite_f64(0.1..5.0), x0 in finite_f64(0.1..10.0)) {
        // ẋ = −λx from x0 > 0 stays positive and decreasing under RK4
        // with a stable step (h·λ ≤ 1).
        use ams_math::ode::{FixedStep, OdeMethod};
        let h = (1.0 / rate).min(0.1);
        let mut f = move |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = -rate * x[0];
        let mut s = FixedStep::new(OdeMethod::Rk4, h);
        let mut x = vec![x0];
        let mut prev = x0;
        let mut t = 0.0;
        for _ in 0..50 {
            s.step(&mut f, &mut t, &mut x);
            prop_assert!(x[0] > 0.0);
            prop_assert!(x[0] <= prev * (1.0 + 1e-12));
            prev = x[0];
        }
        // And tracks the analytic decay.
        let analytic = x0 * (-rate * t).exp();
        prop_assert!((x[0] - analytic).abs() < 1e-3 * x0);
    }
}
