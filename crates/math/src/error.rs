use std::fmt;

/// Error type for all numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MathError {
    /// A matrix was singular (or numerically singular) during factorization
    /// or solve. Carries the pivot column where breakdown occurred.
    SingularMatrix {
        /// Column index at which no acceptable pivot was found.
        pivot: usize,
    },
    /// Operand dimensions were incompatible.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was found.
        found: String,
    },
    /// An iterative method failed to converge.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// An argument was outside its valid domain.
    InvalidArgument {
        /// Description of the violated precondition.
        reason: String,
    },
    /// A step-size controller reduced the step below its minimum.
    StepSizeUnderflow {
        /// Simulated time at which the underflow occurred.
        time: f64,
        /// The step size that fell below the allowed minimum.
        step: f64,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            MathError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MathError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            MathError::InvalidArgument { reason } => {
                write!(f, "invalid argument: {reason}")
            }
            MathError::StepSizeUnderflow { time, step } => {
                write!(f, "step size underflow at t = {time:.6e} (step {step:.3e})")
            }
        }
    }
}

impl std::error::Error for MathError {}

impl MathError {
    /// Builds a [`MathError::DimensionMismatch`] from two shape descriptions.
    pub fn dims(expected: impl Into<String>, found: impl Into<String>) -> Self {
        MathError::DimensionMismatch {
            expected: expected.into(),
            found: found.into(),
        }
    }

    /// Builds a [`MathError::InvalidArgument`] from a reason string.
    pub fn invalid(reason: impl Into<String>) -> Self {
        MathError::InvalidArgument {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = MathError::SingularMatrix { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot column 3");
        let e = MathError::dims("2x2", "3x1");
        assert_eq!(e.to_string(), "dimension mismatch: expected 2x2, found 3x1");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MathError>();
    }
}
