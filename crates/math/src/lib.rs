//! Numerics substrate for the SystemC-AMS reproduction.
//!
//! This crate provides every numerical kernel the rest of the workspace
//! builds on, implemented from scratch:
//!
//! * [`Complex64`] — complex arithmetic for AC/noise analysis and FFTs.
//! * [`DMat`] / [`DVec`] — dense matrices and vectors over any [`Scalar`]
//!   field (`f64` or [`Complex64`]).
//! * [`Lu`] — LU factorization with partial pivoting, the linear-solve
//!   workhorse behind MNA and implicit integration.
//! * [`sparse`] — CSR matrices and [`SparseLu`], a fill-reducing sparse
//!   LU with a cached symbolic phase for fast per-step refactorization.
//! * [`lanes`] — [`F64xK`] lane bundles: `K` parameter corners packed
//!   into one [`Scalar`] so assembly, LU, and Newton run `K` scenarios
//!   in lockstep per instruction stream (auto-vectorized, no
//!   intrinsics).
//! * [`Poly`] — polynomial arithmetic and root finding (Durand–Kerner),
//!   used by transfer-function and zero-pole models.
//! * [`ode`] — explicit integrators (Euler, Heun, RK4, adaptive RKF45).
//! * [`implicit`] — implicit integrators (backward Euler, trapezoidal,
//!   BDF2) with Newton iteration for stiff systems.
//! * [`newton`] — damped Newton–Raphson with numeric Jacobians.
//! * [`fft`] — radix-2 FFT, windows and spectral helpers.
//! * [`Rational`] — exact rational arithmetic for SDF balance equations.
//! * [`Interval`] — closed-interval arithmetic backing the sweep-space
//!   abstract interpretation in `ams-lint::space`.
//! * [`interp`] / [`stats`] — interpolation and running statistics.
//!
//! # Example
//!
//! Solving a small linear system:
//!
//! ```
//! use ams_math::{DMat, DVec, Lu};
//!
//! # fn main() -> Result<(), ams_math::MathError> {
//! let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
//! let lu = Lu::factor(&a)?;
//! let x = lu.solve(&DVec::from(vec![3.0, 4.0]))?;
//! assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod error;
pub mod fft;
pub mod implicit;
pub mod interp;
pub mod interval;
pub mod lanes;
mod lu;
mod matrix;
pub mod newton;
pub mod ode;
mod poly;
mod rational;
mod scalar;
pub mod sparse;
pub mod stats;

pub use complex::Complex64;
pub use error::MathError;
pub use interval::Interval;
pub use lanes::{F64x16, F64x4, F64x8, F64xK};
pub use lu::{solve_dense, Lu};
pub use matrix::{DMat, DVec};
pub use poly::Poly;
pub use rational::{common_denominator, gcd, lcm, Rational};
pub use scalar::Scalar;
pub use sparse::{solve_sparse, CsrMat, SolveStats, SparseLu, Triplets};

/// Convenient result alias for fallible numerical routines.
pub type Result<T> = std::result::Result<T, MathError>;
