use crate::Complex64;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A field scalar usable by the generic dense linear algebra.
///
/// Implemented for three families: `f64` (DC, transient), [`Complex64`]
/// (AC, noise), and [`crate::lanes::F64xK`] (lane-bundled batch
/// transient — K parameter corners in lockstep), so one LU
/// factorization routine serves real, complex, and bundled Modified
/// Nodal Analysis. The trait is sealed by convention: the three
/// implementor families above are the supported set, and downstream
/// code should not add scalar types. Note that `Display` is
/// deliberately *not* a supertrait — lane bundles have no natural
/// scalar rendering — so generic code must format through `Debug` or
/// `modulus()`.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Magnitude used for pivot selection and convergence checks.
    fn modulus(self) -> f64;

    /// Embeds a real number into the field.
    fn from_f64(x: f64) -> Self;

    /// Returns `true` when all components are finite.
    fn is_finite(self) -> bool;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    fn modulus(self) -> f64 {
        self.abs()
    }

    fn from_f64(x: f64) -> f64 {
        x
    }

    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Scalar for Complex64 {
    const ZERO: Complex64 = Complex64::ZERO;
    const ONE: Complex64 = Complex64::ONE;

    fn modulus(self) -> f64 {
        self.abs()
    }

    fn from_f64(x: f64) -> Complex64 {
        Complex64::from_real(x)
    }

    fn is_finite(self) -> bool {
        Complex64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(xs: &[T]) -> T {
        xs.iter().fold(T::ZERO, |a, &b| a + b)
    }

    #[test]
    fn works_for_f64() {
        assert_eq!(generic_sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(f64::from_f64(2.5), 2.5);
        assert_eq!(2.0f64.modulus(), 2.0);
        assert_eq!((-2.0f64).modulus(), 2.0);
    }

    #[test]
    fn works_for_complex() {
        let s = generic_sum(&[Complex64::ONE, Complex64::J]);
        assert_eq!(s, Complex64::new(1.0, 1.0));
        assert!((Complex64::new(3.0, 4.0).modulus() - 5.0).abs() < 1e-12);
    }
}
