//! Damped Newton–Raphson for nonlinear algebraic systems `F(x) = 0`.
//!
//! The paper requires iterative numerical methods "in case of algebraic
//! loops … such that it is impossible to define a sequence of assignments"
//! (§3, O3) and nonlinear DAE support in phase 2. This module provides the
//! shared Newton engine used by the implicit integrators and the nonlinear
//! MNA solver.

use crate::{DMat, DVec, Lu, MathError};

/// A nonlinear vector function with an optional analytic Jacobian.
pub trait NonlinearSystem {
    /// Problem dimension.
    fn dim(&self) -> usize;

    /// Evaluates the residual `F(x)` into `out`.
    fn residual(&mut self, x: &[f64], out: &mut [f64]);

    /// Fills the Jacobian `∂F/∂x` at `x`. The default implementation uses
    /// forward finite differences with a scaled perturbation.
    fn jacobian(&mut self, x: &[f64], jac: &mut DMat<f64>) {
        numeric_jacobian(self, x, jac);
    }
}

/// Computes a forward-difference Jacobian of `sys` at `x` into `jac`.
///
/// The perturbation is scaled per component: `ε·max(|xᵢ|, 1)` with
/// `ε = √machine-epsilon`, the standard compromise between truncation and
/// round-off error.
pub fn numeric_jacobian<S: NonlinearSystem + ?Sized>(sys: &mut S, x: &[f64], jac: &mut DMat<f64>) {
    let n = sys.dim();
    debug_assert_eq!(jac.rows(), n);
    debug_assert_eq!(jac.cols(), n);
    let eps = f64::EPSILON.sqrt();
    let mut f0 = vec![0.0; n];
    let mut f1 = vec![0.0; n];
    let mut xp = x.to_vec();
    sys.residual(x, &mut f0);
    for j in 0..n {
        let h = eps * x[j].abs().max(1.0);
        xp[j] = x[j] + h;
        sys.residual(&xp, &mut f1);
        xp[j] = x[j];
        for i in 0..n {
            jac[(i, j)] = (f1[i] - f0[i]) / h;
        }
    }
}

/// Options controlling the Newton iteration.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the update norm (∞-norm, scaled).
    pub x_tol: f64,
    /// Convergence tolerance on the residual ∞-norm.
    pub f_tol: f64,
    /// Enables backtracking damping when a full step increases the
    /// residual.
    pub damping: bool,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 50,
            x_tol: 1e-12,
            f_tol: 1e-10,
            damping: true,
        }
    }
}

/// Outcome of a successful Newton solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonReport {
    /// Iterations used.
    pub iterations: usize,
    /// Final residual ∞-norm.
    pub residual: f64,
}

/// Solves `F(x) = 0`, refining `x` in place.
///
/// # Errors
///
/// * [`MathError::NoConvergence`] if `max_iter` is exhausted.
/// * [`MathError::SingularMatrix`] if a Jacobian cannot be factored.
///
/// # Example
///
/// ```
/// use ams_math::newton::{solve, NewtonOptions, NonlinearSystem};
/// use ams_math::DMat;
///
/// struct Sqrt2;
/// impl NonlinearSystem for Sqrt2 {
///     fn dim(&self) -> usize { 1 }
///     fn residual(&mut self, x: &[f64], out: &mut [f64]) { out[0] = x[0] * x[0] - 2.0; }
/// }
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let mut x = [1.0];
/// solve(&mut Sqrt2, &mut x, &NewtonOptions::default())?;
/// assert!((x[0] - 2f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn solve<S: NonlinearSystem + ?Sized>(
    sys: &mut S,
    x: &mut [f64],
    opts: &NewtonOptions,
) -> crate::Result<NewtonReport> {
    let n = sys.dim();
    if x.len() != n {
        return Err(MathError::dims(
            format!("state of length {n}"),
            format!("length {}", x.len()),
        ));
    }
    let mut f = vec![0.0; n];
    let mut jac = DMat::zeros(n, n);
    let mut x_trial = vec![0.0; n];
    let mut f_trial = vec![0.0; n];

    sys.residual(x, &mut f);
    let mut fnorm = inf_norm(&f);

    for iter in 1..=opts.max_iter {
        if fnorm <= opts.f_tol {
            return Ok(NewtonReport {
                iterations: iter - 1,
                residual: fnorm,
            });
        }
        sys.jacobian(x, &mut jac);
        let lu = Lu::factor(&jac)?;
        let rhs: DVec<f64> = f.iter().map(|&v| -v).collect();
        let dx = lu.solve(&rhs)?;

        // Backtracking line search: halve the step until the residual
        // decreases (or accept the smallest damped step).
        let mut lambda = 1.0;
        let mut accepted = false;
        for _ in 0..8 {
            for i in 0..n {
                x_trial[i] = x[i] + lambda * dx[i];
            }
            sys.residual(&x_trial, &mut f_trial);
            let fnorm_trial = inf_norm(&f_trial);
            if !opts.damping || fnorm_trial < fnorm || fnorm_trial <= opts.f_tol {
                x.copy_from_slice(&x_trial);
                f.copy_from_slice(&f_trial);
                fnorm = fnorm_trial;
                accepted = true;
                break;
            }
            lambda *= 0.5;
        }
        if !accepted {
            // Take the most-damped step anyway to avoid stalling.
            x.copy_from_slice(&x_trial);
            f.copy_from_slice(&f_trial);
            fnorm = inf_norm(&f);
        }

        let step_norm = dx.norm_inf() * lambda;
        let x_scale = x.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        if step_norm <= opts.x_tol * x_scale && fnorm <= opts.f_tol.max(1e-6) {
            return Ok(NewtonReport {
                iterations: iter,
                residual: fnorm,
            });
        }
    }
    Err(MathError::NoConvergence {
        iterations: opts.max_iter,
        residual: fnorm,
    })
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |a, &b| a.max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scalar2;
    impl NonlinearSystem for Scalar2 {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] - 2.0;
        }
    }

    #[test]
    fn scalar_sqrt() {
        let mut x = [1.0];
        let rep = solve(&mut Scalar2, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 2f64.sqrt()).abs() < 1e-10);
        assert!(rep.iterations <= 10);
    }

    struct Coupled;
    impl NonlinearSystem for Coupled {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            // x² + y² = 4, x·y = 1
            out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
            out[1] = x[0] * x[1] - 1.0;
        }
    }

    #[test]
    fn coupled_system() {
        let mut x = [2.0, 0.3];
        solve(&mut Coupled, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] * x[0] + x[1] * x[1] - 4.0).abs() < 1e-9);
        assert!((x[0] * x[1] - 1.0).abs() < 1e-9);
    }

    struct DiodeLike;
    impl NonlinearSystem for DiodeLike {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            // Stiff exponential: i = e^{40 v} - 1 must equal (1 - v)/1k·1e3
            out[0] = (40.0 * x[0]).exp() - 1.0 - (1.0 - x[0]);
        }
    }

    #[test]
    fn damped_newton_handles_exponential() {
        // Undamped Newton from v=1 would overflow e^{40}. Damping saves it.
        let mut x = [0.9];
        solve(&mut DiodeLike, &mut x, &NewtonOptions::default()).unwrap();
        let mut r = [0.0];
        DiodeLike.residual(&x, &mut r);
        assert!(r[0].abs() < 1e-8, "residual {}", r[0]);
    }

    #[test]
    fn no_solution_reports_no_convergence() {
        struct NoRoot;
        impl NonlinearSystem for NoRoot {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&mut self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0] * x[0] + 1.0; // always ≥ 1
            }
        }
        let mut x = [0.5];
        let err = solve(
            &mut NoRoot,
            &mut x,
            &NewtonOptions {
                max_iter: 20,
                ..Default::default()
            },
        );
        assert!(matches!(
            err,
            Err(MathError::NoConvergence { .. }) | Err(MathError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn wrong_state_length_rejected() {
        let mut x = [1.0, 2.0];
        assert!(matches!(
            solve(&mut Scalar2, &mut x, &NewtonOptions::default()),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn numeric_jacobian_matches_analytic() {
        struct Quad;
        impl NonlinearSystem for Quad {
            fn dim(&self) -> usize {
                2
            }
            fn residual(&mut self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0] * x[0] + x[1];
                out[1] = 3.0 * x[0] - x[1] * x[1];
            }
        }
        let mut jac = DMat::zeros(2, 2);
        numeric_jacobian(&mut Quad, &[2.0, 3.0], &mut jac);
        assert!((jac[(0, 0)] - 4.0).abs() < 1e-6);
        assert!((jac[(0, 1)] - 1.0).abs() < 1e-6);
        assert!((jac[(1, 0)] - 3.0).abs() < 1e-6);
        assert!((jac[(1, 1)] + 6.0).abs() < 1e-6);
    }

    #[test]
    fn already_converged_returns_zero_iterations() {
        let mut x = [2f64.sqrt()];
        let rep = solve(&mut Scalar2, &mut x, &NewtonOptions::default()).unwrap();
        assert_eq!(rep.iterations, 0);
    }
}
