//! Damped Newton–Raphson for nonlinear algebraic systems `F(x) = 0`.
//!
//! The paper requires iterative numerical methods "in case of algebraic
//! loops … such that it is impossible to define a sequence of assignments"
//! (§3, O3) and nonlinear DAE support in phase 2. This module provides the
//! shared Newton engine used by the implicit integrators and the nonlinear
//! MNA solver.

use crate::{CsrMat, DMat, DVec, Lu, MathError, SparseLu};

/// A nonlinear vector function with an optional analytic Jacobian.
pub trait NonlinearSystem {
    /// Problem dimension.
    fn dim(&self) -> usize;

    /// Evaluates the residual `F(x)` into `out`.
    fn residual(&mut self, x: &[f64], out: &mut [f64]);

    /// Fills the Jacobian `∂F/∂x` at `x`. The default implementation uses
    /// forward finite differences with a scaled perturbation.
    fn jacobian(&mut self, x: &[f64], jac: &mut DMat<f64>) {
        numeric_jacobian(self, x, jac);
    }

    /// The sparsity pattern of the Jacobian, if the system wants the
    /// sparse solve path. Returning `Some` makes [`solve_with`] assemble
    /// and factor a [`CsrMat`] Jacobian (with symbolic reuse across
    /// iterations and solves) instead of a dense one.
    fn jacobian_pattern(&self) -> Option<CsrMat<f64>> {
        None
    }

    /// Fills the sparse Jacobian at `x` into the pattern returned by
    /// [`NonlinearSystem::jacobian_pattern`]. The default evaluates the
    /// dense Jacobian and scatters it; override for a genuinely sparse
    /// evaluation.
    fn jacobian_sparse(&mut self, x: &[f64], jac: &mut CsrMat<f64>) {
        let n = self.dim();
        let mut dense = DMat::zeros(n, n);
        self.jacobian(x, &mut dense);
        jac.set_from_dense(&dense);
    }

    /// A caller-chosen fingerprint of the Jacobian *function* (not the
    /// evaluation point): two calls with equal keys and bit-identical `x`
    /// are promised to produce the identical Jacobian. [`solve_with`]
    /// uses it to skip re-evaluating and re-factoring between a rejected
    /// and retried step. The default (constant `0`) is correct for
    /// systems whose Jacobian depends only on `x`; override it when the
    /// Jacobian also depends on hidden state (time, step size, method)
    /// and the workspace is shared across such changes.
    fn jacobian_key(&self) -> u64 {
        0
    }
}

/// Computes a forward-difference Jacobian of `sys` at `x` into `jac`.
///
/// The perturbation is scaled per component: `ε·max(|xᵢ|, 1)` with
/// `ε = √machine-epsilon`, the standard compromise between truncation and
/// round-off error.
pub fn numeric_jacobian<S: NonlinearSystem + ?Sized>(sys: &mut S, x: &[f64], jac: &mut DMat<f64>) {
    let n = sys.dim();
    debug_assert_eq!(jac.rows(), n);
    debug_assert_eq!(jac.cols(), n);
    let eps = f64::EPSILON.sqrt();
    let mut f0 = vec![0.0; n];
    let mut f1 = vec![0.0; n];
    let mut xp = x.to_vec();
    sys.residual(x, &mut f0);
    for j in 0..n {
        let h = eps * x[j].abs().max(1.0);
        xp[j] = x[j] + h;
        sys.residual(&xp, &mut f1);
        xp[j] = x[j];
        for i in 0..n {
            jac[(i, j)] = (f1[i] - f0[i]) / h;
        }
    }
}

/// Options controlling the Newton iteration.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the update norm (∞-norm, scaled).
    pub x_tol: f64,
    /// Convergence tolerance on the residual ∞-norm.
    pub f_tol: f64,
    /// Enables backtracking damping when a full step increases the
    /// residual.
    pub damping: bool,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 50,
            x_tol: 1e-12,
            f_tol: 1e-10,
            damping: true,
        }
    }
}

/// Outcome of a successful Newton solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonReport {
    /// Iterations used.
    pub iterations: usize,
    /// Final residual ∞-norm.
    pub residual: f64,
    /// Factorization work done by this solve.
    pub stats: NewtonStats,
}

/// Factorization counters for Newton solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NewtonStats {
    /// Jacobian factorizations performed (dense or sparse).
    pub factorizations: u64,
    /// Factorizations skipped because the Jacobian was provably unchanged
    /// (same fingerprint and evaluation point, or bit-identical values).
    pub jacobian_reused: u64,
}

/// Persistent caches for [`solve_with`]: the evaluated Jacobian, its
/// factorization, and the values/point it was computed at, kept across
/// Newton solves so an unchanged Jacobian (a rejected-and-retried
/// integration step, or the constant Jacobian of a linear residual) is
/// not factored again. Create once per repeatedly-solved system and pass
/// to every [`solve_with`] call.
#[derive(Debug, Clone, Default)]
pub struct NewtonWorkspace {
    stats: NewtonStats,
    key: u64,
    /// Evaluation point of the currently cached factorization.
    last_x: Vec<f64>,
    dense_jac: Option<DMat<f64>>,
    dense_snapshot: Option<DMat<f64>>,
    dense_lu: Option<Lu<f64>>,
    sparse_jac: Option<CsrMat<f64>>,
    sparse_snapshot: Vec<f64>,
    sparse_lu: Option<SparseLu<f64>>,
}

impl NewtonWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        NewtonWorkspace::default()
    }

    /// Cumulative counters over every solve that used this workspace.
    pub fn stats(&self) -> NewtonStats {
        self.stats
    }

    /// Drops all cached factorizations (counters are kept). Call when the
    /// system's dimension or sparsity pattern changes.
    pub fn reset(&mut self) {
        let stats = self.stats;
        *self = NewtonWorkspace::default();
        self.stats = stats;
    }

    /// Counter delta since a snapshot taken with [`NewtonWorkspace::stats`].
    fn stats_since(&self, start: NewtonStats) -> NewtonStats {
        NewtonStats {
            factorizations: self.stats.factorizations - start.factorizations,
            jacobian_reused: self.stats.jacobian_reused - start.jacobian_reused,
        }
    }

    fn has_factor(&self) -> bool {
        self.dense_lu.is_some() || self.sparse_lu.is_some()
    }

    /// Evaluates (if needed) and factors (if needed) the Jacobian of
    /// `sys` at `x`, with the two reuse levels described on
    /// [`solve_with`].
    fn factor_jacobian<S: NonlinearSystem + ?Sized>(
        &mut self,
        sys: &mut S,
        x: &[f64],
    ) -> crate::Result<()> {
        let n = sys.dim();
        let key = sys.jacobian_key();
        // Level 1: same Jacobian function, same evaluation point — skip
        // even the Jacobian evaluation.
        if self.has_factor() && self.key == key && self.last_x.as_slice() == x {
            self.stats.jacobian_reused += 1;
            return Ok(());
        }
        if self.sparse_jac.is_none() && self.dense_jac.is_none() {
            match sys.jacobian_pattern() {
                Some(pat) => self.sparse_jac = Some(pat),
                None => self.dense_jac = Some(DMat::zeros(n, n)),
            }
        }
        if let Some(jac) = self.sparse_jac.as_mut() {
            sys.jacobian_sparse(x, jac);
            // Level 2: bit-identical values — skip the factorization.
            if self.sparse_lu.is_some() && self.sparse_snapshot.as_slice() == jac.values() {
                self.stats.jacobian_reused += 1;
            } else {
                let refactored = match self.sparse_lu.as_mut() {
                    Some(lu) => lu.refactor(jac).is_ok(),
                    None => false,
                };
                if !refactored {
                    self.sparse_lu = Some(SparseLu::factor(jac)?);
                }
                self.stats.factorizations += 1;
                self.sparse_snapshot.clear();
                self.sparse_snapshot.extend_from_slice(jac.values());
            }
        } else {
            let jac = self.dense_jac.as_mut().expect("dense jacobian buffer");
            sys.jacobian(x, jac);
            let same = self.dense_lu.is_some()
                && self
                    .dense_snapshot
                    .as_ref()
                    .is_some_and(|s| s.as_slice() == jac.as_slice());
            if same {
                self.stats.jacobian_reused += 1;
            } else {
                self.dense_lu = Some(Lu::factor(jac)?);
                self.stats.factorizations += 1;
                self.dense_snapshot = Some(jac.clone());
            }
        }
        self.key = key;
        self.last_x.clear();
        self.last_x.extend_from_slice(x);
        Ok(())
    }

    fn solve_step(&self, rhs: &DVec<f64>) -> crate::Result<DVec<f64>> {
        if let Some(lu) = &self.sparse_lu {
            lu.solve(rhs)
        } else {
            self.dense_lu
                .as_ref()
                .expect("factor_jacobian must run before solve_step")
                .solve(rhs)
        }
    }
}

/// Solves `F(x) = 0`, refining `x` in place.
///
/// # Errors
///
/// * [`MathError::NoConvergence`] if `max_iter` is exhausted.
/// * [`MathError::SingularMatrix`] if a Jacobian cannot be factored.
///
/// # Example
///
/// ```
/// use ams_math::newton::{solve, NewtonOptions, NonlinearSystem};
/// use ams_math::DMat;
///
/// struct Sqrt2;
/// impl NonlinearSystem for Sqrt2 {
///     fn dim(&self) -> usize { 1 }
///     fn residual(&mut self, x: &[f64], out: &mut [f64]) { out[0] = x[0] * x[0] - 2.0; }
/// }
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let mut x = [1.0];
/// solve(&mut Sqrt2, &mut x, &NewtonOptions::default())?;
/// assert!((x[0] - 2f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn solve<S: NonlinearSystem + ?Sized>(
    sys: &mut S,
    x: &mut [f64],
    opts: &NewtonOptions,
) -> crate::Result<NewtonReport> {
    solve_with(sys, x, opts, &mut NewtonWorkspace::new())
}

/// Solves `F(x) = 0` like [`solve`], reusing factorization caches from
/// `ws` across calls.
///
/// Two levels of Jacobian reuse apply, both counted in
/// [`NewtonStats::jacobian_reused`]:
///
/// 1. same [`NonlinearSystem::jacobian_key`] and bit-identical evaluation
///    point as the cached factorization — the Jacobian is neither
///    re-evaluated nor re-factored (the rejected-and-retried-step case);
/// 2. bit-identical Jacobian values after evaluation — the factorization
///    is skipped (the linear-residual case).
///
/// When [`NonlinearSystem::jacobian_pattern`] returns `Some`, the
/// Jacobian is assembled and factored sparse ([`SparseLu`]), with the
/// symbolic analysis reused by numeric refactorization across iterations
/// and solves.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with<S: NonlinearSystem + ?Sized>(
    sys: &mut S,
    x: &mut [f64],
    opts: &NewtonOptions,
    ws: &mut NewtonWorkspace,
) -> crate::Result<NewtonReport> {
    let n = sys.dim();
    if x.len() != n {
        return Err(MathError::dims(
            format!("state of length {n}"),
            format!("length {}", x.len()),
        ));
    }
    let start = ws.stats;
    let mut f = vec![0.0; n];
    let mut x_trial = vec![0.0; n];
    let mut f_trial = vec![0.0; n];

    sys.residual(x, &mut f);
    let mut fnorm = inf_norm(&f);

    for iter in 1..=opts.max_iter {
        if fnorm <= opts.f_tol {
            return Ok(NewtonReport {
                iterations: iter - 1,
                residual: fnorm,
                stats: ws.stats_since(start),
            });
        }
        ws.factor_jacobian(sys, x)?;
        let rhs: DVec<f64> = f.iter().map(|&v| -v).collect();
        let dx = ws.solve_step(&rhs)?;

        // Backtracking line search: halve the step until the residual
        // decreases (or accept the smallest damped step).
        let mut lambda = 1.0;
        let mut accepted = false;
        for _ in 0..8 {
            for i in 0..n {
                x_trial[i] = x[i] + lambda * dx[i];
            }
            sys.residual(&x_trial, &mut f_trial);
            let fnorm_trial = inf_norm(&f_trial);
            if !opts.damping || fnorm_trial < fnorm || fnorm_trial <= opts.f_tol {
                x.copy_from_slice(&x_trial);
                f.copy_from_slice(&f_trial);
                fnorm = fnorm_trial;
                accepted = true;
                break;
            }
            lambda *= 0.5;
        }
        if !accepted {
            // Take the most-damped step anyway to avoid stalling.
            x.copy_from_slice(&x_trial);
            f.copy_from_slice(&f_trial);
            fnorm = inf_norm(&f);
        }

        let step_norm = dx.norm_inf() * lambda;
        let x_scale = x.iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        if step_norm <= opts.x_tol * x_scale && fnorm <= opts.f_tol.max(1e-6) {
            return Ok(NewtonReport {
                iterations: iter,
                residual: fnorm,
                stats: ws.stats_since(start),
            });
        }
    }
    Err(MathError::NoConvergence {
        iterations: opts.max_iter,
        residual: fnorm,
    })
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |a, &b| a.max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scalar2;
    impl NonlinearSystem for Scalar2 {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] - 2.0;
        }
    }

    #[test]
    fn scalar_sqrt() {
        let mut x = [1.0];
        let rep = solve(&mut Scalar2, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] - 2f64.sqrt()).abs() < 1e-10);
        assert!(rep.iterations <= 10);
    }

    struct Coupled;
    impl NonlinearSystem for Coupled {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            // x² + y² = 4, x·y = 1
            out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
            out[1] = x[0] * x[1] - 1.0;
        }
    }

    #[test]
    fn coupled_system() {
        let mut x = [2.0, 0.3];
        solve(&mut Coupled, &mut x, &NewtonOptions::default()).unwrap();
        assert!((x[0] * x[0] + x[1] * x[1] - 4.0).abs() < 1e-9);
        assert!((x[0] * x[1] - 1.0).abs() < 1e-9);
    }

    struct DiodeLike;
    impl NonlinearSystem for DiodeLike {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            // Stiff exponential: i = e^{40 v} - 1 must equal (1 - v)/1k·1e3
            out[0] = (40.0 * x[0]).exp() - 1.0 - (1.0 - x[0]);
        }
    }

    #[test]
    fn damped_newton_handles_exponential() {
        // Undamped Newton from v=1 would overflow e^{40}. Damping saves it.
        let mut x = [0.9];
        solve(&mut DiodeLike, &mut x, &NewtonOptions::default()).unwrap();
        let mut r = [0.0];
        DiodeLike.residual(&x, &mut r);
        assert!(r[0].abs() < 1e-8, "residual {}", r[0]);
    }

    #[test]
    fn no_solution_reports_no_convergence() {
        struct NoRoot;
        impl NonlinearSystem for NoRoot {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&mut self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0] * x[0] + 1.0; // always ≥ 1
            }
        }
        let mut x = [0.5];
        let err = solve(
            &mut NoRoot,
            &mut x,
            &NewtonOptions {
                max_iter: 20,
                ..Default::default()
            },
        );
        assert!(matches!(
            err,
            Err(MathError::NoConvergence { .. }) | Err(MathError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn wrong_state_length_rejected() {
        let mut x = [1.0, 2.0];
        assert!(matches!(
            solve(&mut Scalar2, &mut x, &NewtonOptions::default()),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn numeric_jacobian_matches_analytic() {
        struct Quad;
        impl NonlinearSystem for Quad {
            fn dim(&self) -> usize {
                2
            }
            fn residual(&mut self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0] * x[0] + x[1];
                out[1] = 3.0 * x[0] - x[1] * x[1];
            }
        }
        let mut jac = DMat::zeros(2, 2);
        numeric_jacobian(&mut Quad, &[2.0, 3.0], &mut jac);
        assert!((jac[(0, 0)] - 4.0).abs() < 1e-6);
        assert!((jac[(0, 1)] - 1.0).abs() < 1e-6);
        assert!((jac[(1, 0)] - 3.0).abs() < 1e-6);
        assert!((jac[(1, 1)] + 6.0).abs() < 1e-6);
    }

    #[test]
    fn already_converged_returns_zero_iterations() {
        let mut x = [2f64.sqrt()];
        let rep = solve(&mut Scalar2, &mut x, &NewtonOptions::default()).unwrap();
        assert_eq!(rep.iterations, 0);
        assert_eq!(rep.stats, NewtonStats::default());
    }

    /// Linear system with an analytic (hence bit-reproducible) Jacobian.
    struct Linear2;
    impl NonlinearSystem for Linear2 {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            out[0] = 2.0 * x[0] + x[1] - 3.0;
            out[1] = x[0] + 3.0 * x[1] - 4.0;
        }
        fn jacobian(&mut self, _x: &[f64], jac: &mut DMat<f64>) {
            jac[(0, 0)] = 2.0;
            jac[(0, 1)] = 1.0;
            jac[(1, 0)] = 1.0;
            jac[(1, 1)] = 3.0;
        }
    }

    #[test]
    fn workspace_reuses_constant_jacobian_across_solves() {
        let mut ws = NewtonWorkspace::new();
        let mut x = [0.0, 0.0];
        solve_with(&mut Linear2, &mut x, &NewtonOptions::default(), &mut ws).unwrap();
        assert_eq!(ws.stats().factorizations, 1);
        // Second solve from a different start: the Jacobian values are
        // bit-identical, so the factorization is reused.
        let mut y = [5.0, -7.0];
        let rep = solve_with(&mut Linear2, &mut y, &NewtonOptions::default(), &mut ws).unwrap();
        assert_eq!(ws.stats().factorizations, 1);
        assert!(ws.stats().jacobian_reused >= 1);
        assert!(rep.stats.jacobian_reused >= 1);
        assert!((y[0] - 1.0).abs() < 1e-10 && (y[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn workspace_skips_evaluation_on_retried_step() {
        // A failed solve retried from the same point (the caller restored
        // the state, as a rejected integration step does) must not
        // re-evaluate or re-factor the Jacobian at that point.
        let opts = NewtonOptions {
            max_iter: 1,
            ..Default::default()
        };
        let mut ws = NewtonWorkspace::new();
        let mut x = [1.0];
        assert!(solve_with(&mut Scalar2, &mut x, &opts, &mut ws).is_err());
        assert_eq!(ws.stats().factorizations, 1);
        x[0] = 1.0; // restore to the rejected step's starting point
        assert!(solve_with(&mut Scalar2, &mut x, &opts, &mut ws).is_err());
        assert_eq!(ws.stats().factorizations, 1);
        assert_eq!(ws.stats().jacobian_reused, 1);
    }

    struct SparseCoupled;
    impl NonlinearSystem for SparseCoupled {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&mut self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
            out[1] = x[0] * x[1] - 1.0;
        }
        fn jacobian_pattern(&self) -> Option<crate::CsrMat<f64>> {
            let mut t = crate::Triplets::new(2, 2);
            t.push(0, 0, 0.0);
            t.push(0, 1, 0.0);
            t.push(1, 0, 0.0);
            t.push(1, 1, 0.0);
            Some(t.build())
        }
    }

    #[test]
    fn sparse_jacobian_path_matches_dense() {
        let mut xs = [2.0, 0.3];
        let mut ws = NewtonWorkspace::new();
        let rep = solve_with(
            &mut SparseCoupled,
            &mut xs,
            &NewtonOptions::default(),
            &mut ws,
        )
        .unwrap();
        assert!(rep.stats.factorizations >= 1);
        let mut xd = [2.0, 0.3];
        solve(&mut Coupled, &mut xd, &NewtonOptions::default()).unwrap();
        assert!((xs[0] - xd[0]).abs() < 1e-9 && (xs[1] - xd[1]).abs() < 1e-9);
    }
}
