//! Lane-bundled scalars: `K` independent `f64` corners per value.
//!
//! [`F64xK`] packs `K` real numbers into one [`Scalar`] so that the
//! generic dense/sparse linear algebra — and everything stacked on top
//! of it (MNA assembly, `SparseLu` refactorization, Newton iteration) —
//! simulates `K` parameter corners in lockstep per instruction stream.
//! The representation is a plain `[f64; K]` structure-of-arrays element
//! and every operation is a straight elementwise loop, so LLVM
//! auto-vectorizes the hot paths without any unstable SIMD intrinsics.
//!
//! # Semantics
//!
//! * Arithmetic is strictly lanewise: lane `l` of a result depends only
//!   on lane `l` of the operands. A NaN or overflow in one corner can
//!   never leak into its neighbours — per-lane divergence isolation is a
//!   property of the arithmetic, not of bookkeeping.
//! * [`Scalar::modulus`] is the **maximum** of the per-lane magnitudes
//!   (NaN lanes are ignored, as `f64::max` discards NaN). Pivot and
//!   convergence guards therefore act on the worst *live* corner: a
//!   pivot is accepted when at least one lane can support it, and dead
//!   (NaN) lanes neither veto nor enable a pivot.
//! * [`Scalar::is_finite`] is true only when **all** lanes are finite.
//!   Callers that tolerate partial divergence should inspect lanes
//!   individually instead ([`F64xK::lane`], [`F64xK::finite_mask`]).
//!
//! The pivot *sequence* of the sparse LU is pattern-determined (see
//! `SparseLu`), so a lane bundle refactored on a shared symbolic factor
//! performs the exact same operation sequence per lane as `K` scalar
//! refactorizations — lane-vs-scalar parity is an op-for-op argument,
//! not just a tolerance claim.

use crate::Scalar;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A bundle of `K` independent `f64` lanes behaving as one [`Scalar`].
///
/// `K` is a const generic; the supported widths are re-exported as
/// [`F64x4`], [`F64x8`] and [`F64x16`]. Width 4 matches one AVX2
/// register of doubles, 8 matches AVX-512 (or two AVX2 ops), 16 trades
/// register pressure for fewer loop iterations.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(transparent)]
pub struct F64xK<const K: usize>(pub [f64; K]);

/// Four-lane bundle (one AVX2 register of doubles).
pub type F64x4 = F64xK<4>;
/// Eight-lane bundle (one AVX-512 register, or two AVX2 ops).
pub type F64x8 = F64xK<8>;
/// Sixteen-lane bundle (fewer loop iterations, more register pressure).
pub type F64x16 = F64xK<16>;

impl<const K: usize> F64xK<K> {
    /// The same value in every lane.
    #[inline]
    pub fn splat(x: f64) -> Self {
        F64xK([x; K])
    }

    /// Builds a bundle lane by lane.
    #[inline]
    pub fn from_fn(mut f: impl FnMut(usize) -> f64) -> Self {
        let mut out = [0.0; K];
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = f(l);
        }
        F64xK(out)
    }

    /// Packs the first `K` values of `xs` into a bundle.
    ///
    /// # Panics
    /// Panics when `xs` holds fewer than `K` values.
    #[inline]
    pub fn from_slice(xs: &[f64]) -> Self {
        Self::from_fn(|l| xs[l])
    }

    /// Value of lane `l`.
    #[inline]
    pub fn lane(self, l: usize) -> f64 {
        self.0[l]
    }

    /// Overwrites lane `l`.
    #[inline]
    pub fn set_lane(&mut self, l: usize, x: f64) {
        self.0[l] = x;
    }

    /// The lanes as a slice, lane 0 first.
    #[inline]
    pub fn lanes(&self) -> &[f64; K] {
        &self.0
    }

    /// Per-lane finiteness: `mask[l]` is true when lane `l` is finite.
    #[inline]
    pub fn finite_mask(self) -> [bool; K] {
        let mut m = [false; K];
        for (l, slot) in m.iter_mut().enumerate() {
            *slot = self.0[l].is_finite();
        }
        m
    }

    /// Largest per-lane magnitude, ignoring NaN lanes (returns `0.0`
    /// when every lane is NaN). This is the [`Scalar::modulus`] of the
    /// bundle, exposed inherently for guard code that already holds a
    /// concrete bundle.
    #[inline]
    pub fn max_abs(self) -> f64 {
        let mut m = 0.0f64;
        for l in 0..K {
            // f64::max ignores NaN operands, so dead lanes do not
            // poison pivot or convergence guards.
            m = m.max(self.0[l].abs());
        }
        m
    }

    /// Per-lane absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self::from_fn(|l| self.0[l].abs())
    }
}

macro_rules! lanewise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<const K: usize> $trait for F64xK<K> {
            type Output = F64xK<K>;

            #[inline]
            fn $method(self, rhs: F64xK<K>) -> F64xK<K> {
                let mut out = self.0;
                for l in 0..K {
                    out[l] $op rhs.0[l];
                }
                F64xK(out)
            }
        }
    };
}

macro_rules! lanewise_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<const K: usize> $trait for F64xK<K> {
            #[inline]
            fn $method(&mut self, rhs: F64xK<K>) {
                for l in 0..K {
                    self.0[l] $op rhs.0[l];
                }
            }
        }
    };
}

lanewise_binop!(Add, add, +=);
lanewise_binop!(Sub, sub, -=);
lanewise_binop!(Mul, mul, *=);
lanewise_binop!(Div, div, /=);
lanewise_assign!(AddAssign, add_assign, +=);
lanewise_assign!(SubAssign, sub_assign, -=);
lanewise_assign!(MulAssign, mul_assign, *=);
lanewise_assign!(DivAssign, div_assign, /=);

impl<const K: usize> Neg for F64xK<K> {
    type Output = F64xK<K>;

    #[inline]
    fn neg(self) -> F64xK<K> {
        let mut out = self.0;
        for v in &mut out {
            *v = -*v;
        }
        F64xK(out)
    }
}

impl<const K: usize> Default for F64xK<K> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const K: usize> Scalar for F64xK<K> {
    const ZERO: Self = F64xK([0.0; K]);
    const ONE: Self = F64xK([1.0; K]);

    #[inline]
    fn modulus(self) -> f64 {
        self.max_abs()
    }

    #[inline]
    fn from_f64(x: f64) -> Self {
        Self::splat(x)
    }

    #[inline]
    fn is_finite(self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_dense, DMat, DVec};

    #[test]
    fn lanewise_arithmetic_is_isolated() {
        let a = F64x4::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::from_slice(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).lanes(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b / a).lanes(), &[10.0, 10.0, 10.0, 10.0]);
        assert_eq!((-a).lanes(), &[-1.0, -2.0, -3.0, -4.0]);
        let mut c = a;
        c *= b;
        assert_eq!(c.lanes(), &[10.0, 40.0, 90.0, 160.0]);
    }

    #[test]
    fn nan_lane_does_not_leak() {
        let mut a = F64x4::splat(2.0);
        a.set_lane(1, f64::NAN);
        let b = a * F64x4::splat(3.0);
        assert_eq!(b.lane(0), 6.0);
        assert!(b.lane(1).is_nan());
        assert_eq!(b.lane(2), 6.0);
        assert_eq!(b.finite_mask(), [true, false, true, true]);
    }

    #[test]
    fn modulus_is_max_across_lanes_and_ignores_nan() {
        let mut a = F64x4::from_slice(&[1.0, -5.0, 2.0, 0.5]);
        assert_eq!(a.modulus(), 5.0);
        a.set_lane(1, f64::NAN);
        assert_eq!(a.modulus(), 2.0);
        assert_eq!(F64x4::splat(f64::NAN).modulus(), 0.0);
        assert!(!a.is_finite());
        assert!(F64x4::splat(1.0).is_finite());
    }

    #[test]
    fn scalar_constants_and_embedding() {
        assert_eq!(F64x8::ZERO.lanes(), &[0.0; 8]);
        assert_eq!(F64x8::ONE.lanes(), &[1.0; 8]);
        assert_eq!(F64x8::from_f64(2.5).lanes(), &[2.5; 8]);
    }

    /// The generic dense LU over a lane bundle must match four scalar
    /// solves lane for lane — same elimination order, same arithmetic,
    /// just wider values.
    #[test]
    fn dense_solve_matches_scalar_per_lane() {
        let deltas = [0.0, 0.1, -0.2, 0.3];
        let a = DMat::<F64x4>::from_fn(2, 2, |i, j| {
            F64x4::from_fn(|l| [[2.0, 1.0], [1.0, 3.0]][i][j] + deltas[l] * (i + j) as f64)
        });
        let b = DVec::from(vec![F64x4::splat(3.0), F64x4::splat(4.0)]);
        let x = solve_dense(&a, &b).unwrap();
        for (l, &d) in deltas.iter().enumerate() {
            let a_l = DMat::<f64>::from_fn(2, 2, |i, j| {
                [[2.0, 1.0], [1.0, 3.0]][i][j] + d * (i + j) as f64
            });
            let b_l = DVec::from(vec![3.0, 4.0]);
            let x_l = solve_dense(&a_l, &b_l).unwrap();
            for i in 0..2 {
                assert!(
                    (x[i].lane(l) - x_l[i]).abs() < 1e-12,
                    "lane {l} row {i}: {} vs {}",
                    x[i].lane(l),
                    x_l[i]
                );
            }
        }
    }
}
