use crate::MathError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// An exact non-negative rational number over `u64`.
///
/// Synchronous-dataflow balance equations and timed-dataflow timestep
/// propagation must be solved *exactly* — floating point would make rate
/// consistency checks flaky. Rationals are kept in lowest terms with a
/// non-zero denominator.
///
/// # Example
///
/// ```
/// use ams_math::Rational;
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let a = Rational::new(2, 4)?;
/// assert_eq!(a, Rational::new(1, 2)?);
/// assert_eq!((a * Rational::from_int(6)).numer(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    numer: u64,
    denom: u64,
}

/// Greatest common divisor (Euclid). `gcd(0, 0)` is defined as 0.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Panics on overflow in debug builds.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { numer: 0, denom: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { numer: 1, denom: 1 };

    /// Creates `numer/denom` reduced to lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if `denom == 0`.
    pub fn new(numer: u64, denom: u64) -> crate::Result<Self> {
        if denom == 0 {
            return Err(MathError::invalid("rational denominator must be non-zero"));
        }
        let g = gcd(numer, denom).max(1);
        Ok(Rational {
            numer: numer / g,
            denom: denom / g,
        })
    }

    /// Creates an integer rational `n/1`.
    pub const fn from_int(n: u64) -> Self {
        Rational { numer: n, denom: 1 }
    }

    /// Numerator (in lowest terms).
    pub fn numer(self) -> u64 {
        self.numer
    }

    /// Denominator (in lowest terms, always ≥ 1).
    pub fn denom(self) -> u64 {
        self.denom
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.numer == 0
    }

    /// Returns `true` if the value is a whole number.
    pub fn is_integer(self) -> bool {
        self.denom == 1
    }

    /// Converts to `f64` (approximately, for display/diagnostics only).
    pub fn to_f64(self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] for zero.
    pub fn recip(self) -> crate::Result<Self> {
        Rational::new(self.denom, self.numer)
    }

    /// Checked subtraction; `None` if the result would be negative.
    pub fn checked_sub(self, rhs: Rational) -> Option<Rational> {
        let l = self.numer.checked_mul(rhs.denom)?;
        let r = rhs.numer.checked_mul(self.denom)?;
        if l < r {
            return None;
        }
        Some(
            Rational::new(l - r, self.denom.checked_mul(rhs.denom)?)
                .expect("denominators are non-zero"),
        )
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Reduce via gcd of denominators first to delay overflow.
        let g = gcd(self.denom, rhs.denom).max(1);
        let d = self.denom / g * rhs.denom;
        let n = self.numer * (rhs.denom / g) + rhs.numer * (self.denom / g);
        Rational::new(n, d).expect("denominator non-zero")
    }
}

impl Sub for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics if the result would be negative (use
    /// [`Rational::checked_sub`] to handle that case).
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(rhs)
            .expect("rational subtraction underflow (result would be negative)")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to avoid overflow.
        let g1 = gcd(self.numer, rhs.denom).max(1);
        let g2 = gcd(rhs.numer, self.denom).max(1);
        Rational::new(
            (self.numer / g1) * (rhs.numer / g2),
            (self.denom / g2) * (rhs.denom / g1),
        )
        .expect("denominator non-zero")
    }
}

impl Div for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics when dividing by zero.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip().expect("division by rational zero")
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d as a·d vs c·b using u128 to avoid overflow.
        let l = self.numer as u128 * other.denom as u128;
        let r = other.numer as u128 * self.denom as u128;
        l.cmp(&r)
    }
}

/// Computes the least common multiple of the denominators of a slice of
/// rationals — the scaling that turns them all into integers (used to get
/// the minimal SDF repetition vector).
pub fn common_denominator(xs: &[Rational]) -> u64 {
    xs.iter().fold(1, |acc, r| lcm(acc, r.denom()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_to_lowest_terms() {
        let r = Rational::new(6, 8).unwrap();
        assert_eq!((r.numer(), r.denom()), (3, 4));
        assert_eq!(Rational::new(0, 5).unwrap(), Rational::ZERO);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert!(Rational::new(1, 0).is_err());
        assert!(Rational::ZERO.recip().is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2).unwrap();
        let b = Rational::new(1, 3).unwrap();
        assert_eq!(a + b, Rational::new(5, 6).unwrap());
        assert_eq!(a - b, Rational::new(1, 6).unwrap());
        assert_eq!(a * b, Rational::new(1, 6).unwrap());
        assert_eq!(a / b, Rational::new(3, 2).unwrap());
    }

    #[test]
    fn subtraction_underflow_is_checked() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(1, 2).unwrap();
        assert!(a.checked_sub(b).is_none());
    }

    #[test]
    fn ordering() {
        let a = Rational::new(2, 3).unwrap();
        let b = Rational::new(3, 4).unwrap();
        assert!(a < b);
        assert!(Rational::ONE > b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
    }

    #[test]
    fn common_denominator_of_rates() {
        let xs = [
            Rational::new(1, 2).unwrap(),
            Rational::new(1, 3).unwrap(),
            Rational::new(5, 6).unwrap(),
        ];
        assert_eq!(common_denominator(&xs), 6);
    }

    #[test]
    fn cross_reduction_avoids_overflow() {
        let big = Rational::new(u64::MAX / 2, 3).unwrap();
        let r = big * Rational::new(3, u64::MAX / 2).unwrap();
        assert_eq!(r, Rational::ONE);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 4).unwrap().to_string(), "3/4");
        assert_eq!(Rational::from_int(7).to_string(), "7");
    }
}
