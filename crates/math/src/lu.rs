use crate::{DMat, DVec, MathError, Scalar};

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// This is the linear-solve workhorse behind DC operating points,
/// transient companion-model solves, complex AC analysis and implicit
/// integration. The factorization is computed once and can then be reused
/// for many right-hand sides — the "dedicated algorithm" property that
/// experiment E5 benchmarks (factor once, resolve per timestep).
///
/// # Example
///
/// ```
/// use ams_math::{DMat, DVec, Lu};
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let a = DMat::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&DVec::from(vec![10.0, 12.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu<T: Scalar = f64> {
    /// Combined L (below diagonal, unit diagonal implied) and U (upper).
    lu: DMat<T>,
    /// Row permutation: row `i` of the factored matrix came from `perm[i]`.
    perm: Vec<usize>,
    /// Sign of the permutation, `+1.0` or `-1.0` (used for determinants).
    perm_sign: f64,
}

/// Relative pivot threshold below which a matrix is declared singular.
const PIVOT_REL_TOL: f64 = 1e-13;

impl<T: Scalar> Lu<T> {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`MathError::DimensionMismatch`] if `a` is not square.
    /// * [`MathError::SingularMatrix`] if no acceptable pivot exists in
    ///   some column (relative to the largest entry of the matrix).
    pub fn factor(a: &DMat<T>) -> crate::Result<Lu<T>> {
        if !a.is_square() {
            return Err(MathError::dims(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        // Per-column scale references for the singularity test: a pivot is
        // acceptable relative to its own column's magnitude, so badly
        // scaled but regular matrices (common in companion forms and MNA)
        // are not misdiagnosed as singular.
        let col_scale: Vec<f64> = (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| a[(i, j)].modulus())
                    .fold(f64::MIN_POSITIVE, f64::max)
            })
            .collect();

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut pmax = lu[(k, k)].modulus();
            for i in (k + 1)..n {
                let m = lu[(i, k)].modulus();
                if m > pmax {
                    pmax = m;
                    p = i;
                }
            }
            // NaN pivots must also be rejected, hence partial_cmp.
            let threshold = col_scale[k] * PIVOT_REL_TOL;
            if pmax.partial_cmp(&threshold) != Some(std::cmp::Ordering::Greater) {
                return Err(MathError::SingularMatrix { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == T::ZERO {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &DVec<T>) -> crate::Result<DVec<T>> {
        let n = self.dim();
        if b.len() != n {
            return Err(MathError::dims(
                format!("rhs of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        // Apply permutation.
        let mut x = DVec::zeros(n);
        for i in 0..n {
            x[i] = b[self.perm[i]];
        }
        // Forward substitution (unit lower-triangular).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `B.rows() != self.dim()`.
    pub fn solve_mat(&self, b: &DMat<T>) -> crate::Result<DMat<T>> {
        let n = self.dim();
        if b.rows() != n {
            return Err(MathError::dims(
                format!("rhs with {n} rows"),
                format!("{} rows", b.rows()),
            ));
        }
        let mut x = DMat::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col: DVec<T> = (0..n).map(|i| b[(i, j)]).collect();
            let sol = self.solve(&col)?;
            for i in 0..n {
                x[(i, j)] = sol[i];
            }
        }
        Ok(x)
    }

    /// Computes the determinant from the factorization.
    pub fn det(&self) -> T {
        let mut d = T::from_f64(self.perm_sign);
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Computes the matrix inverse (solves against the identity).
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a valid factorization).
    pub fn inverse(&self) -> crate::Result<DMat<T>> {
        self.solve_mat(&DMat::identity(self.dim()))
    }
}

/// Convenience: factor-and-solve in one call.
///
/// Prefer constructing an [`Lu`] when solving repeatedly against the same
/// matrix.
///
/// # Errors
///
/// See [`Lu::factor`] and [`Lu::solve`].
pub fn solve_dense<T: Scalar>(a: &DMat<T>, b: &DVec<T>) -> crate::Result<DVec<T>> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn solves_3x3() {
        let a = DMat::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = DVec::from(vec![8.0, -11.0, -3.0]);
        let x = solve_dense(&a, &b).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expect.iter()) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve_dense(&a, &DVec::from(vec![2.0, 3.0])).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match Lu::factor(&a) {
            Err(MathError::SingularMatrix { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a: DMat<f64> = DMat::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_with_permutation_sign() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
        let b = DMat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((Lu::factor(&b).unwrap().det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DMat::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        let i: DMat<f64> = DMat::identity(2);
        assert!((&prod - &i).norm_inf() < 1e-12);
    }

    #[test]
    fn complex_solve() {
        let j = Complex64::J;
        // (1+j)·x = 2  =>  x = 1 - j
        let a = DMat::from_rows(&[&[Complex64::ONE + j]]);
        let b = DVec::from(vec![Complex64::from_real(2.0)]);
        let x = solve_dense(&a, &b).unwrap();
        assert!((x[0] - Complex64::new(1.0, -1.0)).abs() < 1e-12);
    }

    #[test]
    fn reuse_factorization_for_many_rhs() {
        let a = DMat::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let lu = Lu::factor(&a).unwrap();
        for k in 1..5 {
            let b = DVec::from(vec![k as f64, 2.0 * k as f64]);
            let x = lu.solve(&b).unwrap();
            let r = &a.mul_vec(&x).unwrap() - &b;
            assert!(r.norm_inf() < 1e-12);
        }
    }
}
