//! Interpolation utilities.
//!
//! The DE↔CT synchronization layer needs to read continuous waveforms at
//! event times that fall between solver timepoints; these helpers provide
//! the interpolation used by converter ports and waveform probes.

use crate::MathError;

/// Linear interpolation between two points.
///
/// Returns `y0` when `x1 == x0` to avoid division by zero on degenerate
/// segments.
pub fn lerp(x0: f64, y0: f64, x1: f64, y1: f64, x: f64) -> f64 {
    if x1 == x0 {
        return y0;
    }
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// A sampled waveform supporting interpolated lookup.
///
/// Timepoints must be non-decreasing; lookups outside the range clamp to
/// the end values (zero-order hold at the boundaries).
///
/// # Example
///
/// ```
/// use ams_math::interp::Series;
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let mut s = Series::new();
/// s.push(0.0, 0.0)?;
/// s.push(1.0, 10.0)?;
/// assert_eq!(s.sample(0.5), 5.0);
/// assert_eq!(s.sample(-1.0), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    t: Vec<f64>,
    y: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Creates a series from parallel time/value vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if lengths differ or the
    /// times are decreasing.
    pub fn from_points(t: Vec<f64>, y: Vec<f64>) -> crate::Result<Self> {
        if t.len() != y.len() {
            return Err(MathError::invalid("time and value lengths differ"));
        }
        if t.windows(2).any(|w| w[1] < w[0]) {
            return Err(MathError::invalid("timepoints must be non-decreasing"));
        }
        Ok(Series { t, y })
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if `t` is earlier than the
    /// last sample.
    pub fn push(&mut self, t: f64, y: f64) -> crate::Result<()> {
        if let Some(&last) = self.t.last() {
            if t < last {
                return Err(MathError::invalid(format!(
                    "non-monotonic sample: {t} after {last}"
                )));
            }
        }
        self.t.push(t);
        self.y.push(y);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Returns `true` if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Timepoints.
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Values.
    pub fn values(&self) -> &[f64] {
        &self.y
    }

    /// Linearly interpolates the waveform at `x`, clamping at the ends.
    ///
    /// Returns `0.0` for an empty series.
    pub fn sample(&self, x: f64) -> f64 {
        if self.t.is_empty() {
            return 0.0;
        }
        let n = self.t.len();
        if x <= self.t[0] {
            return self.y[0];
        }
        if x >= self.t[n - 1] {
            return self.y[n - 1];
        }
        // Binary search for the bracketing segment.
        let idx = self.t.partition_point(|&ti| ti <= x);
        let (i0, i1) = (idx - 1, idx.min(n - 1));
        lerp(self.t[i0], self.y[i0], self.t[i1], self.y[i1], x)
    }

    /// Resamples the waveform uniformly into `n` points over `[t0, t1]`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if `n < 2` or `t1 <= t0`.
    pub fn resample(&self, t0: f64, t1: f64, n: usize) -> crate::Result<Vec<f64>> {
        if n < 2 {
            return Err(MathError::invalid("need at least 2 resample points"));
        }
        if t1 <= t0 {
            return Err(MathError::invalid("t1 must be greater than t0"));
        }
        let dt = (t1 - t0) / (n - 1) as f64;
        Ok((0..n).map(|i| self.sample(t0 + i as f64 * dt)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_basics() {
        assert_eq!(lerp(0.0, 0.0, 2.0, 4.0, 1.0), 2.0);
        assert_eq!(lerp(1.0, 5.0, 1.0, 9.0, 1.0), 5.0); // degenerate
    }

    #[test]
    fn series_sample_interior_and_clamp() {
        let s = Series::from_points(vec![0.0, 1.0, 3.0], vec![0.0, 10.0, 30.0]).unwrap();
        assert_eq!(s.sample(0.5), 5.0);
        assert_eq!(s.sample(2.0), 20.0);
        assert_eq!(s.sample(-5.0), 0.0);
        assert_eq!(s.sample(99.0), 30.0);
    }

    #[test]
    fn series_rejects_non_monotonic() {
        let mut s = Series::new();
        s.push(1.0, 0.0).unwrap();
        assert!(s.push(0.5, 0.0).is_err());
        assert!(Series::from_points(vec![1.0, 0.0], vec![0.0, 0.0]).is_err());
        assert!(Series::from_points(vec![0.0], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn duplicate_timepoints_allowed_for_steps() {
        // A DE-style step: value changes at the same timestamp.
        let s = Series::from_points(vec![0.0, 1.0, 1.0, 2.0], vec![0.0, 0.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.sample(0.5), 0.0);
        assert_eq!(s.sample(1.5), 5.0);
    }

    #[test]
    fn resample_uniform() {
        let s = Series::from_points(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        let r = s.resample(0.0, 1.0, 5).unwrap();
        assert_eq!(r, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert!(s.resample(0.0, 1.0, 1).is_err());
        assert!(s.resample(1.0, 0.0, 5).is_err());
    }

    #[test]
    fn empty_series_samples_zero() {
        assert_eq!(Series::new().sample(1.0), 0.0);
        assert!(Series::new().is_empty());
    }
}
