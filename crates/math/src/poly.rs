use crate::{Complex64, MathError};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A real-coefficient polynomial in ascending order of powers:
/// `c[0] + c[1]·x + c[2]·x² + …`.
///
/// Used for the numerator/denominator of Laplace transfer functions and
/// for converting between zero-pole and rational forms. Root finding uses
/// the Durand–Kerner (Weierstrass) simultaneous iteration, which is robust
/// for the modest degrees (≲ 20) typical of behavioural AMS models.
///
/// # Example
///
/// ```
/// use ams_math::Poly;
///
/// // x² - 3x + 2 = (x - 1)(x - 2)
/// let p = Poly::new(vec![2.0, -3.0, 1.0]);
/// let mut roots: Vec<f64> = p.roots().unwrap().iter().map(|r| r.re).collect();
/// roots.sort_by(f64::total_cmp);
/// assert!((roots[0] - 1.0).abs() < 1e-9 && (roots[1] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Creates a polynomial from ascending coefficients, trimming
    /// (exactly) zero leading terms.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: vec![0.0] }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { coeffs: vec![1.0] }
    }

    /// Builds the monic polynomial with the given real roots:
    /// `∏ (x - rᵢ)`.
    pub fn from_real_roots(roots: &[f64]) -> Self {
        let mut p = Poly::one();
        for &r in roots {
            p = &p * &Poly::new(vec![-r, 1.0]);
        }
        p
    }

    /// Builds a real polynomial from complex roots.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if the roots are not closed
    /// under conjugation (within `tol`), since the result must have real
    /// coefficients.
    pub fn from_complex_roots(roots: &[Complex64], tol: f64) -> crate::Result<Self> {
        // Multiply out in complex arithmetic, then check imaginary residue.
        let mut c = vec![Complex64::ONE];
        for &r in roots {
            let mut next = vec![Complex64::ZERO; c.len() + 1];
            for (i, &ci) in c.iter().enumerate() {
                next[i + 1] += ci;
                next[i] -= ci * r;
            }
            c = next;
        }
        let scale = c.iter().map(|z| z.abs()).fold(1.0, f64::max);
        let mut coeffs = Vec::with_capacity(c.len());
        for z in &c {
            if z.im.abs() > tol * scale {
                return Err(MathError::invalid(format!(
                    "roots are not conjugate-symmetric (imaginary residue {:.3e})",
                    z.im
                )));
            }
            coeffs.push(z.re);
        }
        Ok(Poly::new(coeffs))
    }

    /// Degree of the polynomial (0 for constants, including zero).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Ascending coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Leading (highest-power) coefficient.
    pub fn leading(&self) -> f64 {
        *self.coeffs.last().expect("poly always has a coefficient")
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.len() == 1 && self.coeffs[0] == 0.0
    }

    /// Evaluates at a real point via Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point via Horner's rule (used for `s = jω`).
    pub fn eval_complex(&self, s: Complex64) -> Complex64 {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex64::ZERO, |acc, &c| acc * s + c)
    }

    /// Returns the derivative polynomial.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, &c)| c * (i + 1) as f64)
                .collect(),
        )
    }

    /// Scales all coefficients by `k`.
    pub fn scale(&self, k: f64) -> Poly {
        Poly::new(self.coeffs.iter().map(|&c| c * k).collect())
    }

    /// Substitutes `x → k·x`, i.e. returns `p(k·x)` (frequency scaling).
    pub fn scale_arg(&self, k: f64) -> Poly {
        let mut pow = 1.0;
        Poly::new(
            self.coeffs
                .iter()
                .map(|&c| {
                    let v = c * pow;
                    pow *= k;
                    v
                })
                .collect(),
        )
    }

    /// Finds all complex roots with the Durand–Kerner iteration.
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidArgument`] for the zero polynomial.
    /// * [`MathError::NoConvergence`] if the iteration fails (rare; the
    ///   iteration is started from a scaled non-real geometric sequence).
    pub fn roots(&self) -> crate::Result<Vec<Complex64>> {
        if self.is_zero() {
            return Err(MathError::invalid("zero polynomial has no defined roots"));
        }
        let n = self.degree();
        if n == 0 {
            return Ok(Vec::new());
        }
        // Normalize to a monic polynomial in complex arithmetic.
        let lead = self.leading();
        let monic: Vec<Complex64> = self
            .coeffs
            .iter()
            .map(|&c| Complex64::from_real(c / lead))
            .collect();

        // Cauchy bound for root magnitude gives the start radius.
        let bound = 1.0 + monic[..n].iter().map(|c| c.abs()).fold(0.0, f64::max);
        let radius = bound.clamp(1e-3, 1e6);

        let eval = |z: Complex64| -> Complex64 {
            monic
                .iter()
                .rev()
                .fold(Complex64::ZERO, |acc, &c| acc * z + c)
        };

        // Start points: z_k = r · (0.4 + 0.9j)^k (classic non-symmetric seed).
        let seed = Complex64::new(0.4, 0.9);
        let mut z: Vec<Complex64> = (0..n)
            .map(|k| seed.powi(k as i32 + 1).scale(radius))
            .collect();

        const MAX_ITER: usize = 500;
        let tol = 1e-13 * radius.max(1.0);
        for _ in 0..MAX_ITER {
            let mut max_step = 0.0f64;
            for i in 0..n {
                let mut denom = Complex64::ONE;
                for j in 0..n {
                    if j != i {
                        denom *= z[i] - z[j];
                    }
                }
                if denom.abs() == 0.0 {
                    // Perturb coincident estimates.
                    z[i] += Complex64::new(1e-8 * radius, 1e-8 * radius);
                    continue;
                }
                let step = eval(z[i]) / denom;
                z[i] -= step;
                max_step = max_step.max(step.abs());
            }
            if max_step < tol {
                // Snap near-real roots to the real axis for cleanliness.
                for r in &mut z {
                    if r.im.abs() < 1e-8 * (1.0 + r.re.abs()) {
                        r.im = 0.0;
                    }
                }
                return Ok(z);
            }
        }
        Err(MathError::NoConvergence {
            iterations: MAX_ITER,
            residual: z.iter().map(|&zi| eval(zi).abs()).fold(0.0, f64::max),
        })
    }
}

impl Poly {
    fn trim(&mut self) {
        while self.coeffs.len() > 1 && *self.coeffs.last().expect("nonempty") == 0.0 {
            self.coeffs.pop();
        }
        if self.coeffs.is_empty() {
            self.coeffs.push(0.0);
        }
    }
}

impl Default for Poly {
    fn default() -> Self {
        Poly::zero()
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 => write!(f, "{a}·x")?,
                _ => write!(f, "{a}·x^{i}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut c = vec![0.0; n];
        for (i, &a) in self.coeffs.iter().enumerate() {
            c[i] += a;
        }
        for (i, &b) in rhs.coeffs.iter().enumerate() {
            c[i] += b;
        }
        Poly::new(c)
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut c = vec![0.0; n];
        for (i, &a) in self.coeffs.iter().enumerate() {
            c[i] += a;
        }
        for (i, &b) in rhs.coeffs.iter().enumerate() {
            c[i] -= b;
        }
        Poly::new(c)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        let mut c = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                c[i + j] += a * b;
            }
        }
        Poly::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_eval() {
        let p = Poly::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x²
        let q = Poly::new(vec![0.0, 1.0]); // x
        assert_eq!((&p + &q).coeffs(), &[1.0, 3.0, 3.0]);
        assert_eq!((&p - &q).coeffs(), &[1.0, 1.0, 3.0]);
        assert_eq!((&p * &q).coeffs(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(p.eval(2.0), 1.0 + 4.0 + 12.0);
    }

    #[test]
    fn trim_removes_leading_zeros() {
        let p = Poly::new(vec![1.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 0);
        assert_eq!(p.coeffs(), &[1.0]);
    }

    #[test]
    fn derivative() {
        let p = Poly::new(vec![1.0, 2.0, 3.0]); // 1 + 2x + 3x²
        assert_eq!(p.derivative().coeffs(), &[2.0, 6.0]);
        assert_eq!(Poly::new(vec![5.0]).derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn real_roots_found() {
        let p = Poly::from_real_roots(&[1.0, 2.0, -3.0]);
        let mut roots: Vec<f64> = p.roots().unwrap().iter().map(|r| r.re).collect();
        roots.sort_by(f64::total_cmp);
        assert!((roots[0] + 3.0).abs() < 1e-8);
        assert!((roots[1] - 1.0).abs() < 1e-8);
        assert!((roots[2] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn complex_conjugate_roots_found() {
        // x² + 2x + 5 has roots -1 ± 2j
        let p = Poly::new(vec![5.0, 2.0, 1.0]);
        let roots = p.roots().unwrap();
        assert_eq!(roots.len(), 2);
        for r in roots {
            assert!((r.re + 1.0).abs() < 1e-8);
            assert!((r.im.abs() - 2.0).abs() < 1e-8);
        }
    }

    #[test]
    fn from_complex_roots_roundtrip() {
        let roots = [Complex64::new(-1.0, 2.0), Complex64::new(-1.0, -2.0)];
        let p = Poly::from_complex_roots(&roots, 1e-9).unwrap();
        assert!((p.coeffs()[0] - 5.0).abs() < 1e-12);
        assert!((p.coeffs()[1] - 2.0).abs() < 1e-12);
        assert!((p.coeffs()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_complex_roots_rejects_asymmetric() {
        let roots = [Complex64::new(0.0, 1.0)]; // lone imaginary root
        assert!(Poly::from_complex_roots(&roots, 1e-9).is_err());
    }

    #[test]
    fn zero_poly_roots_error() {
        assert!(Poly::zero().roots().is_err());
        assert!(Poly::new(vec![3.0]).roots().unwrap().is_empty());
    }

    #[test]
    fn eval_complex_matches_real() {
        let p = Poly::new(vec![1.0, -2.0, 0.5]);
        let x = 1.7;
        let z = p.eval_complex(Complex64::from_real(x));
        assert!((z.re - p.eval(x)).abs() < 1e-12);
        assert!(z.im.abs() < 1e-12);
    }

    #[test]
    fn scale_arg_scales_frequency() {
        // p(x) = x, p(2x) = 2x
        let p = Poly::new(vec![0.0, 1.0]);
        assert_eq!(p.scale_arg(2.0).coeffs(), &[0.0, 2.0]);
        // p(x) = x², p(3x) = 9x²
        let p = Poly::new(vec![0.0, 0.0, 1.0]);
        assert_eq!(p.scale_arg(3.0).coeffs(), &[0.0, 0.0, 9.0]);
    }

    #[test]
    fn high_degree_root_finding() {
        // Wilkinson-lite: roots 1..=8
        let roots_in: Vec<f64> = (1..=8).map(|k| k as f64).collect();
        let p = Poly::from_real_roots(&roots_in);
        let mut roots: Vec<f64> = p.roots().unwrap().iter().map(|r| r.re).collect();
        roots.sort_by(f64::total_cmp);
        for (got, want) in roots.iter().zip(roots_in.iter()) {
            assert!((got - want).abs() < 1e-5, "got {got}, want {want}");
        }
    }

    #[test]
    fn display_is_readable() {
        let p = Poly::new(vec![1.0, -2.0, 3.0]);
        assert_eq!(p.to_string(), "3·x^2 - 2·x + 1");
    }
}
