//! Explicit ODE integrators for first-order systems `ẋ = f(t, x)`.
//!
//! These implement the classic Continuous System Simulation Language (CSSL)
//! discretization the paper cites: the state derivatives are evaluated with
//! an explicit formula and the state is advanced as a sequence of
//! assignments. Fixed-step Euler/Heun/RK4 are provided for synchronization
//! with SDF rates (paper phase 1), and an adaptive embedded
//! Runge–Kutta–Fehlberg 4(5) pair for variable-timestep integration
//! (phase 2).
//!
//! # Example
//!
//! ```
//! use ams_math::ode::{FixedStep, OdeMethod};
//!
//! // ẋ = -x, x(0) = 1  →  x(t) = e^{-t}
//! let mut x = vec![1.0];
//! let mut stepper = FixedStep::new(OdeMethod::Rk4, 1e-3);
//! let mut rhs = |_t: f64, x: &[f64], dx: &mut [f64]| dx[0] = -x[0];
//! let mut t = 0.0;
//! while t < 1.0 {
//!     stepper.step(&mut rhs, &mut t, &mut x);
//! }
//! assert!((x[0] - (-1.0f64).exp()).abs() < 1e-9);
//! ```

use crate::MathError;

/// Right-hand side of `ẋ = f(t, x)`: fills `dx` with the derivative.
///
/// Using a writable output slice avoids per-step allocation in inner loops.
pub trait OdeRhs {
    /// Evaluates the derivative at time `t` and state `x` into `dx`.
    fn eval(&mut self, t: f64, x: &[f64], dx: &mut [f64]);
}

impl<F: FnMut(f64, &[f64], &mut [f64])> OdeRhs for F {
    fn eval(&mut self, t: f64, x: &[f64], dx: &mut [f64]) {
        self(t, x, dx)
    }
}

/// The explicit fixed-step methods available to [`FixedStep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OdeMethod {
    /// Forward Euler — first order, one derivative evaluation per step.
    Euler,
    /// Heun (explicit trapezoidal) — second order, two evaluations.
    Heun,
    /// Classic Runge–Kutta — fourth order, four evaluations.
    #[default]
    Rk4,
}

impl OdeMethod {
    /// The order of accuracy of the method (global error ∝ hᵒʳᵈᵉʳ).
    pub fn order(self) -> u32 {
        match self {
            OdeMethod::Euler => 1,
            OdeMethod::Heun => 2,
            OdeMethod::Rk4 => 4,
        }
    }
}

/// A fixed-step explicit integrator with preallocated work buffers.
///
/// Suited to oversampled signal-processing systems where the timestep is
/// locked to the SDF sample rate (paper §3: "Linear ODE systems … can be
/// solved using a fixed integration time step that can be synchronized
/// with the rate at which samples are handled by the SDF model").
#[derive(Debug, Clone)]
pub struct FixedStep {
    method: OdeMethod,
    h: f64,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl FixedStep {
    /// Creates a fixed-step integrator with step size `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not strictly positive and finite.
    pub fn new(method: OdeMethod, h: f64) -> Self {
        assert!(
            h > 0.0 && h.is_finite(),
            "step size must be positive and finite"
        );
        FixedStep {
            method,
            h,
            k1: Vec::new(),
            k2: Vec::new(),
            k3: Vec::new(),
            k4: Vec::new(),
            tmp: Vec::new(),
        }
    }

    /// The configured step size.
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// Changes the step size (e.g. after a TDF timestep reassignment).
    ///
    /// # Panics
    ///
    /// Panics if `h` is not strictly positive and finite.
    pub fn set_step_size(&mut self, h: f64) {
        assert!(
            h > 0.0 && h.is_finite(),
            "step size must be positive and finite"
        );
        self.h = h;
    }

    fn ensure(&mut self, n: usize) {
        if self.k1.len() != n {
            self.k1 = vec![0.0; n];
            self.k2 = vec![0.0; n];
            self.k3 = vec![0.0; n];
            self.k4 = vec![0.0; n];
            self.tmp = vec![0.0; n];
        }
    }

    /// Advances `x` from `*t` to `*t + h` in place.
    #[allow(clippy::needless_range_loop)]
    pub fn step(&mut self, f: &mut dyn OdeRhs, t: &mut f64, x: &mut [f64]) {
        let n = x.len();
        self.ensure(n);
        let h = self.h;
        match self.method {
            OdeMethod::Euler => {
                f.eval(*t, x, &mut self.k1);
                for i in 0..n {
                    x[i] += h * self.k1[i];
                }
            }
            OdeMethod::Heun => {
                f.eval(*t, x, &mut self.k1);
                for i in 0..n {
                    self.tmp[i] = x[i] + h * self.k1[i];
                }
                f.eval(*t + h, &self.tmp, &mut self.k2);
                for i in 0..n {
                    x[i] += h * 0.5 * (self.k1[i] + self.k2[i]);
                }
            }
            OdeMethod::Rk4 => {
                f.eval(*t, x, &mut self.k1);
                for i in 0..n {
                    self.tmp[i] = x[i] + 0.5 * h * self.k1[i];
                }
                f.eval(*t + 0.5 * h, &self.tmp, &mut self.k2);
                for i in 0..n {
                    self.tmp[i] = x[i] + 0.5 * h * self.k2[i];
                }
                f.eval(*t + 0.5 * h, &self.tmp, &mut self.k3);
                for i in 0..n {
                    self.tmp[i] = x[i] + h * self.k3[i];
                }
                f.eval(*t + h, &self.tmp, &mut self.k4);
                for i in 0..n {
                    x[i] +=
                        h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
                }
            }
        }
        *t += h;
    }

    /// Integrates from `t0` to `t1`, returning the number of steps taken.
    ///
    /// The last step is shortened to land exactly on `t1`.
    pub fn integrate(&mut self, f: &mut dyn OdeRhs, t0: f64, t1: f64, x: &mut [f64]) -> usize {
        let mut t = t0;
        let mut steps = 0;
        let saved_h = self.h;
        while t < t1 {
            if t + self.h > t1 {
                self.h = t1 - t;
                if self.h <= 0.0 {
                    break;
                }
            }
            self.step(f, &mut t, x);
            steps += 1;
        }
        self.h = saved_h;
        steps
    }
}

/// Tolerances and step bounds for [`AdaptiveRkf45`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveOptions {
    /// Relative error tolerance per step.
    pub rel_tol: f64,
    /// Absolute error tolerance per step.
    pub abs_tol: f64,
    /// Smallest allowed step before reporting underflow.
    pub min_step: f64,
    /// Largest allowed step.
    pub max_step: f64,
    /// Initial step size guess.
    pub initial_step: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
            min_step: 1e-15,
            max_step: f64::INFINITY,
            initial_step: 1e-6,
        }
    }
}

/// Statistics reported by an adaptive integration run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdaptiveStats {
    /// Steps that were accepted.
    pub accepted: usize,
    /// Steps that were rejected and retried with a smaller size.
    pub rejected: usize,
    /// Derivative evaluations performed.
    pub evals: usize,
}

/// Adaptive Runge–Kutta–Fehlberg 4(5) integrator with PI-free step control.
///
/// Implements the variable-timestep requirement of the paper's phase 2
/// ("the support of non linear DAEs and their simulation using variable
/// time steps") for non-stiff systems; stiff systems should use the
/// implicit methods in [`crate::implicit`].
#[derive(Debug, Clone)]
pub struct AdaptiveRkf45 {
    opts: AdaptiveOptions,
}

impl AdaptiveRkf45 {
    /// Creates an adaptive integrator with the given options.
    pub fn new(opts: AdaptiveOptions) -> Self {
        AdaptiveRkf45 { opts }
    }

    /// Integrates `ẋ = f(t, x)` from `t0` to `t1` in place.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::StepSizeUnderflow`] if error control pushes the
    /// step below `min_step`, and [`MathError::InvalidArgument`] if
    /// `t1 < t0`.
    pub fn integrate(
        &self,
        f: &mut dyn OdeRhs,
        t0: f64,
        t1: f64,
        x: &mut [f64],
    ) -> crate::Result<AdaptiveStats> {
        if t1 < t0 {
            return Err(MathError::invalid("t1 must be >= t0"));
        }
        let n = x.len();
        let mut k = vec![vec![0.0; n]; 6];
        let mut tmp = vec![0.0; n];
        let mut x5 = vec![0.0; n];
        let mut stats = AdaptiveStats::default();

        // Fehlberg coefficients.
        const A: [f64; 5] = [1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0];
        const B: [[f64; 5]; 5] = [
            [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
            [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
            [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
            [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
            [
                -8.0 / 27.0,
                2.0,
                -3544.0 / 2565.0,
                1859.0 / 4104.0,
                -11.0 / 40.0,
            ],
        ];
        // 4th-order solution weights.
        const C4: [f64; 6] = [
            25.0 / 216.0,
            0.0,
            1408.0 / 2565.0,
            2197.0 / 4104.0,
            -1.0 / 5.0,
            0.0,
        ];
        // 5th-order solution weights.
        const C5: [f64; 6] = [
            16.0 / 135.0,
            0.0,
            6656.0 / 12825.0,
            28561.0 / 56430.0,
            -9.0 / 50.0,
            2.0 / 55.0,
        ];

        let mut t = t0;
        let mut h = self.opts.initial_step.min(t1 - t0).max(self.opts.min_step);
        if t1 == t0 {
            return Ok(stats);
        }

        while t < t1 {
            if t + h > t1 {
                h = t1 - t;
            }
            // Stage evaluations.
            f.eval(t, x, &mut k[0]);
            stats.evals += 1;
            for s in 0..5 {
                for i in 0..n {
                    let mut acc = x[i];
                    for (j, kj) in k.iter().enumerate().take(s + 1) {
                        acc += h * B[s][j] * kj[i];
                    }
                    tmp[i] = acc;
                }
                f.eval(t + A[s] * h, &tmp, &mut k[s + 1]);
                stats.evals += 1;
            }
            // 4th/5th order candidates and error estimate.
            let mut err = 0.0f64;
            for i in 0..n {
                let mut y4 = x[i];
                let mut y5 = x[i];
                for (s, ks) in k.iter().enumerate() {
                    y4 += h * C4[s] * ks[i];
                    y5 += h * C5[s] * ks[i];
                }
                x5[i] = y5;
                let scale = self.opts.abs_tol + self.opts.rel_tol * x[i].abs().max(y5.abs());
                err = err.max(((y5 - y4) / scale).abs());
            }

            if err <= 1.0 || h <= self.opts.min_step {
                // Accept (propagate the higher-order solution).
                x.copy_from_slice(&x5);
                t += h;
                stats.accepted += 1;
            } else {
                stats.rejected += 1;
            }

            // Step-size update with safety factor and growth clamps.
            let factor = if err > 0.0 {
                (0.9 * err.powf(-0.2)).clamp(0.2, 5.0)
            } else {
                5.0
            };
            h = (h * factor).clamp(self.opts.min_step, self.opts.max_step);
            if h <= self.opts.min_step && err > 1.0 {
                return Err(MathError::StepSizeUnderflow { time: t, step: h });
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decay(_t: f64, x: &[f64], dx: &mut [f64]) {
        dx[0] = -x[0];
    }

    fn run_fixed(method: OdeMethod, h: f64) -> f64 {
        let mut x = vec![1.0];
        let mut s = FixedStep::new(method, h);
        s.integrate(&mut decay, 0.0, 1.0, &mut x);
        (x[0] - (-1.0f64).exp()).abs()
    }

    #[test]
    fn euler_first_order_convergence() {
        let e1 = run_fixed(OdeMethod::Euler, 1e-2);
        let e2 = run_fixed(OdeMethod::Euler, 5e-3);
        let ratio = e1 / e2;
        assert!((1.6..2.4).contains(&ratio), "euler order ratio {ratio}");
    }

    #[test]
    fn heun_second_order_convergence() {
        let e1 = run_fixed(OdeMethod::Heun, 1e-2);
        let e2 = run_fixed(OdeMethod::Heun, 5e-3);
        let ratio = e1 / e2;
        assert!((3.5..4.5).contains(&ratio), "heun order ratio {ratio}");
    }

    #[test]
    fn rk4_fourth_order_convergence() {
        let e1 = run_fixed(OdeMethod::Rk4, 1e-2);
        let e2 = run_fixed(OdeMethod::Rk4, 5e-3);
        let ratio = e1 / e2;
        assert!((12.0..20.0).contains(&ratio), "rk4 order ratio {ratio}");
    }

    #[test]
    fn integrate_lands_exactly_on_t1() {
        let mut x = vec![1.0];
        let mut s = FixedStep::new(OdeMethod::Rk4, 0.3);
        let steps = s.integrate(&mut decay, 0.0, 1.0, &mut x);
        assert_eq!(steps, 4); // 0.3 + 0.3 + 0.3 + 0.1
        assert!((x[0] - (-1.0f64).exp()).abs() < 1e-4);
        assert_eq!(
            s.step_size(),
            0.3,
            "step size restored after clamped last step"
        );
    }

    #[test]
    fn harmonic_oscillator_energy_rk4() {
        // ẍ = -x as a first-order system; RK4 should conserve energy well.
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = x[1];
            dx[1] = -x[0];
        };
        let mut x = vec![1.0, 0.0];
        let mut s = FixedStep::new(OdeMethod::Rk4, 1e-3);
        s.integrate(&mut f, 0.0, 2.0 * std::f64::consts::PI, &mut x);
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!(x[1].abs() < 1e-8);
    }

    #[test]
    fn adaptive_matches_analytic() {
        let rkf = AdaptiveRkf45::new(AdaptiveOptions {
            rel_tol: 1e-9,
            abs_tol: 1e-12,
            ..AdaptiveOptions::default()
        });
        let mut x = vec![1.0];
        let stats = rkf.integrate(&mut decay, 0.0, 3.0, &mut x).unwrap();
        assert!((x[0] - (-3.0f64).exp()).abs() < 1e-8);
        assert!(stats.accepted > 0);
    }

    #[test]
    fn adaptive_takes_fewer_steps_on_smooth_regions() {
        // A pulse-like RHS: fast transient then flat. Adaptive should take
        // far fewer steps than a fixed-step integrator of equal accuracy.
        let mut f = |t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = -100.0 * (x[0] - 1.0) * (-t).exp();
        };
        let rkf = AdaptiveRkf45::new(AdaptiveOptions {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
            initial_step: 1e-4,
            ..AdaptiveOptions::default()
        });
        let mut x = vec![0.0];
        let stats = rkf.integrate(&mut f, 0.0, 10.0, &mut x).unwrap();
        assert!(
            stats.accepted < 2000,
            "adaptive used too many steps: {}",
            stats.accepted
        );
        assert!((x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn adaptive_rejects_reverse_time() {
        let rkf = AdaptiveRkf45::new(AdaptiveOptions::default());
        let mut x = vec![1.0];
        assert!(rkf.integrate(&mut decay, 1.0, 0.0, &mut x).is_err());
    }

    #[test]
    fn adaptive_zero_span_is_noop() {
        let rkf = AdaptiveRkf45::new(AdaptiveOptions::default());
        let mut x = vec![1.0];
        let stats = rkf.integrate(&mut decay, 1.0, 1.0, &mut x).unwrap();
        assert_eq!(stats.accepted, 0);
        assert_eq!(x[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_size_panics() {
        let _ = FixedStep::new(OdeMethod::Euler, 0.0);
    }
}
