//! Radix-2 FFT, window functions and spectral helpers.
//!
//! Frequency-domain behaviour is a first-class requirement of the paper
//! ("many frequency-based simulation methods have been developed…", §2;
//! "SystemC-AMS will also have to support at least small-signal linear
//! frequency-domain analysis", §3). The FFT here backs the waveform
//! post-processing (PSD, SNR, ENOB in `ams-wave`) used to evaluate the
//! ADC and sigma-delta examples.

use crate::{Complex64, MathError};

/// Returns `true` if `n` is a power of two (and non-zero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if the length is not a power of
/// two.
///
/// # Example
///
/// ```
/// use ams_math::{fft, Complex64};
///
/// # fn main() -> Result<(), ams_math::MathError> {
/// let mut x = vec![Complex64::ONE; 4];
/// fft::fft(&mut x)?;
/// assert!((x[0].re - 4.0).abs() < 1e-12); // DC bin picks up the sum
/// assert!(x[1].abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft(x: &mut [Complex64]) -> crate::Result<()> {
    transform(x, false)
}

/// In-place inverse FFT (includes the 1/N normalization).
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if the length is not a power of
/// two.
pub fn ifft(x: &mut [Complex64]) -> crate::Result<()> {
    transform(x, true)?;
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = *v / n;
    }
    Ok(())
}

fn transform(x: &mut [Complex64], inverse: bool) -> crate::Result<()> {
    let n = x.len();
    if !is_power_of_two(n) {
        return Err(MathError::invalid(format!(
            "fft length must be a power of two, got {n}"
        )));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Computes the FFT of a real signal, returning the full complex spectrum.
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn fft_real(x: &[f64]) -> crate::Result<Vec<Complex64>> {
    let mut buf: Vec<Complex64> = x.iter().map(|&v| Complex64::from_real(v)).collect();
    fft(&mut buf)?;
    Ok(buf)
}

/// Window functions for spectral estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No windowing (rectangular).
    Rectangular,
    /// Hann window — good general-purpose leakage suppression.
    #[default]
    Hann,
    /// Blackman window — stronger sidelobe suppression for SNR metrics.
    Blackman,
}

impl Window {
    /// Evaluates the window at sample `i` of `n`.
    pub fn value(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI * x;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * tau.cos(),
            Window::Blackman => 0.42 - 0.5 * tau.cos() + 0.08 * (2.0 * tau).cos(),
        }
    }

    /// Returns the coherent gain (mean of the window), used to normalize
    /// amplitude spectra.
    pub fn coherent_gain(self, n: usize) -> f64 {
        (0..n).map(|i| self.value(i, n)).sum::<f64>() / n as f64
    }

    /// Returns the equivalent noise bandwidth in bins, used to normalize
    /// power spectral densities.
    pub fn enbw(self, n: usize) -> f64 {
        let sum: f64 = (0..n).map(|i| self.value(i, n)).sum();
        let sum_sq: f64 = (0..n).map(|i| self.value(i, n).powi(2)).sum();
        n as f64 * sum_sq / (sum * sum)
    }

    /// Applies the window to a signal in place.
    pub fn apply(self, x: &mut [f64]) {
        let n = x.len();
        for (i, v) in x.iter_mut().enumerate() {
            *v *= self.value(i, n);
        }
    }
}

/// One-sided amplitude spectrum of a real signal (bins `0..=n/2`).
///
/// Amplitudes are corrected for the window's coherent gain so a full-scale
/// coherently-sampled sine reads its true amplitude.
///
/// # Errors
///
/// Same conditions as [`fft`].
pub fn amplitude_spectrum(x: &[f64], window: Window) -> crate::Result<Vec<f64>> {
    let n = x.len();
    let mut w = x.to_vec();
    window.apply(&mut w);
    let spec = fft_real(&w)?;
    let gain = window.coherent_gain(n) * n as f64;
    let half = n / 2;
    let mut out = Vec::with_capacity(half + 1);
    for (k, bin) in spec.iter().take(half + 1).enumerate() {
        let scale = if k == 0 || (k == half && n.is_multiple_of(2)) {
            1.0
        } else {
            2.0
        };
        out.push(scale * bin.abs() / gain);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex64::ZERO; 3];
        assert!(fft(&mut x).is_err());
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft(&mut x).unwrap();
        for bin in &x {
            assert!((bin.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_fft_ifft() {
        let orig: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x).unwrap();
        ifft(&mut x).unwrap();
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_identity() {
        let sig: Vec<f64> = (0..128).map(|i| (0.1 * i as f64).sin()).collect();
        let time_energy: f64 = sig.iter().map(|v| v * v).sum();
        let spec = fft_real(&sig).unwrap();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn sine_lands_in_correct_bin() {
        let n = 256;
        let k = 13; // coherent sampling
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = fft_real(&sig).unwrap();
        let (max_bin, _) = spec
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap();
        assert_eq!(max_bin, k);
        assert!((spec[k].abs() - n as f64 / 2.0).abs() < 1e-8);
    }

    #[test]
    fn amplitude_spectrum_reads_sine_amplitude() {
        let n = 512;
        let k = 31;
        let amp = 0.7;
        let sig: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        for window in [Window::Rectangular, Window::Hann, Window::Blackman] {
            let spec = amplitude_spectrum(&sig, window).unwrap();
            // Peak (allowing slight leakage into neighbours for windows)
            let peak: f64 = spec[k - 1..=k + 1].iter().fold(0.0, |a, &b| a.max(b));
            assert!(
                (peak - amp).abs() < 0.02 * amp,
                "{window:?}: peak {peak} vs {amp}"
            );
        }
    }

    #[test]
    fn window_properties() {
        let n = 128;
        // Hann coherent gain → 0.5 for large n.
        assert!((Window::Hann.coherent_gain(n) - 0.5).abs() < 0.01);
        // Hann ENBW ≈ 1.5 bins.
        assert!((Window::Hann.enbw(n) - 1.5).abs() < 0.05);
        assert_eq!(Window::Rectangular.enbw(n), 1.0);
        // Windows taper to ~0 at edges.
        assert!(Window::Hann.value(0, n) < 1e-12);
        assert!(Window::Blackman.value(0, n).abs() < 0.01);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..32).map(|i| Complex64::from_real(i as f64)).collect();
        let b: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new(0.5 * i as f64, -(i as f64)))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft(&mut fa).unwrap();
        fft(&mut fb).unwrap();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        fft(&mut fab).unwrap();
        for i in 0..32 {
            assert!((fab[i] - (fa[i] + fb[i])).abs() < 1e-9);
        }
    }
}
