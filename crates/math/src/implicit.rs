//! Implicit integrators for stiff systems `ẋ = f(t, x)`.
//!
//! Power-electronics and automotive models "usually lead to stiff
//! nonlinear models that exhibit time constants whose values differ by
//! several orders of magnitude. This property imposes strong numerical
//! constraints to simulation algorithms" (paper §2). Explicit methods are
//! unstable on such systems unless the step tracks the *fastest* time
//! constant; the A-stable methods here (backward Euler, trapezoidal, BDF2)
//! remain stable at steps governed only by accuracy.
//!
//! Each step solves the implicit relation with the damped Newton engine
//! from [`crate::newton`]. A simple local-truncation-error controller
//! provides the variable-step mode required by the paper's phase 2.

use crate::newton::{self, NewtonOptions, NewtonWorkspace, NonlinearSystem};
use crate::ode::OdeRhs;
use crate::MathError;

/// The implicit discretization formulas available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ImplicitMethod {
    /// Backward Euler — first order, L-stable, strongly damping.
    BackwardEuler,
    /// Trapezoidal rule — second order, A-stable, energy preserving
    /// (SPICE's default).
    #[default]
    Trapezoidal,
    /// Second-order backward differentiation formula — stiffly stable.
    Bdf2,
}

impl ImplicitMethod {
    /// The order of accuracy.
    pub fn order(self) -> u32 {
        match self {
            ImplicitMethod::BackwardEuler => 1,
            ImplicitMethod::Trapezoidal | ImplicitMethod::Bdf2 => 2,
        }
    }
}

/// Residual adapter: turns "advance one implicit step" into `F(x) = 0`
/// for the Newton solver.
struct StepResidual<'a> {
    f: &'a mut dyn OdeRhs,
    method: ImplicitMethod,
    t_new: f64,
    h: f64,
    x_prev: &'a [f64],
    /// For BDF2: the state one step before `x_prev` (same spacing `h`).
    x_prev2: Option<&'a [f64]>,
    /// For trapezoidal: f(t_prev, x_prev).
    f_prev: &'a [f64],
    scratch: Vec<f64>,
}

impl NonlinearSystem for StepResidual<'_> {
    fn dim(&self) -> usize {
        self.x_prev.len()
    }

    fn residual(&mut self, x: &[f64], out: &mut [f64]) {
        let n = self.dim();
        self.f.eval(self.t_new, x, &mut self.scratch);
        match self.method {
            ImplicitMethod::BackwardEuler => {
                for i in 0..n {
                    out[i] = x[i] - self.x_prev[i] - self.h * self.scratch[i];
                }
            }
            ImplicitMethod::Trapezoidal => {
                for i in 0..n {
                    out[i] =
                        x[i] - self.x_prev[i] - 0.5 * self.h * (self.scratch[i] + self.f_prev[i]);
                }
            }
            ImplicitMethod::Bdf2 => {
                let xp2 = self
                    .x_prev2
                    .expect("bdf2 residual requires two history states");
                for i in 0..n {
                    out[i] = x[i] - 4.0 / 3.0 * self.x_prev[i] + 1.0 / 3.0 * xp2[i]
                        - 2.0 / 3.0 * self.h * self.scratch[i];
                }
            }
        }
    }

    fn jacobian_key(&self) -> u64 {
        // FNV-1a over the quantities the step Jacobian depends on besides
        // `x`: step size, evaluation time, and the discretization formula.
        let mut k = 0xcbf2_9ce4_8422_2325u64;
        for bits in [self.h.to_bits(), self.t_new.to_bits(), self.method as u64] {
            k ^= bits;
            k = k.wrapping_mul(0x0000_0100_0000_01b3);
        }
        k
    }
}

/// A fixed-step implicit integrator.
///
/// BDF2 starts itself with one backward-Euler step and requires a uniform
/// step size thereafter.
#[derive(Debug)]
pub struct ImplicitStepper {
    method: ImplicitMethod,
    h: f64,
    newton: NewtonOptions,
    workspace: NewtonWorkspace,
    x_prev2: Option<Vec<f64>>,
    f_prev: Vec<f64>,
    have_f_prev: bool,
}

impl ImplicitStepper {
    /// Creates a stepper with step size `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not strictly positive and finite.
    pub fn new(method: ImplicitMethod, h: f64) -> Self {
        assert!(
            h > 0.0 && h.is_finite(),
            "step size must be positive and finite"
        );
        ImplicitStepper {
            method,
            h,
            newton: NewtonOptions::default(),
            workspace: NewtonWorkspace::new(),
            x_prev2: None,
            f_prev: Vec::new(),
            have_f_prev: false,
        }
    }

    /// Overrides the Newton options used for each implicit solve.
    pub fn with_newton_options(mut self, opts: NewtonOptions) -> Self {
        self.newton = opts;
        self
    }

    /// The configured step size.
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// Resets the multistep history (call when the state jumps
    /// discontinuously, e.g. at a DE event).
    pub fn reset_history(&mut self) {
        self.x_prev2 = None;
        self.have_f_prev = false;
    }

    /// Advances `x` from `*t` to `*t + h` in place.
    ///
    /// # Errors
    ///
    /// Propagates Newton failures ([`MathError::NoConvergence`],
    /// [`MathError::SingularMatrix`]).
    pub fn step(&mut self, f: &mut dyn OdeRhs, t: &mut f64, x: &mut [f64]) -> crate::Result<()> {
        let n = x.len();
        if self.f_prev.len() != n {
            self.f_prev = vec![0.0; n];
            self.have_f_prev = false;
            self.x_prev2 = None;
            self.workspace.reset();
        }
        if matches!(self.method, ImplicitMethod::Trapezoidal) && !self.have_f_prev {
            f.eval(*t, x, &mut self.f_prev);
            self.have_f_prev = true;
        }
        let x_prev = x.to_vec();

        // BDF2 needs two history points; bootstrap with backward Euler.
        let effective = match self.method {
            ImplicitMethod::Bdf2 if self.x_prev2.is_none() => ImplicitMethod::BackwardEuler,
            m => m,
        };

        let mut res = StepResidual {
            f,
            method: effective,
            t_new: *t + self.h,
            h: self.h,
            x_prev: &x_prev,
            x_prev2: self.x_prev2.as_deref(),
            f_prev: &self.f_prev,
            scratch: vec![0.0; n],
        };
        newton::solve_with(&mut res, x, &self.newton, &mut self.workspace)?;

        if matches!(self.method, ImplicitMethod::Trapezoidal) {
            f.eval(*t + self.h, x, &mut self.f_prev);
        }
        if matches!(self.method, ImplicitMethod::Bdf2) {
            self.x_prev2 = Some(x_prev);
        }
        *t += self.h;
        Ok(())
    }

    /// Integrates from `t0` to `t1`, returning the number of steps.
    ///
    /// The final step is shortened to land exactly on `t1` (the multistep
    /// history is reset for that step).
    ///
    /// # Errors
    ///
    /// Propagates step failures.
    pub fn integrate(
        &mut self,
        f: &mut dyn OdeRhs,
        t0: f64,
        t1: f64,
        x: &mut [f64],
    ) -> crate::Result<usize> {
        let mut t = t0;
        let mut steps = 0;
        let saved_h = self.h;
        while t < t1 {
            if t + self.h > t1 {
                self.h = t1 - t;
                self.reset_history();
                if self.h <= 0.0 {
                    break;
                }
            }
            self.step(f, &mut t, x)?;
            steps += 1;
        }
        self.h = saved_h;
        Ok(steps)
    }
}

/// Options for the variable-step stiff integrator.
#[derive(Debug, Clone, Copy)]
pub struct VariableStepOptions {
    /// Relative local-error tolerance.
    pub rel_tol: f64,
    /// Absolute local-error tolerance.
    pub abs_tol: f64,
    /// Minimum step before underflow is reported.
    pub min_step: f64,
    /// Maximum step.
    pub max_step: f64,
    /// Initial step.
    pub initial_step: f64,
}

impl Default for VariableStepOptions {
    fn default() -> Self {
        VariableStepOptions {
            rel_tol: 1e-4,
            abs_tol: 1e-7,
            min_step: 1e-15,
            max_step: f64::INFINITY,
            initial_step: 1e-6,
        }
    }
}

/// Statistics from a variable-step integration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VariableStepStats {
    /// Accepted steps.
    pub accepted: usize,
    /// Rejected steps (error too large, retried smaller).
    pub rejected: usize,
}

/// Variable-step stiff integration using step-doubling error control on
/// backward Euler.
///
/// Each accepted interval is computed twice — once with step `h`, once as
/// two steps of `h/2` — and the difference drives a first-order error
/// controller. This is the simplest robust LTE controller and realizes the
/// paper's phase-2 requirement of "simulation using variable time steps"
/// for stiff systems. (Experiment E3 benchmarks this against fixed-step
/// integration.)
///
/// # Errors
///
/// * [`MathError::StepSizeUnderflow`] when the controller cannot meet the
///   tolerance above `min_step`.
/// * Newton failures are handled by halving the step; persistent failure
///   surfaces as underflow.
pub fn integrate_variable(
    f: &mut dyn OdeRhs,
    t0: f64,
    t1: f64,
    x: &mut [f64],
    opts: &VariableStepOptions,
) -> crate::Result<VariableStepStats> {
    if t1 < t0 {
        return Err(MathError::invalid("t1 must be >= t0"));
    }
    let n = x.len();
    let mut stats = VariableStepStats::default();
    let mut t = t0;
    let mut h = opts.initial_step.min((t1 - t0).max(opts.min_step));
    let newton = NewtonOptions::default();

    let mut x_full = vec![0.0; n];
    let mut x_half = vec![0.0; n];
    // One workspace across every step: a Jacobian factored for a rejected
    // step is reused on the retry when nothing changed.
    let mut ws = NewtonWorkspace::new();

    while t < t1 {
        if t + h > t1 {
            h = t1 - t;
        }
        // One full step.
        x_full.copy_from_slice(x);
        let ok_full = be_step(f, t, h, &mut x_full, &newton, &mut ws).is_ok();
        // Two half steps.
        x_half.copy_from_slice(x);
        let ok_half = be_step(f, t, h / 2.0, &mut x_half, &newton, &mut ws).is_ok()
            && be_step(f, t + h / 2.0, h / 2.0, &mut x_half, &newton, &mut ws).is_ok();

        if !(ok_full && ok_half) {
            h *= 0.25;
            stats.rejected += 1;
            if h < opts.min_step {
                return Err(MathError::StepSizeUnderflow { time: t, step: h });
            }
            continue;
        }

        // Error estimate: BE is first order, so err ≈ x_half - x_full.
        let mut err = 0.0f64;
        for i in 0..n {
            let scale = opts.abs_tol + opts.rel_tol * x_half[i].abs().max(x[i].abs());
            err = err.max(((x_half[i] - x_full[i]) / scale).abs());
        }

        if err <= 1.0 {
            // Accept: use the more accurate half-step solution with local
            // extrapolation (2·x_half − x_full is second-order accurate).
            for i in 0..n {
                x[i] = 2.0 * x_half[i] - x_full[i];
            }
            t += h;
            stats.accepted += 1;
            let grow = if err > 0.0 { (0.8 / err).min(4.0) } else { 4.0 };
            h = (h * grow).clamp(opts.min_step, opts.max_step);
        } else {
            stats.rejected += 1;
            h = (h * (0.8 / err).max(0.1)).max(opts.min_step);
            if h <= opts.min_step {
                return Err(MathError::StepSizeUnderflow { time: t, step: h });
            }
        }
    }
    Ok(stats)
}

/// Single backward-Euler step helper used by the variable-step controller.
fn be_step(
    f: &mut dyn OdeRhs,
    t: f64,
    h: f64,
    x: &mut [f64],
    newton: &NewtonOptions,
    ws: &mut NewtonWorkspace,
) -> crate::Result<()> {
    let x_prev = x.to_vec();
    let mut res = StepResidual {
        f,
        method: ImplicitMethod::BackwardEuler,
        t_new: t + h,
        h,
        x_prev: &x_prev,
        x_prev2: None,
        f_prev: &[],
        scratch: vec![0.0; x_prev.len()],
    };
    newton::solve_with(&mut res, x, newton, ws)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decay(_t: f64, x: &[f64], dx: &mut [f64]) {
        dx[0] = -x[0];
    }

    /// Classic stiff test: ẋ = -1000(x - cos t) - sin t; exact x = cos t
    /// for x(0) = 1.
    fn stiff(t: f64, x: &[f64], dx: &mut [f64]) {
        dx[0] = -1000.0 * (x[0] - t.cos()) - t.sin();
    }

    #[test]
    fn backward_euler_is_stable_on_stiff_system_with_large_step() {
        // h·λ = 50 ≫ explicit stability limit (~2/1000); BE stays bounded.
        let mut x = vec![1.0];
        let mut s = ImplicitStepper::new(ImplicitMethod::BackwardEuler, 0.05);
        s.integrate(&mut stiff, 0.0, 1.0, &mut x).unwrap();
        assert!((x[0] - 1.0f64.cos()).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn trapezoidal_second_order() {
        let run = |h: f64| {
            let mut x = vec![1.0];
            let mut s = ImplicitStepper::new(ImplicitMethod::Trapezoidal, h);
            s.integrate(&mut decay, 0.0, 1.0, &mut x).unwrap();
            (x[0] - (-1.0f64).exp()).abs()
        };
        let ratio = run(1e-2) / run(5e-3);
        assert!((3.3..4.7).contains(&ratio), "trap order ratio {ratio}");
    }

    #[test]
    fn bdf2_second_order() {
        let run = |h: f64| {
            let mut x = vec![1.0];
            let mut s = ImplicitStepper::new(ImplicitMethod::Bdf2, h);
            s.integrate(&mut decay, 0.0, 1.0, &mut x).unwrap();
            (x[0] - (-1.0f64).exp()).abs()
        };
        let ratio = run(1e-2) / run(5e-3);
        assert!((3.0..5.0).contains(&ratio), "bdf2 order ratio {ratio}");
    }

    #[test]
    fn bdf2_stable_on_stiff() {
        let mut x = vec![1.0];
        let mut s = ImplicitStepper::new(ImplicitMethod::Bdf2, 0.02);
        s.integrate(&mut stiff, 0.0, 2.0, &mut x).unwrap();
        assert!((x[0] - 2.0f64.cos()).abs() < 0.02, "x = {}", x[0]);
    }

    #[test]
    fn variable_step_meets_tolerance_with_few_steps() {
        let mut x = vec![1.0];
        let stats = integrate_variable(
            &mut stiff,
            0.0,
            2.0,
            &mut x,
            &VariableStepOptions {
                rel_tol: 1e-5,
                abs_tol: 1e-8,
                initial_step: 1e-6,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((x[0] - 2.0f64.cos()).abs() < 1e-3, "x = {}", x[0]);
        // A fixed step resolving the λ=1000 boundary layer over [0,2] at
        // the accuracy-dictated step would need ≥ 20k steps; the controller
        // should need orders of magnitude fewer.
        assert!(
            stats.accepted < 3000,
            "too many accepted steps: {}",
            stats.accepted
        );
    }

    #[test]
    fn variable_step_rejects_reverse_time() {
        let mut x = vec![1.0];
        assert!(integrate_variable(&mut decay, 1.0, 0.0, &mut x, &Default::default()).is_err());
    }

    #[test]
    fn linear_system_two_states() {
        // Coupled: ẋ0 = x1, ẋ1 = -x0 (harmonic); trapezoid preserves amplitude.
        let mut f = |_t: f64, x: &[f64], dx: &mut [f64]| {
            dx[0] = x[1];
            dx[1] = -x[0];
        };
        let mut x = vec![1.0, 0.0];
        let mut s = ImplicitStepper::new(ImplicitMethod::Trapezoidal, 1e-2);
        s.integrate(&mut f, 0.0, 2.0 * std::f64::consts::PI, &mut x)
            .unwrap();
        let energy = x[0] * x[0] + x[1] * x[1];
        assert!((energy - 1.0).abs() < 1e-4, "energy {energy}");
    }

    #[test]
    fn integrate_lands_on_endpoint() {
        let mut x = vec![1.0];
        let mut s = ImplicitStepper::new(ImplicitMethod::BackwardEuler, 0.4);
        let steps = s.integrate(&mut decay, 0.0, 1.0, &mut x).unwrap();
        assert_eq!(steps, 3); // 0.4, 0.4, 0.2
        assert_eq!(s.step_size(), 0.4);
    }

    #[test]
    fn reset_history_allows_state_jump() {
        let mut x = vec![1.0];
        let mut s = ImplicitStepper::new(ImplicitMethod::Bdf2, 0.01);
        let mut t = 0.0;
        for _ in 0..5 {
            s.step(&mut decay, &mut t, &mut x).unwrap();
        }
        // Discontinuity (e.g. a DE event forced the state).
        x[0] = 5.0;
        s.reset_history();
        for _ in 0..5 {
            s.step(&mut decay, &mut t, &mut x).unwrap();
        }
        assert!(x[0] > 0.0 && x[0] < 5.0);
    }
}
