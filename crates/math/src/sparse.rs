//! Sparse matrices and a symbolic-reuse sparse LU factorization.
//!
//! MNA matrices are overwhelmingly sparse at realistic network sizes
//! (a ladder of N sections has O(N) nonzeros in an N×N system), so the
//! dense [`Lu`](crate::Lu) path wastes O(n²) memory and O(n³) work. This
//! module provides the "efficient dedicated algorithms" of the paper's
//! O3/O5 rationale:
//!
//! * [`Triplets`] — a coordinate (COO) builder that sums duplicates;
//! * [`CsrMat`] — compressed sparse row storage, generic over [`Scalar`]
//!   so one implementation serves real (DC/transient) and complex
//!   (AC/noise) analyses;
//! * [`SparseLu`] — a left-looking (Gilbert–Peierls) LU with threshold
//!   partial pivoting and a Markowitz-style minimum-degree column
//!   pre-ordering. The factorization is split into a **symbolic phase**
//!   (fill-reducing ordering, pivot sequence and fill pattern, computed
//!   once per sparsity pattern by [`SparseLu::factor`]) and a **numeric
//!   phase** ([`SparseLu::refactor`], which replays the cached pattern
//!   with new values — the KLU/SPICE trick that makes per-timestep
//!   refactorization O(flops of the factors) instead of O(n³));
//! * [`SolveStats`] — counters surfaced through the solver/instrumentation
//!   chain (`ams-net` → `ams-core` → `ams-exec`).
//!
//! # Example
//!
//! ```
//! use ams_math::{DVec, SparseLu, Triplets};
//!
//! # fn main() -> Result<(), ams_math::MathError> {
//! let mut t = Triplets::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 3.0);
//! t.push(1, 0, 6.0);
//! t.push(1, 1, 3.0);
//! let a = t.build();
//! let mut lu = SparseLu::factor(&a)?;
//! let x = lu.solve(&DVec::from(vec![10.0, 12.0]))?;
//! assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
//! // New values, same pattern: numeric-only refactorization.
//! let mut a2 = a.clone();
//! a2.values_mut().copy_from_slice(&[8.0, 6.0, 12.0, 6.0]);
//! lu.refactor(&a2)?;
//! let x2 = lu.solve(&DVec::from(vec![20.0, 24.0]))?;
//! assert!((x2[0] - 1.0).abs() < 1e-12 && (x2[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::{DMat, DVec, MathError, Scalar};

/// Relative pivot threshold below which a matrix is declared singular
/// (matches the dense [`Lu`](crate::Lu) tolerance).
const PIVOT_REL_TOL: f64 = 1e-13;

/// Threshold-pivoting preference: the structural diagonal is kept as the
/// pivot whenever its magnitude is at least this fraction of the largest
/// candidate, which stabilizes the cached pivot sequence across numeric
/// refactorizations.
const DIAG_PIVOT_THRESHOLD: f64 = 0.1;

/// Counters of the sparse direct-solve path, surfaced through
/// `TransientStats` → `ClusterStats` → `ExecStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Full factorizations including symbolic analysis (ordering + fill
    /// pattern + pivot sequence).
    pub symbolic_analyses: u64,
    /// Numeric-only refactorizations reusing a cached pattern.
    pub numeric_refactors: u64,
    /// Structural nonzeros of the assembled system matrix (gauge: the
    /// largest system observed).
    pub nnz: u64,
    /// Fill-in: nonzeros of the L+U factors beyond those of the matrix
    /// itself (gauge: the largest system observed).
    pub fill_in: u64,
    /// Factorizations skipped entirely because the matrix values were
    /// bit-identical to the previously factored ones (reused Jacobian).
    pub jacobian_reused: u64,
}

impl SolveStats {
    /// Folds another set of counters into this one: counting fields are
    /// summed, gauge fields (`nnz`, `fill_in`) take the maximum.
    pub fn merge(&mut self, other: &SolveStats) {
        self.symbolic_analyses += other.symbolic_analyses;
        self.numeric_refactors += other.numeric_refactors;
        self.jacobian_reused += other.jacobian_reused;
        self.nnz = self.nnz.max(other.nnz);
        self.fill_in = self.fill_in.max(other.fill_in);
    }
}

/// Coordinate-format (COO) builder for [`CsrMat`].
///
/// Duplicate coordinates are summed on [`Triplets::build`], which is
/// exactly the MNA stamping semantic.
#[derive(Debug, Clone)]
pub struct Triplets<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `v` at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn push(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "triplet out of range");
        self.entries.push((i, j, v));
    }

    /// Number of raw (pre-merge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the CSR matrix, summing duplicates. Entries that sum to
    /// zero are kept (they are structural positions — important for
    /// pattern reuse).
    pub fn build(mut self) -> CsrMat<T> {
        self.entries.sort_unstable_by_key(|e| (e.0, e.1));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut vals = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);
        let mut cur_row = 0usize;
        for (i, j, v) in self.entries {
            while cur_row < i {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            if col_idx.len() > row_ptr[cur_row] && *col_idx.last().expect("nonempty") == j {
                let last = vals.len() - 1;
                vals[last] += v;
            } else {
                col_idx.push(j);
                vals.push(v);
            }
        }
        while cur_row < self.rows {
            row_ptr.push(col_idx.len());
            cur_row += 1;
        }
        CsrMat {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            vals,
        }
    }
}

/// A compressed-sparse-row matrix over any [`Scalar`] field.
///
/// Column indices are sorted within each row; structural (explicitly
/// stored) zeros are allowed and preserved, so a pattern can be built
/// once and re-filled with [`CsrMat::values_mut`] every assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMat<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> CsrMat<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for a square matrix.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored (structural) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Builds from a dense matrix, storing every nonzero entry.
    pub fn from_dense(a: &DMat<T>) -> Self {
        let mut t = Triplets::new(a.rows(), a.cols());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                if a[(i, j)] != T::ZERO {
                    t.push(i, j, a[(i, j)]);
                }
            }
        }
        t.build()
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DMat<T> {
        let mut d = DMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                d[(i, self.col_idx[p])] += self.vals[p];
            }
        }
        d
    }

    /// The stored value at `(i, j)`, or zero when the position is not in
    /// the pattern.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn get(&self, i: usize, j: usize) -> T {
        self.position(i, j).map_or(T::ZERO, |p| self.vals[p])
    }

    /// The index into [`CsrMat::values`] of the stored entry at `(i, j)`,
    /// or `None` when the position is not in the pattern. This is the
    /// primitive behind stamp pointers: resolve once, then write by flat
    /// index forever after.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of range.
    pub fn position(&self, i: usize, j: usize) -> Option<usize> {
        assert!(i < self.rows && j < self.cols, "position out of range");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .binary_search(&j)
            .ok()
            .map(|off| lo + off)
    }

    /// The stored values, in row-major pattern order.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable access to the stored values (the pattern is immutable).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// A matrix with the identical sparsity pattern whose values are
    /// `f` applied entrywise — the pattern-preserving re-typing used to
    /// widen a scalar matrix into a lane bundle (or narrow one back).
    pub fn map_values<U: Scalar>(&self, f: impl FnMut(&T) -> U) -> CsrMat<U> {
        CsrMat {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.iter().map(f).collect(),
        }
    }

    /// Overwrites the stored values with the entries of `d` at the
    /// pattern's positions; entries of `d` outside the pattern are
    /// ignored. Used to route a dense-evaluated Jacobian into a sparse
    /// factorization.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn set_from_dense(&mut self, d: &DMat<T>) {
        assert!(
            d.rows() == self.rows && d.cols() == self.cols,
            "set_from_dense dimension mismatch"
        );
        for i in 0..self.rows {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                self.vals[p] = d[(i, self.col_idx[p])];
            }
        }
    }

    /// Resets every stored value to zero, keeping the pattern.
    pub fn set_values_zero(&mut self) {
        for v in &mut self.vals {
            *v = T::ZERO;
        }
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// `true` when this matrix has the same dimensions and sparsity
    /// pattern as `other` (values may differ).
    pub fn same_pattern(&self, other: &CsrMat<T>) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &DVec<T>) -> crate::Result<DVec<T>> {
        if x.len() != self.cols {
            return Err(MathError::dims(
                format!("vector of length {}", self.cols),
                format!("length {}", x.len()),
            ));
        }
        let mut y = DVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = T::ZERO;
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.vals[p] * x[self.col_idx[p]];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> CsrMat<T> {
        let (colptr, rows_idx, map) = self.to_csc();
        let vals = map.iter().map(|&p| self.vals[p]).collect();
        CsrMat {
            rows: self.cols,
            cols: self.rows,
            row_ptr: colptr,
            col_idx: rows_idx,
            vals,
        }
    }

    /// Compressed-sparse-column view of the pattern: returns
    /// `(col_ptr, row_idx, csr_pos)` where `csr_pos[p]` maps each CSC
    /// slot back to its position in [`CsrMat::values`].
    fn to_csc(&self) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut colptr = vec![0usize; self.cols + 1];
        for &j in &self.col_idx {
            colptr[j + 1] += 1;
        }
        for j in 0..self.cols {
            colptr[j + 1] += colptr[j];
        }
        let mut next = colptr.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut map = vec![0usize; self.nnz()];
        for i in 0..self.rows {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[p];
                let slot = next[j];
                next[j] += 1;
                row_idx[slot] = i;
                map[slot] = p;
            }
        }
        (colptr, row_idx, map)
    }
}

/// Minimum-degree column pre-ordering on the symmetrized pattern
/// `A + Aᵀ` — the Markowitz-style fill-reducing half of the symbolic
/// phase. Falls back to the natural order for tiny or dense-ish inputs,
/// where reordering cannot pay for itself.
fn min_degree_order<T: Scalar>(a: &CsrMat<T>) -> Vec<usize> {
    let n = a.rows;
    if n <= 4 || a.nnz() * 4 > n * n {
        return (0..n).collect();
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &j in cols {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let mut alive = vec![true; n];
    let mut mark = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut v = usize::MAX;
        let mut best = usize::MAX;
        for (u, au) in adj.iter().enumerate() {
            if alive[u] && au.len() < best {
                best = au.len();
                v = u;
            }
        }
        alive[v] = false;
        order.push(v);
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| alive[u]).collect();
        for &u in &nbrs {
            // New adjacency of u: (adj[u] ∪ clique) \ {u, v}.
            adj[u].retain(|&w| w != v);
            for &w in &adj[u] {
                mark[w] = true;
            }
            mark[u] = true;
            let mut au = std::mem::take(&mut adj[u]);
            for &w in &nbrs {
                if !mark[w] {
                    au.push(w);
                }
            }
            for &w in &au {
                mark[w] = false;
            }
            mark[u] = false;
            adj[u] = au;
        }
        adj[v] = Vec::new();
    }
    order
}

/// Sparse LU factorization `P·A·Q = L·U` with cached symbolic analysis.
///
/// [`SparseLu::factor`] performs the full symbolic + numeric
/// factorization: a minimum-degree column ordering `Q`, Gilbert–Peierls
/// left-looking elimination with threshold partial pivoting `P`, and the
/// resulting fill pattern of `L`/`U`. [`SparseLu::refactor`] then reuses
/// all of it for a matrix with the same pattern but new values, doing
/// only the numeric replay. [`SparseLu::solve`] and
/// [`SparseLu::solve_transpose`] (for adjoint noise analysis) run over
/// the cached factors.
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar = f64> {
    n: usize,
    /// `colperm[k]` = original column eliminated at step `k` (the `Q`).
    colperm: Vec<usize>,
    /// `rowperm[k]` = original row chosen as pivot at step `k` (the `P`).
    rowperm: Vec<usize>,
    /// Inverse row permutation: `pinv[rowperm[k]] = k`.
    pinv: Vec<usize>,
    /// Unit lower-triangular factor, stored per elimination step
    /// (column) with original row indices.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<T>,
    /// Strictly-upper factor, stored per elimination step (column) with
    /// ascending elimination-step row indices (a valid topological
    /// order, so the numeric refactor can replay without any search).
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<T>,
    u_diag: Vec<T>,
    /// CSC view of the factored pattern, with a map back into CSR value
    /// positions so refactor can gather values without re-sorting.
    csc_colptr: Vec<usize>,
    csc_rows: Vec<usize>,
    csc_map: Vec<usize>,
    /// The factored sparsity pattern, kept to validate refactor inputs.
    pat_row_ptr: Vec<usize>,
    pat_col_idx: Vec<usize>,
    a_nnz: usize,
    /// Dense scatter workspace reused across refactorizations.
    work: Vec<T>,
}

impl<T: Scalar> SparseLu<T> {
    /// Full symbolic + numeric factorization.
    ///
    /// # Errors
    ///
    /// * [`MathError::DimensionMismatch`] if `a` is not square.
    /// * [`MathError::SingularMatrix`] if no acceptable pivot exists at
    ///   some elimination step (relative to the column's magnitude).
    pub fn factor(a: &CsrMat<T>) -> crate::Result<SparseLu<T>> {
        if !a.is_square() {
            return Err(MathError::dims(
                "square matrix",
                format!("{}x{}", a.rows, a.cols),
            ));
        }
        let n = a.rows;
        let (csc_colptr, csc_rows, csc_map) = a.to_csc();
        let colperm = min_degree_order(a);

        let mut pinv = vec![usize::MAX; n];
        let mut rowperm = Vec::with_capacity(n);
        let mut l_colptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        let mut u_colptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();
        let mut u_diag = Vec::with_capacity(n);

        let mut x = vec![T::ZERO; n];
        let mut visited = vec![usize::MAX; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut steps: Vec<usize> = Vec::new();
        let mut work: Vec<usize> = Vec::new();
        let mut cands: Vec<usize> = Vec::new();

        for (k, &j) in colperm.iter().enumerate() {
            touched.clear();
            steps.clear();
            cands.clear();
            work.clear();
            // Reachable set of A(:,j) through the columns of L built so
            // far — the structural (value-independent) fill of column k.
            for &r in &csc_rows[csc_colptr[j]..csc_colptr[j + 1]] {
                if visited[r] != k {
                    visited[r] = k;
                    work.push(r);
                    touched.push(r);
                }
            }
            while let Some(i) = work.pop() {
                let t = pinv[i];
                if t != usize::MAX {
                    steps.push(t);
                    for &r in &l_rows[l_colptr[t]..l_colptr[t + 1]] {
                        if visited[r] != k {
                            visited[r] = k;
                            work.push(r);
                            touched.push(r);
                        }
                    }
                }
            }
            // Ascending elimination order is always topologically valid:
            // step t only updates rows that pivot later than t.
            steps.sort_unstable();

            // Numeric scatter of A(:,j) plus the column scale reference
            // for the relative singularity test.
            let mut col_scale = f64::MIN_POSITIVE;
            for p in csc_colptr[j]..csc_colptr[j + 1] {
                let v = a.vals[csc_map[p]];
                x[csc_rows[p]] = v;
                col_scale = col_scale.max(v.modulus());
            }
            // Left-looking elimination: x ← L⁻¹·A(:,j) restricted to the
            // reach, recording the U column on the way.
            for &t in &steps {
                let xt = x[rowperm[t]];
                u_rows.push(t);
                u_vals.push(xt);
                if xt != T::ZERO {
                    for q in l_colptr[t]..l_colptr[t + 1] {
                        let lv = l_vals[q];
                        x[l_rows[q]] -= lv * xt;
                    }
                }
            }
            u_colptr.push(u_rows.len());

            // Pivot among not-yet-pivotal rows; sorted for determinism.
            for &r in &touched {
                if pinv[r] == usize::MAX {
                    cands.push(r);
                }
            }
            cands.sort_unstable();
            let mut piv = usize::MAX;
            let mut pmax = -1.0f64;
            for &r in &cands {
                let m = x[r].modulus();
                if m > pmax {
                    pmax = m;
                    piv = r;
                }
            }
            // Keep the structural diagonal when it is strong enough —
            // this stabilizes the pivot sequence for later refactors.
            if pinv[j] == usize::MAX && visited[j] == k {
                let mj = x[j].modulus();
                if mj >= DIAG_PIVOT_THRESHOLD * pmax {
                    piv = j;
                    pmax = mj;
                }
            }
            let threshold = col_scale * PIVOT_REL_TOL;
            if piv == usize::MAX
                || pmax.partial_cmp(&threshold) != Some(std::cmp::Ordering::Greater)
            {
                return Err(MathError::SingularMatrix { pivot: k });
            }
            pinv[piv] = k;
            rowperm.push(piv);
            let d = x[piv];
            u_diag.push(d);
            for &r in &cands {
                if r != piv {
                    l_rows.push(r);
                    l_vals.push(x[r] / d);
                }
            }
            l_colptr.push(l_rows.len());
            for &r in &touched {
                x[r] = T::ZERO;
            }
        }

        Ok(SparseLu {
            n,
            colperm,
            rowperm,
            pinv,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            u_diag,
            csc_colptr,
            csc_rows,
            csc_map,
            pat_row_ptr: a.row_ptr.clone(),
            pat_col_idx: a.col_idx.clone(),
            a_nnz: a.nnz(),
            work: x,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzeros of the computed factors (L below the diagonal, U above,
    /// plus the n pivots).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Fill-in: factor nonzeros beyond those of the factored matrix.
    pub fn fill_in(&self) -> usize {
        self.factor_nnz().saturating_sub(self.a_nnz)
    }

    /// Approximate resident bytes of this factorization: index arrays,
    /// permutations, and the value/workspace arrays at `size_of::<T>()`
    /// per entry. Scales with the scalar width, so a lane-bundle factor
    /// (`F64xK`) reports `K×` the value bytes of its scalar twin —
    /// cache byte budgets stay honest across scalar families.
    pub fn approx_bytes(&self) -> usize {
        let usz = std::mem::size_of::<usize>();
        let val = std::mem::size_of::<T>();
        let values = self.l_vals.len() + self.u_vals.len() + self.u_diag.len() + self.work.len();
        let indices = self.colperm.len()
            + self.rowperm.len()
            + self.pinv.len()
            + self.l_colptr.len()
            + self.l_rows.len()
            + self.u_colptr.len()
            + self.u_rows.len()
            + self.csc_colptr.len()
            + self.csc_rows.len()
            + self.csc_map.len()
            + self.pat_row_ptr.len()
            + self.pat_col_idx.len();
        values * val + indices * usz
    }

    /// Re-types the *symbolic* analysis over a different scalar: the
    /// column ordering, pivot sequence, fill pattern, and CSC maps are
    /// cloned verbatim while every value array is reset to `U::ZERO`.
    ///
    /// The result is not yet a factorization — it must be completed by
    /// [`SparseLu::refactor`] (which overwrites every value slot) with a
    /// matrix of the same pattern over `U`. This is the lane-widening
    /// primitive: one scalar symbolic analysis serves `f64`,
    /// [`crate::Complex64`], and [`crate::lanes::F64xK`] numeric
    /// refactorizations alike, because the pivot sequence is
    /// pattern-determined and patterns do not depend on the scalar.
    pub fn cast_symbolic<U: Scalar>(&self) -> SparseLu<U> {
        SparseLu {
            n: self.n,
            colperm: self.colperm.clone(),
            rowperm: self.rowperm.clone(),
            pinv: self.pinv.clone(),
            l_colptr: self.l_colptr.clone(),
            l_rows: self.l_rows.clone(),
            l_vals: vec![U::ZERO; self.l_vals.len()],
            u_colptr: self.u_colptr.clone(),
            u_rows: self.u_rows.clone(),
            u_vals: vec![U::ZERO; self.u_vals.len()],
            u_diag: vec![U::ZERO; self.u_diag.len()],
            csc_colptr: self.csc_colptr.clone(),
            csc_rows: self.csc_rows.clone(),
            csc_map: self.csc_map.clone(),
            pat_row_ptr: self.pat_row_ptr.clone(),
            pat_col_idx: self.pat_col_idx.clone(),
            a_nnz: self.a_nnz,
            work: vec![U::ZERO; self.work.len()],
        }
    }

    /// Whether `a` has the exact sparsity pattern this factorization was
    /// computed for (the precondition of [`SparseLu::refactor`] and
    /// [`SparseLu::refactored`]).
    pub fn matches_pattern(&self, a: &CsrMat<T>) -> bool {
        a.rows == self.n
            && a.cols == self.n
            && a.row_ptr == self.pat_row_ptr
            && a.col_idx == self.pat_col_idx
    }

    /// Clones the symbolic analysis (column ordering, pivot sequence and
    /// fill pattern) and numerically refactors the clone for `a`.
    ///
    /// This is the batched-scenario primitive: run one symbolic
    /// [`SparseLu::factor`] on the first matrix of a structurally
    /// identical family, then derive an independent factorization per
    /// family member at numeric-refactor cost. The clone shares no
    /// mutable state with `self`, so derived factorizations can live on
    /// different threads.
    ///
    /// # Errors
    ///
    /// Same contract as [`SparseLu::refactor`].
    pub fn refactored(&self, a: &CsrMat<T>) -> crate::Result<SparseLu<T>> {
        let mut lu = self.clone();
        lu.refactor(a)?;
        Ok(lu)
    }

    /// Numeric-only refactorization: replays the cached elimination
    /// (ordering, pivot sequence, fill pattern) with the values of `a`.
    ///
    /// # Errors
    ///
    /// * [`MathError::InvalidArgument`] if `a` does not have the exact
    ///   sparsity pattern this factorization was computed for.
    /// * [`MathError::SingularMatrix`] if a cached pivot has become
    ///   numerically unacceptable for the new values — the caller should
    ///   fall back to a fresh [`SparseLu::factor`] (new symbolic
    ///   analysis).
    pub fn refactor(&mut self, a: &CsrMat<T>) -> crate::Result<()> {
        if a.rows != self.n
            || a.cols != self.n
            || a.row_ptr != self.pat_row_ptr
            || a.col_idx != self.pat_col_idx
        {
            return Err(MathError::invalid(
                "refactor requires the exact pattern of the original factorization",
            ));
        }
        let n = self.n;
        for k in 0..n {
            let j = self.colperm[k];
            let mut col_scale = f64::MIN_POSITIVE;
            for p in self.csc_colptr[j]..self.csc_colptr[j + 1] {
                let v = a.vals[self.csc_map[p]];
                self.work[self.csc_rows[p]] = v;
                col_scale = col_scale.max(v.modulus());
            }
            for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                let t = self.u_rows[idx];
                let xt = self.work[self.rowperm[t]];
                self.u_vals[idx] = xt;
                if xt != T::ZERO {
                    for q in self.l_colptr[t]..self.l_colptr[t + 1] {
                        let lv = self.l_vals[q];
                        self.work[self.l_rows[q]] -= lv * xt;
                    }
                }
            }
            let piv = self.rowperm[k];
            let d = self.work[piv];
            let threshold = col_scale * PIVOT_REL_TOL;
            if d.modulus().partial_cmp(&threshold) != Some(std::cmp::Ordering::Greater) {
                // Leave the workspace clean before bailing out.
                for v in &mut self.work {
                    *v = T::ZERO;
                }
                return Err(MathError::SingularMatrix { pivot: k });
            }
            self.u_diag[k] = d;
            for q in self.l_colptr[k]..self.l_colptr[k + 1] {
                self.l_vals[q] = self.work[self.l_rows[q]] / d;
            }
            // Clear exactly the column's pattern (it covers every
            // scattered A entry by construction).
            for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                self.work[self.rowperm[self.u_rows[idx]]] = T::ZERO;
            }
            self.work[piv] = T::ZERO;
            for q in self.l_colptr[k]..self.l_colptr[k + 1] {
                self.work[self.l_rows[q]] = T::ZERO;
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` over the cached factors.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &DVec<T>) -> crate::Result<DVec<T>> {
        let n = self.n;
        if b.len() != n {
            return Err(MathError::dims(
                format!("rhs of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        // z = P·b, then forward solve L·z = P·b (column-oriented).
        let mut z: Vec<T> = self.rowperm.iter().map(|&r| b[r]).collect();
        for k in 0..n {
            let zk = z[k];
            if zk != T::ZERO {
                for q in self.l_colptr[k]..self.l_colptr[k + 1] {
                    let lv = self.l_vals[q];
                    z[self.pinv[self.l_rows[q]]] -= lv * zk;
                }
            }
        }
        // Backward solve U·w = z (column-oriented).
        for k in (0..n).rev() {
            let wk = z[k] / self.u_diag[k];
            z[k] = wk;
            if wk != T::ZERO {
                for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                    let uv = self.u_vals[idx];
                    z[self.u_rows[idx]] -= uv * wk;
                }
            }
        }
        // x = Q·w.
        let mut out = DVec::zeros(n);
        for (k, &j) in self.colperm.iter().enumerate() {
            out[j] = z[k];
        }
        Ok(out)
    }

    /// Solves `Aᵀ·y = b` over the same cached factors — the adjoint
    /// solve used by noise analysis, with no explicit transposition:
    /// `Aᵀ = Q·Uᵀ·Lᵀ·P`, so a forward sweep over `Uᵀ` and a backward
    /// sweep over `Lᵀ` (both natural dot-product loops over the stored
    /// columns) do the job.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_transpose(&self, b: &DVec<T>) -> crate::Result<DVec<T>> {
        let n = self.n;
        if b.len() != n {
            return Err(MathError::dims(
                format!("rhs of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        // c = Qᵀ·b, then Uᵀ·v = c: lower-triangular forward sweep where
        // row k of Uᵀ is the stored column k of U.
        let mut v: Vec<T> = self.colperm.iter().map(|&j| b[j]).collect();
        for k in 0..n {
            let mut acc = v[k];
            for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                let uv = self.u_vals[idx];
                acc -= uv * v[self.u_rows[idx]];
            }
            v[k] = acc / self.u_diag[k];
        }
        // Lᵀ·w = v: unit upper-triangular backward sweep.
        for k in (0..n).rev() {
            let mut acc = v[k];
            for q in self.l_colptr[k]..self.l_colptr[k + 1] {
                let lv = self.l_vals[q];
                acc -= lv * v[self.pinv[self.l_rows[q]]];
            }
            v[k] = acc;
        }
        // y = Pᵀ·w.
        let mut out = DVec::zeros(n);
        for (k, &r) in self.rowperm.iter().enumerate() {
            out[r] = v[k];
        }
        Ok(out)
    }
}

/// Convenience: factor-and-solve in one call. Prefer keeping the
/// [`SparseLu`] when solving repeatedly against the same matrix or
/// pattern.
///
/// # Errors
///
/// See [`SparseLu::factor`] and [`SparseLu::solve`].
pub fn solve_sparse<T: Scalar>(a: &CsrMat<T>, b: &DVec<T>) -> crate::Result<DVec<T>> {
    SparseLu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Complex64, Lu};

    fn ladder_csr(n: usize) -> CsrMat<f64> {
        // Tridiagonal conductance ladder plus a voltage-source branch on
        // the first node: the archetypal MNA pattern with a structural
        // zero at the branch diagonal.
        let dim = n + 1;
        let mut t = Triplets::new(dim, dim);
        for i in 0..n {
            t.push(i, i, 2.1 + (i as f64) * 0.01);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.push(0, n, 1.0);
        t.push(n, 0, 1.0);
        t.build()
    }

    #[test]
    fn triplets_sum_duplicates_and_keep_structural_zeros() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 1, 5.0);
        t.push(1, 1, -5.0);
        t.push(1, 0, 4.0);
        let a = t.build();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 0.0); // structural zero retained
        assert!(a.position(1, 1).is_some());
        assert_eq!(a.position(0, 1), None);
    }

    #[test]
    fn dense_round_trip() {
        let d = DMat::from_rows(&[&[2.0, 0.0, 1.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]);
        let s = CsrMat::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        assert!((&s.to_dense() - &d).norm_inf() < 1e-15);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = ladder_csr(6);
        let d = a.to_dense();
        let x: DVec<f64> = (0..a.cols()).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let ys = a.mul_vec(&x).unwrap();
        let yd = d.mul_vec(&x).unwrap();
        assert!((&ys - &yd).norm_inf() < 1e-14);
    }

    #[test]
    fn transpose_matches_dense() {
        let a = ladder_csr(5);
        let t = a.transpose();
        assert!((&t.to_dense() - &a.to_dense().transpose()).norm_inf() < 1e-15);
    }

    #[test]
    fn solve_matches_dense_on_mna_pattern() {
        let a = ladder_csr(12);
        let b: DVec<f64> = (0..a.rows()).map(|i| (i as f64).sin() + 0.5).collect();
        let xs = solve_sparse(&a, &b).unwrap();
        let xd = Lu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        assert!((&xs - &xd).norm_inf() < 1e-10);
        // Residual check too.
        let r = &a.mul_vec(&xs).unwrap() - &b;
        assert!(r.norm_inf() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let a = t.build();
        let x = solve_sparse(&a, &DVec::from(vec![2.0, 3.0])).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        let a = t.build();
        assert!(matches!(
            SparseLu::factor(&a),
            Err(MathError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn structurally_singular_reports_error() {
        // Empty column/row: no pivot candidates at some step.
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 2, 1.0);
        t.push(0, 2, 1.0);
        let a = t.build();
        assert!(matches!(
            SparseLu::factor(&a),
            Err(MathError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a: CsrMat<f64> = Triplets::new(2, 3).build();
        assert!(matches!(
            SparseLu::factor(&a),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_reuses_pattern() {
        let a = ladder_csr(10);
        let mut lu = SparseLu::factor(&a).unwrap();
        let before = (lu.factor_nnz(), lu.fill_in());

        // Same pattern, scaled values (as a new timestep would produce).
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v *= 3.5;
        }
        lu.refactor(&a2).unwrap();
        assert_eq!((lu.factor_nnz(), lu.fill_in()), before);
        let b: DVec<f64> = (0..a.rows()).map(|i| i as f64 + 1.0).collect();
        let xs = lu.solve(&b).unwrap();
        let xd = Lu::factor(&a2.to_dense()).unwrap().solve(&b).unwrap();
        assert!((&xs - &xd).norm_inf() < 1e-10);
    }

    #[test]
    fn refactored_clones_share_the_symbolic_analysis() {
        let a = ladder_csr(12);
        let base = SparseLu::factor(&a).unwrap();
        let b: DVec<f64> = (0..a.rows()).map(|i| (i as f64) * 0.5 - 2.0).collect();
        // A family of scaled variants: each clone must solve its own
        // matrix with the shared ordering/pivot sequence.
        for scale in [0.5, 1.0, 7.25] {
            let mut ak = a.clone();
            for v in ak.values_mut() {
                *v *= scale;
            }
            assert!(base.matches_pattern(&ak));
            let lu = base.refactored(&ak).unwrap();
            assert_eq!(lu.factor_nnz(), base.factor_nnz());
            let xs = lu.solve(&b).unwrap();
            let xd = Lu::factor(&ak.to_dense()).unwrap().solve(&b).unwrap();
            assert!((&xs - &xd).norm_inf() < 1e-10, "scale {scale}");
        }
        // The base factorization is untouched by the derived clones.
        let xs = base.solve(&b).unwrap();
        let xd = Lu::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        assert!((&xs - &xd).norm_inf() < 1e-10);
    }

    #[test]
    fn refactored_rejects_different_pattern() {
        let a = ladder_csr(4);
        let lu = SparseLu::factor(&a).unwrap();
        let other = ladder_csr(5);
        assert!(!lu.matches_pattern(&other));
        assert!(matches!(
            lu.refactored(&other),
            Err(MathError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn refactor_rejects_different_pattern() {
        let a = ladder_csr(4);
        let mut lu = SparseLu::factor(&a).unwrap();
        let other = ladder_csr(5);
        assert!(matches!(
            lu.refactor(&other),
            Err(MathError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn refactor_detects_new_singularity() {
        let a = ladder_csr(4);
        let mut lu = SparseLu::factor(&a).unwrap();
        let mut a2 = a.clone();
        for v in a2.values_mut() {
            *v = 0.0;
        }
        assert!(matches!(
            lu.refactor(&a2),
            Err(MathError::SingularMatrix { .. })
        ));
        // The factorization object stays usable for a clean refactor.
        lu.refactor(&a).unwrap();
        let b: DVec<f64> = (0..a.rows()).map(|_| 1.0).collect();
        let r = &a.mul_vec(&lu.solve(&b).unwrap()).unwrap() - &b;
        assert!(r.norm_inf() < 1e-10);
    }

    #[test]
    fn solve_transpose_matches_dense() {
        let a = ladder_csr(9);
        let lu = SparseLu::factor(&a).unwrap();
        let b: DVec<f64> = (0..a.rows()).map(|i| (i as f64) - 2.0).collect();
        let ys = lu.solve_transpose(&b).unwrap();
        let yd = Lu::factor(&a.to_dense().transpose())
            .unwrap()
            .solve(&b)
            .unwrap();
        assert!((&ys - &yd).norm_inf() < 1e-10);
    }

    #[test]
    fn complex_solve_and_transpose() {
        let j = Complex64::J;
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, Complex64::from_real(2.0) + j);
        t.push(0, 1, Complex64::from_real(-1.0));
        t.push(1, 0, Complex64::from_real(-1.0));
        t.push(1, 1, Complex64::from_real(3.0) - j);
        t.push(1, 2, j);
        t.push(2, 1, j);
        t.push(2, 2, Complex64::from_real(1.5));
        let a = t.build();
        let b = DVec::from(vec![
            Complex64::ONE,
            Complex64::J,
            Complex64::from_real(2.0),
        ]);
        let lu = SparseLu::factor(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let r = &a.mul_vec(&x).unwrap() - &b;
        assert!(r.norm_inf() < 1e-12);
        let y = lu.solve_transpose(&b).unwrap();
        let rt = &a.transpose().mul_vec(&y).unwrap() - &b;
        assert!(rt.norm_inf() < 1e-12);
    }

    #[test]
    fn min_degree_avoids_arrow_fill() {
        // Arrow matrix: dense first row/column. Natural order fills the
        // whole matrix; minimum-degree eliminates the leaves first and
        // produces zero fill.
        let n = 20;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 10.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        let a = t.build();
        let lu = SparseLu::factor(&a).unwrap();
        assert_eq!(lu.fill_in(), 0, "fill = {}", lu.fill_in());
        let b: DVec<f64> = (0..n).map(|i| i as f64).collect();
        let x = lu.solve(&b).unwrap();
        let r = &a.mul_vec(&x).unwrap() - &b;
        assert!(r.norm_inf() < 1e-10);
    }

    #[test]
    fn stats_merge_sums_counts_and_maxes_gauges() {
        let mut a = SolveStats {
            symbolic_analyses: 1,
            numeric_refactors: 5,
            nnz: 100,
            fill_in: 10,
            jacobian_reused: 2,
        };
        let b = SolveStats {
            symbolic_analyses: 2,
            numeric_refactors: 1,
            nnz: 50,
            fill_in: 20,
            jacobian_reused: 0,
        };
        a.merge(&b);
        assert_eq!(a.symbolic_analyses, 3);
        assert_eq!(a.numeric_refactors, 6);
        assert_eq!(a.jacobian_reused, 2);
        assert_eq!(a.nnz, 100);
        assert_eq!(a.fill_in, 20);
    }

    /// Perturbed copy of `ladder_csr(n)`: same pattern, lane-dependent
    /// values.
    fn ladder_csr_lane(n: usize, delta: f64) -> CsrMat<f64> {
        let mut a = ladder_csr(n);
        for v in a.values_mut() {
            if *v != 1.0 && *v != -1.0 {
                *v += delta;
            }
        }
        a
    }

    #[test]
    fn cast_symbolic_lane_refactor_matches_scalar_per_lane() {
        use crate::lanes::F64x4;
        let n = 12;
        let deltas = [0.0, 0.05, -0.07, 0.11];
        let scalar_lu = SparseLu::factor(&ladder_csr(n)).unwrap();

        // Widen the scalar symbolic analysis and refactor with a bundle
        // matrix whose lane l carries the delta-perturbed values.
        let scalars: Vec<CsrMat<f64>> = deltas.iter().map(|&d| ladder_csr_lane(n, d)).collect();
        let mut wide = ladder_csr(n).map_values(|_| F64x4::ZERO);
        for (p, v) in wide.values_mut().iter_mut().enumerate() {
            *v = F64x4::from_fn(|l| scalars[l].values()[p]);
        }
        let wide_lu = scalar_lu
            .cast_symbolic::<F64x4>()
            .refactored(&wide)
            .unwrap();

        let b: DVec<F64x4> = (0..wide.rows()).map(|i| F64x4::splat(i as f64)).collect();
        let x = wide_lu.solve(&b).unwrap();
        for (l, s) in scalars.iter().enumerate() {
            let b_l: DVec<f64> = (0..s.rows()).map(|i| i as f64).collect();
            let x_l = scalar_lu.refactored(s).unwrap().solve(&b_l).unwrap();
            for i in 0..s.rows() {
                assert!(
                    (x[i].lane(l) - x_l[i]).abs() <= 1e-9 * x_l[i].abs().max(1.0),
                    "lane {l} row {i}: {} vs {}",
                    x[i].lane(l),
                    x_l[i]
                );
            }
        }
    }

    #[test]
    fn approx_bytes_scales_with_lane_width() {
        use crate::lanes::{F64x16, F64x8};
        let lu = SparseLu::factor(&ladder_csr(16)).unwrap();
        let b1 = lu.approx_bytes();
        let b8 = lu.cast_symbolic::<F64x8>().approx_bytes();
        let b16 = lu.cast_symbolic::<F64x16>().approx_bytes();
        // Index bytes are shared; value bytes scale exactly K×.
        assert!(b8 > b1);
        assert!(b16 > b8);
        let value_bytes = |k: usize| {
            (lu.l_vals.len() + lu.u_vals.len() + lu.u_diag.len() + lu.work.len()) * 8 * k
        };
        let index_bytes = b1 - value_bytes(1);
        assert_eq!(b8, index_bytes + value_bytes(8));
        assert_eq!(b16, index_bytes + value_bytes(16));
    }
}
