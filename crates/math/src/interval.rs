//! Closed-interval arithmetic for abstract interpretation.
//!
//! An [`Interval`] `[lo, hi]` over-approximates the set of values a
//! quantity can take anywhere in a parameter box. The operators are the
//! standard outward-rounding-free interval extensions (this crate does
//! not chase the last ULP — the consumers in `ams-lint::space` only use
//! the intervals to *prove* facts with strict inequalities, so a
//! slightly loose bound weakens a proof but never unsounds it, provided
//! every operation over-approximates the true range, which these do in
//! real arithmetic).
//!
//! Division by an interval containing zero yields the whole real line
//! `[-∞, +∞]` — the sound "I know nothing" answer — rather than
//! panicking, so transfer functions can be written without case splits.

/// A closed interval `[lo, hi]` with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Interval {
    /// The interval `[lo, hi]`; bounds are reordered if given backwards.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The whole real line `[-∞, +∞]`.
    pub fn entire() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// The smallest interval containing both `self` and `other`.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Width `hi - lo` (0 for a point, +∞ for unbounded intervals).
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// The midpoint `(lo + hi) / 2`, computed overflow-safely.
    pub fn midpoint(self) -> f64 {
        self.lo + (self.hi - self.lo) * 0.5
    }

    /// Whether `v` lies in the closed interval.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the interval contains zero.
    pub fn contains_zero(self) -> bool {
        self.contains(0.0)
    }

    /// Whether the interval is a single point.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// Splits at the midpoint into `([lo, mid], [mid, hi])`.
    pub fn bisect(self) -> (Interval, Interval) {
        let mid = self.midpoint();
        (
            Interval {
                lo: self.lo,
                hi: mid,
            },
            Interval {
                lo: mid,
                hi: self.hi,
            },
        )
    }

    /// Magnitude range `|x| for x in [lo, hi]` — always non-negative.
    pub fn abs(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            Interval {
                lo: -self.hi,
                hi: -self.lo,
            }
        } else {
            Interval {
                lo: 0.0,
                hi: self.lo.abs().max(self.hi.abs()),
            }
        }
    }

    /// Multiplicative inverse `1/x`. For an interval containing zero the
    /// true range is unbounded; this returns [`Interval::entire`].
    pub fn recip(self) -> Interval {
        if self.contains_zero() {
            Interval::entire()
        } else {
            Interval::new(1.0 / self.hi, 1.0 / self.lo)
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl std::ops::Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let c = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        // NaN can only arise from 0·∞ corner products of already-entire
        // operands; fold it away so the result stays a valid interval.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in c {
            if v.is_nan() {
                return Interval::entire();
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval { lo, hi }
    }
}

impl std::ops::Div for Interval {
    type Output = Interval;
    // Interval division IS multiplication by the reciprocal hull —
    // recip() handles the zero-crossing cases.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Interval) -> Interval {
        self * rhs.recip()
    }
}

impl std::ops::Mul<f64> for Interval {
    type Output = Interval;
    fn mul(self, rhs: f64) -> Interval {
        self * Interval::point(rhs)
    }
}

impl std::ops::Add<f64> for Interval {
    type Output = Interval;
    fn add(self, rhs: f64) -> Interval {
        Interval {
            lo: self.lo + rhs,
            hi: self.hi + rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_normalize_and_classify() {
        let i = Interval::new(3.0, -1.0);
        assert_eq!(i, Interval::new(-1.0, 3.0));
        assert!(i.contains_zero());
        assert!(!i.is_point());
        assert!(Interval::point(2.0).is_point());
        assert_eq!(i.width(), 4.0);
        assert_eq!(i.midpoint(), 1.0);
    }

    #[test]
    fn arithmetic_encloses_samples() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(0.5, 4.0);
        for &x in &[-2.0, -0.3, 0.0, 1.7, 3.0] {
            for &y in &[0.5, 1.0, 2.5, 4.0] {
                assert!((a + b).contains(x + y), "{x}+{y}");
                assert!((a - b).contains(x - y), "{x}-{y}");
                assert!((a * b).contains(x * y), "{x}*{y}");
                assert!((a / b).contains(x / y), "{x}/{y}");
                assert!((-a).contains(-x));
                assert!(a.abs().contains(x.abs()));
            }
        }
    }

    #[test]
    fn recip_of_zero_crossing_is_entire() {
        assert_eq!(Interval::new(-1.0, 2.0).recip(), Interval::entire());
        let r = Interval::new(2.0, 4.0).recip();
        assert_eq!(r, Interval::new(0.25, 0.5));
        // Negative intervals invert with order preserved.
        let n = Interval::new(-4.0, -2.0).recip();
        assert_eq!(n, Interval::new(-0.5, -0.25));
    }

    #[test]
    fn bisect_covers_and_meets_at_midpoint() {
        let (l, r) = Interval::new(0.0, 8.0).bisect();
        assert_eq!(l, Interval::new(0.0, 4.0));
        assert_eq!(r, Interval::new(4.0, 8.0));
        assert_eq!(l.hull(r), Interval::new(0.0, 8.0));
    }

    #[test]
    fn entire_absorbs_multiplication() {
        let e = Interval::entire();
        assert_eq!(e * Interval::point(0.0), Interval::entire());
        assert_eq!(Interval::new(1.0, 2.0) / Interval::new(-1.0, 1.0), e);
    }
}
