use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// Implemented from scratch (no external crates) with the operations the
/// AC/noise solvers and the FFT need: field arithmetic, conjugation,
/// magnitude/phase, exponential and square root.
///
/// # Example
///
/// ```
/// use ams_math::Complex64;
///
/// let s = Complex64::new(0.0, 1.0); // j
/// assert!((s * s + Complex64::ONE).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const J: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// `r` is the magnitude, `theta` the angle in radians.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns the complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Returns the magnitude `|z|`, computed robustly via `hypot`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared magnitude `|z|²` (cheaper than [`abs`](Self::abs)).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the argument (phase angle) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse `1/z`.
    ///
    /// Returns an infinite/NaN value if `z` is zero, mirroring `1.0 / 0.0`
    /// semantics for floats.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Returns the complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Returns the principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im = ((r - self.re) / 2.0).max(0.0).sqrt();
        Complex64::new(re, if self.im < 0.0 { -im } else { im })
    }

    /// Returns `z` raised to an integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex64::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns `true` if either component is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm for improved robustness against overflow.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert!(close(a + b, Complex64::new(4.0, -2.0)));
        assert!(close(a - b, Complex64::new(-2.0, 6.0)));
        assert!(close(a * b, Complex64::new(11.0, 2.0)));
        assert!(close((a / b) * b, a));
    }

    #[test]
    fn division_by_tiny_imaginary_is_stable() {
        let a = Complex64::new(1.0, 0.0);
        let b = Complex64::new(0.0, 1e-300);
        let q = a / b;
        assert!(q.is_finite());
        assert!(close(q * b, a));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_identity() {
        // e^{jπ} = -1
        let z = (Complex64::J * PI).exp();
        assert!(close(z, Complex64::new(-1.0, 0.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = Complex64::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z), "sqrt({z}) = {r}");
            assert!(r.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn integer_powers() {
        let z = Complex64::new(1.0, 1.0);
        assert!(close(z.powi(0), Complex64::ONE));
        assert!(close(z.powi(2), Complex64::new(0.0, 2.0)));
        assert!(close(z.powi(4), Complex64::new(-4.0, 0.0)));
        assert!(close(z.powi(-2) * z.powi(2), Complex64::ONE));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(2.0, -3.0);
        assert!((a * a.conj()).im.abs() < 1e-15);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn recip_is_inverse() {
        let a = Complex64::new(0.5, -1.5);
        assert!(close(a * a.recip(), Complex64::ONE));
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [Complex64::ONE, Complex64::J, Complex64::new(2.0, 0.0)];
        let s: Complex64 = xs.iter().copied().sum();
        assert!(close(s, Complex64::new(3.0, 1.0)));
        let p: Complex64 = xs.iter().copied().product();
        assert!(close(p, Complex64::new(0.0, 2.0)));
    }
}
