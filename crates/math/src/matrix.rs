use crate::{MathError, Scalar};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix over a [`Scalar`] field.
///
/// This is the shared container for MNA system matrices, state-space
/// matrices and Jacobians. It favors clarity and robustness over raw
/// performance; sizes in this workspace stay in the hundreds, where dense
/// LU is perfectly adequate (and is itself one of the benchmarked
/// "dedicated algorithms", see experiment E5).
///
/// # Example
///
/// ```
/// use ams_math::DMat;
///
/// let i: DMat<f64> = DMat::identity(3);
/// let a = DMat::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
/// assert_eq!(&a * &i, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct DMat<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DMat<T> {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        DMat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = DMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[T]) -> Self {
        let mut m = DMat::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the entry at `(i, j)`, or `None` if out of range.
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i < self.rows && j < self.cols {
            self.data.get(i * self.cols + j)
        } else {
            None
        }
    }

    /// Adds `v` to the entry at `(i, j)` — the "stamp" primitive used by MNA.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn add_at(&mut self, i: usize, j: usize, v: T) {
        self[(i, j)] += v;
    }

    /// Returns a borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row index {i} out of range ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DMat<T> {
        DMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &DVec<T>) -> crate::Result<DVec<T>> {
        if x.len() != self.cols {
            return Err(MathError::dims(
                format!("vector of length {}", self.cols),
                format!("length {}", x.len()),
            ));
        }
        let mut y = DVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = T::ZERO;
            let row = self.row(i);
            for (a, &xj) in row.iter().zip(x.iter()) {
                acc += *a * xj;
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if inner dimensions differ.
    pub fn mul_mat(&self, b: &DMat<T>) -> crate::Result<DMat<T>> {
        if self.cols != b.rows {
            return Err(MathError::dims(
                format!("{}x* (inner dim {})", self.rows, self.cols),
                format!("{}x{}", b.rows, b.cols),
            ));
        }
        let mut c = DMat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == T::ZERO {
                    continue;
                }
                for j in 0..b.cols {
                    c[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        Ok(c)
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: T) -> DMat<T> {
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * k).collect(),
        }
    }

    /// Maximum absolute row sum (the induced ∞-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.modulus()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        for x in &mut self.data {
            *x = T::ZERO;
        }
    }

    /// Returns `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maps every entry through `f`, producing a matrix over another field.
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> DMat<U> {
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Flat access to the underlying row-major data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T: Scalar> Index<(usize, usize)> for DMat<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for DMat<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> Add for &DMat<T> {
    type Output = DMat<T>;
    fn add(self, rhs: &DMat<T>) -> DMat<T> {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in add"
        );
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl<T: Scalar> Sub for &DMat<T> {
    type Output = DMat<T>;
    fn sub(self, rhs: &DMat<T>) -> DMat<T> {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in sub"
        );
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl<T: Scalar> Mul for &DMat<T> {
    type Output = DMat<T>;
    fn mul(self, rhs: &DMat<T>) -> DMat<T> {
        self.mul_mat(rhs)
            .expect("shape mismatch in matrix multiply")
    }
}

impl<T: Scalar> fmt::Debug for DMat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

/// A dense vector over a [`Scalar`] field.
///
/// # Example
///
/// ```
/// use ams_math::DVec;
///
/// let v = DVec::from(vec![3.0, 4.0]);
/// assert!((v.norm2() - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub struct DVec<T: Scalar = f64> {
    data: Vec<T>,
}

impl<T: Scalar> DVec<T> {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        DVec {
            data: vec![T::ZERO; n],
        }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable iteration over the entries.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Borrow as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Borrow as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.modulus() * x.modulus())
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().map(|x| x.modulus()).fold(0.0, f64::max)
    }

    /// Dot product (no conjugation; use `conj` entries for Hermitian forms).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] on length mismatch.
    pub fn dot(&self, rhs: &DVec<T>) -> crate::Result<T> {
        if self.len() != rhs.len() {
            return Err(MathError::dims(
                format!("length {}", self.len()),
                format!("length {}", rhs.len()),
            ));
        }
        Ok(self
            .iter()
            .zip(rhs.iter())
            .fold(T::ZERO, |acc, (&a, &b)| acc + a * b))
    }

    /// In-place `self += k · rhs` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn axpy(&mut self, k: T, rhs: &DVec<T>) {
        assert_eq!(self.len(), rhs.len(), "length mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(rhs.iter()) {
            *a += k * b;
        }
    }

    /// Scales every entry by `k`.
    pub fn scale(&self, k: T) -> DVec<T> {
        DVec {
            data: self.data.iter().map(|&x| x * k).collect(),
        }
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        for x in &mut self.data {
            *x = T::ZERO;
        }
    }

    /// Returns `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maps every entry through `f`, producing a vector over another field.
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> DVec<U> {
        DVec {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

impl<T: Scalar> From<Vec<T>> for DVec<T> {
    fn from(data: Vec<T>) -> Self {
        DVec { data }
    }
}

impl<T: Scalar> FromIterator<T> for DVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DVec {
            data: iter.into_iter().collect(),
        }
    }
}

impl<T: Scalar> Index<usize> for DVec<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T: Scalar> IndexMut<usize> for DVec<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<T: Scalar> Add for &DVec<T> {
    type Output = DVec<T>;
    fn add(self, rhs: &DVec<T>) -> DVec<T> {
        assert_eq!(self.len(), rhs.len(), "length mismatch in add");
        self.iter().zip(rhs.iter()).map(|(&a, &b)| a + b).collect()
    }
}

impl<T: Scalar> Sub for &DVec<T> {
    type Output = DVec<T>;
    fn sub(self, rhs: &DVec<T>) -> DVec<T> {
        assert_eq!(self.len(), rhs.len(), "length mismatch in sub");
        self.iter().zip(rhs.iter()).map(|(&a, &b)| a - b).collect()
    }
}

impl<T: Scalar> fmt::Debug for DVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DVec[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i: DMat<f64> = DMat::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = DVec::from(vec![5.0, 6.0]);
        let y = a.mul_vec(&x).unwrap();
        assert_eq!(y.as_slice(), &[17.0, 39.0]);
    }

    #[test]
    fn mul_vec_rejects_bad_shape() {
        let a: DMat<f64> = DMat::zeros(2, 3);
        let x = DVec::from(vec![1.0, 2.0]);
        assert!(matches!(
            a.mul_vec(&x),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn complex_matrix_works() {
        let j = Complex64::J;
        let a = DMat::from_rows(&[&[Complex64::ONE, j], &[-j, Complex64::ONE]]);
        let prod = a.mul_mat(&a).unwrap();
        // [[1, j], [-j, 1]]² = [[2, 2j], [-2j, 2]]
        assert!((prod[(0, 0)] - Complex64::new(2.0, 0.0)).abs() < 1e-12);
        assert!((prod[(0, 1)] - Complex64::new(0.0, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let v = DVec::from(vec![3.0, -4.0]);
        assert!((v.norm2() - 5.0).abs() < 1e-12);
        assert_eq!(v.norm_inf(), 4.0);
        let m = DMat::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(m.norm_inf(), 7.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut v = DVec::from(vec![1.0, 2.0]);
        let w = DVec::from(vec![10.0, 20.0]);
        v.axpy(0.5, &w);
        assert_eq!(v.as_slice(), &[6.0, 12.0]);
        assert_eq!(v.scale(2.0).as_slice(), &[12.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m: DMat<f64> = DMat::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn from_diag_and_map() {
        let d = DMat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        let c = d.map(Complex64::from_real);
        assert_eq!(c[(2, 2)], Complex64::from_real(3.0));
    }
}
