//! Running statistics for waveform post-processing.
//!
//! Used by the examples and benches to summarize simulated waveforms
//! (ripple, RMS, settling) without storing full traces.

/// Single-pass accumulator using Welford's algorithm for numerically
/// stable mean/variance, plus min/max and RMS.
///
/// # Example
///
/// ```
/// use ams_math::stats::Running;
///
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0] {
///     r.add(x);
/// }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.max(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Root-mean-square value.
    pub fn rms(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum_sq / self.n as f64).sqrt()
        }
    }

    /// Smallest sample (+∞ for an empty accumulator).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ for an empty accumulator).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Peak-to-peak range (0 for an empty accumulator).
    pub fn peak_to_peak(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut r = Running::new();
        for x in iter {
            r.add(x);
        }
        r
    }
}

/// Converts a power ratio to decibels (`10·log10`).
pub fn to_db_power(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts an amplitude ratio to decibels (`20·log10`).
pub fn to_db_amplitude(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let r: Running = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert_eq!(r.peak_to_peak(), 7.0);
    }

    #[test]
    fn rms_of_sine_is_amplitude_over_sqrt2() {
        let n = 10_000;
        let r: Running = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin())
            .collect();
        assert!((r.rms() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!(r.mean().abs() < 1e-10);
    }

    #[test]
    fn empty_is_benign() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.rms(), 0.0);
        assert_eq!(r.peak_to_peak(), 0.0);
    }

    #[test]
    fn db_conversions() {
        assert!((to_db_power(100.0) - 20.0).abs() < 1e-12);
        assert!((to_db_amplitude(10.0) - 20.0).abs() < 1e-12);
    }
}
