//! Property-based tests of the SDF lint pass over randomized graphs.
//!
//! Two invariants tie the static analyzer to the runtime scheduler:
//!
//! 1. A graph that `lint_sdf` passes clean always schedules — the lint
//!    pass has no false positives on consistent acyclic topologies.
//! 2. A graph whose balance equations are violated is flagged with
//!    `TDF001`, and the runtime scheduler rejects the same graph with an
//!    `SdfError` carrying the *same* diagnostic code (code parity).

use ams_lint::{codes, lint_sdf};
use ams_sdf::{schedule, SdfGraph};
use proptest::prelude::*;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Builds a graph that is rate-consistent *by construction*: pick a
/// repetition vector `q` up front, then give every edge `(s, d)` the
/// rates `produce = f·lcm(q_s, q_d)/q_s`, `consume = f·lcm(q_s, q_d)/q_d`
/// so the balance equation `produce·q_s = consume·q_d` holds exactly.
/// Edges only go forward (`src < dst`), so the graph is acyclic.
fn balanced_dag(q: &[u64], edges: &[(usize, usize, u64)]) -> SdfGraph {
    let mut g = SdfGraph::new();
    let actors: Vec<_> = (0..q.len()).map(|i| g.add_actor(format!("a{i}"))).collect();
    for &(src, dst, f) in edges {
        let l = lcm(q[src], q[dst]);
        g.connect(actors[src], f * l / q[src], actors[dst], f * l / q[dst], 0)
            .expect("rates are non-zero by construction");
    }
    g
}

/// Maps raw draws onto forward edges of an `n`-actor graph: `src < dst`
/// always holds, so the resulting graph is acyclic by construction.
fn project_edges(n: usize, raw: &[(usize, usize, u64)]) -> Vec<(usize, usize, u64)> {
    raw.iter()
        .map(|&(s, d, f)| {
            let src = s % (n - 1);
            let dst = src + 1 + d % (n - 1 - src);
            (src, dst, f)
        })
        .collect()
}

/// Draws a repetition vector (2–6 actors, repetitions 1–4) and raw edge
/// material for [`project_edges`] (rate multiplier 1–2 per edge).
#[allow(clippy::type_complexity)]
fn graph_inputs() -> impl Strategy<Value = (Vec<u64>, Vec<(usize, usize, u64)>)> {
    (
        proptest::collection::vec(1u64..=4, 2..=6),
        proptest::collection::vec((0usize..64, 0usize..64, 1u64..=2), 1..=8),
    )
}

proptest! {
    /// Lint-clean graphs always schedule: on a balanced DAG the lint
    /// pass emits no TDF001/TDF002 and the runtime scheduler succeeds
    /// with a repetition vector proportional to the chosen `q`.
    #[test]
    fn lint_clean_graphs_always_schedule(input in graph_inputs()) {
        let (q, raw) = input;
        let edges = project_edges(q.len(), &raw);
        let g = balanced_dag(&q, &edges);

        let report = lint_sdf(&g);
        prop_assert!(
            !report.has_code(codes::TDF001),
            "false positive TDF001 on a balanced graph:\n{}",
            report.render()
        );
        prop_assert!(
            !report.has_code(codes::TDF002),
            "false positive TDF002 on an acyclic graph:\n{}",
            report.render()
        );

        let s = schedule(&g).expect("balanced DAG must schedule");
        let rep = s.repetition_vector();
        // Per connected component the computed vector is the minimal
        // multiple of `q` restricted to that component; check balance
        // directly instead of comparing to `q`.
        for (_, e) in g.edges() {
            prop_assert_eq!(
                rep[e.src.index()] * e.produce,
                rep[e.dst.index()] * e.consume
            );
        }
    }

    /// Breaking one balance equation is always caught — and the static
    /// pass and the runtime scheduler agree on the diagnostic code. The
    /// mismatch is introduced as a *parallel* edge with a perturbed
    /// consume rate, so the inconsistency cannot be absorbed into a
    /// different repetition vector.
    #[test]
    fn rate_mismatch_yields_tdf001_in_lint_and_runtime(
        input in graph_inputs(),
        delta in 1u64..=3,
    ) {
        let (q, raw) = input;
        let edges = project_edges(q.len(), &raw);
        let mut g = balanced_dag(&q, &edges);

        // Duplicate the first edge with a strictly larger consume rate:
        // produce·q_s = consume·q_d and produce·q_s = (consume+δ)·q_d
        // cannot both hold for any positive q.
        let e0 = *g.edges().next().expect("at least one edge").1;
        g.connect(e0.src, e0.produce, e0.dst, e0.consume + delta, 0)
            .expect("rates are non-zero");

        let report = lint_sdf(&g);
        prop_assert!(
            report.has_code(codes::TDF001),
            "lint missed an inconsistent graph:\n{}",
            report.render()
        );
        prop_assert!(report.error_count() > 0);

        // Runtime parity: the scheduler rejects the same graph with the
        // same stable code.
        let err = schedule(&g).expect_err("inconsistent graph must not schedule");
        prop_assert_eq!(err.code(), codes::TDF001);
    }
}
