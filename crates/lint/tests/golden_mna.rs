//! Golden tests: one minimal netlist per MNA structural diagnostic,
//! with the exact human rendering and JSON emission pinned down. These
//! freeze the diagnostic codes, message wording and item lists that
//! external tooling is allowed to depend on — change them deliberately.

use ams_lint::{codes, lint_circuit};
use ams_net::Circuit;

/// MNA001 — a resistor island with no DC path to ground.
#[test]
fn golden_floating_node() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let c = ckt.node("c");
    let d = ckt.node("d");
    ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    ckt.resistor("R2", c, d, 1e3).unwrap();
    let r = lint_circuit("island", &ckt);

    assert_eq!(
        r.render(),
        "island: error [MNA001]: node(s) 'c', 'd' have no DC path to ground; \
         their voltage is undefined (c, d)\n\
         island: 1 error(s), 0 warning(s)\n"
    );
    assert_eq!(
        r.to_json(),
        "{\"context\":\"island\",\"errors\":1,\"warnings\":0,\"diagnostics\":[\
         {\"code\":\"MNA001\",\"severity\":\"error\",\"message\":\
         \"node(s) 'c', 'd' have no DC path to ground; their voltage is \
         undefined\",\"items\":[\"c\",\"d\"]}]}"
    );
}

/// MNA002 — a node reaching ground only through capacitors (warning).
#[test]
fn golden_cap_only_path() {
    let mut ckt = Circuit::new();
    let mid = ckt.node("mid");
    ckt.voltage_source("V1", mid, Circuit::GROUND, 1.0).unwrap();
    let tap = ckt.node("tap");
    ckt.capacitor("C1", mid, tap, 1e-9).unwrap();
    ckt.capacitor("C2", tap, Circuit::GROUND, 1e-9).unwrap();
    let r = lint_circuit("cap", &ckt);

    assert_eq!(r.error_count(), 0, "{}", r.render());
    assert_eq!(r.warning_count(), 1);
    let d = &r.diagnostics[0];
    assert_eq!(d.code, codes::MNA002);
    assert_eq!(d.items, vec!["tap".to_string()]);
    assert_eq!(
        d.message,
        "node(s) 'tap' reach ground only through capacitors; the DC operating \
         point is defined solely by the solver's gmin leakage"
    );
}

/// MNA003 — two ideal voltage sources in parallel close a KVL loop.
#[test]
fn golden_voltage_source_loop() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
    ckt.voltage_source("V2", a, Circuit::GROUND, 2.0).unwrap();
    ckt.resistor("RL", a, Circuit::GROUND, 1e3).unwrap();
    let r = lint_circuit("vloop", &ckt);

    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == codes::MNA003)
        .expect("MNA003 present");
    assert_eq!(d.items, vec!["V2".to_string()]);
    assert_eq!(
        d.message,
        "voltage source(s) 'V2' close a loop of ideal voltage-defined \
         branches; KVL around the loop is over-determined"
    );
    // Parallel ideal sources also collapse the structural rank (two
    // branch-current rows compete for one node column).
    assert!(r.has_code(codes::MNA005), "{}", r.render());
}

/// MNA004 — a node fed only by current sources (cutset).
#[test]
fn golden_current_source_cutset() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.current_source("I1", a, Circuit::GROUND, 1e-3).unwrap();
    let r = lint_circuit("cutset", &ckt);

    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == codes::MNA004)
        .expect("MNA004 present");
    assert_eq!(d.items, vec!["a".to_string()]);
    assert_eq!(
        d.message,
        "node(s) 'a' are fed only by current sources (a current-source \
         cutset); KCL fixes the current but no element fixes the voltage"
    );
    assert!(r.has_code(codes::MNA005), "{}", r.render());
}

/// MNA005 — structural singularity reported with the offending rows.
#[test]
fn golden_structural_singularity() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
    ckt.voltage_source("V2", a, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("RL", a, Circuit::GROUND, 1e3).unwrap();
    let r = lint_circuit("singular", &ckt);

    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == codes::MNA005)
        .expect("MNA005 present");
    assert_eq!(d.items.len(), 1, "{}", r.render());
    assert!(d.message.contains("structurally singular"), "{}", d.message);
    assert!(
        d.message.contains("structural rank 2 of 3"),
        "{}",
        d.message
    );
}

/// A well-formed netlist stays silent — the golden "no findings" case.
#[test]
fn golden_clean_netlist_renders_summary_only() {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.voltage_source("V1", inp, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("R1", inp, out, 1e3).unwrap();
    ckt.capacitor("C1", out, Circuit::GROUND, 1e-9).unwrap();
    ckt.resistor("R2", out, Circuit::GROUND, 1e4).unwrap();
    let r = lint_circuit("rc", &ckt);

    assert!(r.is_clean(), "{}", r.render());
    assert_eq!(r.render(), "rc: 0 error(s), 0 warning(s)\n");
    assert_eq!(
        r.to_json(),
        "{\"context\":\"rc\",\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"
    );
}
