//! Pre-elaboration static analysis ("lint") for AMS models.
//!
//! The paper's design objectives call for the framework to reject
//! ill-posed models *before* simulation starts: multirate dataflow
//! clusters whose token rates have no consistent solution, delay-free
//! scheduling cycles, and conservative-law netlists whose MNA system is
//! singular by construction. This crate implements those checks as a
//! standalone diagnostics engine that runs on cheap structural views of
//! the model — no state is allocated, no matrix factored — and emits
//! machine-readable [`Diagnostic`]s with stable codes.
//!
//! # Code registry
//!
//! Every diagnostic carries a stable code (`TDF001`, `MNA003`, …) from
//! [`diag::codes::registry`]. Runtime errors in `ams-core`, `ams-sdf`
//! and `ams-net` map to the *same* codes via their `code()` methods, so
//! a static finding and the runtime failure it predicts can be
//! correlated by tooling.
//!
//! # Example
//!
//! ```
//! use ams_lint::{codes, lint_tdf, TdfModel};
//!
//! let mut m = TdfModel::new("demo");
//! let a = m.add_module("src");
//! let b = m.add_module("sink");
//! let s = m.add_signal("x");
//! m.write(a, s, 2);
//! m.read(b, s, 3, 0);
//! m.set_timestep_fs(a, 1_000_000); // 1 ns
//! let report = lint_tdf(&m);
//! assert!(report.is_clean(), "{}", report.render());
//!
//! // A rate mismatch on a feedback loop is caught statically:
//! let fb = m.add_signal("fb");
//! m.write(b, fb, 1);
//! m.read(a, fb, 1, 1);
//! assert!(lint_tdf(&m).has_code(codes::TDF001));
//! ```
//!
//! Enforcement is policy-driven: [`LintPolicy`] decides per code
//! whether a diagnostic is denied (fails elaboration), warned, or
//! allowed, with severity-level defaults (deny errors, warn warnings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
mod mna;
pub mod space;
mod tdf;

pub use diag::{codes, Diagnostic, LintLevel, LintPolicy, LintReport, Severity};
pub use mna::lint_circuit;
pub use space::{
    classify_point, lint_space, ParamBox, ParamRange, SpaceBind, SpaceReport, SpaceSpec,
    SpaceTarget, SpaceVerdict, Verdict,
};
pub use tdf::{lint_sdf, lint_tdf, PortUse, TdfModel};

use ams_kernel::SimTime;
use diag::codes as c;

/// Checks a TDF cluster's period against the DE kernel clocks it
/// exchanges data with through converter ports.
///
/// When a cluster with DE bindings has a period that is incommensurate
/// with a kernel clock (neither divides the other), the converter ports
/// sample/update at instants that drift against the clock edges — a
/// frequent source of off-by-one-sample surprises. Emits [`codes::CNV001`]
/// as a warning (the semantics are well-defined, just usually not what
/// was meant).
pub fn lint_converter_timing(
    context: impl Into<String>,
    cluster_period: SimTime,
    n_de_bindings: usize,
    clocks: &[(String, SimTime)],
) -> LintReport {
    let mut r = LintReport::new(context);
    if n_de_bindings == 0 || cluster_period.is_zero() {
        return r;
    }
    let p = cluster_period.as_fs();
    for (name, period) in clocks {
        let q = period.as_fs();
        if q == 0 {
            continue;
        }
        if !p.is_multiple_of(q) && !q.is_multiple_of(p) {
            r.push(
                Diagnostic::warning(
                    c::CNV001,
                    format!(
                        "cluster period {p} fs is incommensurate with clock '{name}' \
                         ({q} fs); converter-port samples drift against the clock edges"
                    ),
                )
                .with_items([name.as_str()]),
            );
        }
    }
    r
}

/// `true` when `--lint-only` is among the process arguments.
///
/// Convenience for examples and small drivers: build the model, call
/// this, and hand the reports to [`exit_lint_only`] instead of
/// simulating.
pub fn lint_only_requested() -> bool {
    std::env::args().any(|a| a == "--lint-only")
}

/// Prints every report (human rendering followed by its JSON emission)
/// and exits the process: status 0 when no error-severity diagnostic
/// was found, status 1 otherwise.
pub fn exit_lint_only(reports: &[LintReport]) -> ! {
    let mut errors = 0;
    for r in reports {
        print!("{}", r.render());
        println!("{}", r.to_json());
        errors += r.error_count();
    }
    std::process::exit(if errors > 0 { 1 } else { 0 })
}

/// `true` when `--lint-space` is among the process arguments (the flag
/// may be followed by a `NAME=LO:HI[,…]` ranges token, which the
/// example's own argument loop parses via [`space::parse_ranges`]).
pub fn lint_space_requested() -> bool {
    std::env::args().any(|a| a == "--lint-space")
}

/// Prints a space report (human rendering, then the JSON of the inner
/// [`LintReport`]) and exits: status 0 when no error-severity
/// diagnostic was found, status 1 otherwise.
pub fn exit_space_lint(report: &SpaceReport) -> ! {
    print!("{}", report.render());
    println!("{}", report.report.to_json());
    std::process::exit(if report.report.error_count() > 0 {
        1
    } else {
        0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commensurate_clocks_are_clean() {
        let clocks = vec![("clk".to_string(), SimTime::from_ns(10))];
        let r = lint_converter_timing("t", SimTime::from_ns(20), 1, &clocks);
        assert!(r.is_clean(), "{}", r.render());
        // The other direction (clock slower than cluster) is also fine.
        let r = lint_converter_timing("t", SimTime::from_ns(5), 1, &clocks);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn incommensurate_clock_warns_cnv001() {
        let clocks = vec![("clk".to_string(), SimTime::from_ns(3))];
        let r = lint_converter_timing("t", SimTime::from_ns(20), 1, &clocks);
        assert!(r.has_code(codes::CNV001), "{}", r.render());
        assert_eq!(r.error_count(), 0);
    }

    #[test]
    fn no_bindings_no_check() {
        let clocks = vec![("clk".to_string(), SimTime::from_ns(3))];
        let r = lint_converter_timing("t", SimTime::from_ns(20), 0, &clocks);
        assert!(r.is_clean());
    }
}
