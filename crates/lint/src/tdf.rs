//! Static analyses of timed/static dataflow graphs.
//!
//! The checks mirror what `ams-core` elaboration enforces at runtime —
//! balance equations, delay accounting, writer uniqueness, timestep
//! propagation — plus purely advisory structure checks (dangling
//! signals, isolated components). A [`TdfModel`] is a neutral IR built
//! by the framework from module `setup()` declarations; [`lint_sdf`]
//! runs the graph-level subset directly on an `ams-sdf` graph.

use crate::diag::{codes, Diagnostic, LintReport};
use ams_math::{common_denominator, gcd, Rational};
use ams_sdf::SdfGraph;

/// One port use: module `module` reads or writes signal `signal` at
/// `rate` tokens per firing, with `delay` initial samples (reads only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortUse {
    /// Index of the module (from [`TdfModel::add_module`]).
    pub module: usize,
    /// Index of the signal (from [`TdfModel::add_signal`]).
    pub signal: usize,
    /// Tokens per firing.
    pub rate: u64,
    /// Initial samples (delays); only meaningful on reads.
    pub delay: u64,
}

/// Neutral pre-elaboration view of a TDF cluster: modules, signals,
/// port declarations, timesteps and probes — everything the static
/// analyses need, nothing executable.
#[derive(Debug, Clone, Default)]
pub struct TdfModel {
    name: String,
    modules: Vec<String>,
    signals: Vec<String>,
    reads: Vec<PortUse>,
    writes: Vec<PortUse>,
    /// Declared timestep per module, in femtoseconds.
    timesteps: Vec<Option<u64>>,
    probed: Vec<bool>,
}

impl TdfModel {
    /// Creates an empty model with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        TdfModel {
            name: name.into(),
            ..TdfModel::default()
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a module; returns its index.
    pub fn add_module(&mut self, name: impl Into<String>) -> usize {
        self.modules.push(name.into());
        self.timesteps.push(None);
        self.modules.len() - 1
    }

    /// Registers a signal; returns its index.
    pub fn add_signal(&mut self, name: impl Into<String>) -> usize {
        self.signals.push(name.into());
        self.probed.push(false);
        self.signals.len() - 1
    }

    /// Declares that `module` reads `signal` at `rate` with `delay`
    /// initial samples.
    pub fn read(&mut self, module: usize, signal: usize, rate: u64, delay: u64) {
        self.reads.push(PortUse {
            module,
            signal,
            rate,
            delay,
        });
    }

    /// Declares that `module` writes `signal` at `rate`.
    pub fn write(&mut self, module: usize, signal: usize, rate: u64) {
        self.writes.push(PortUse {
            module,
            signal,
            rate,
            delay: 0,
        });
    }

    /// Declares `module`'s timestep in femtoseconds.
    pub fn set_timestep_fs(&mut self, module: usize, fs: u64) {
        self.timesteps[module] = Some(fs);
    }

    /// Marks `signal` as probed (an external observer counts as a
    /// reader for dangling-signal purposes).
    pub fn mark_probed(&mut self, signal: usize) {
        self.probed[signal] = true;
    }

    /// Number of modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// The cluster period implied by the declared timesteps and the
    /// balance solution, in femtoseconds — `None` if the model is not
    /// consistent enough to have one.
    pub fn period_fs(&self) -> Option<u64> {
        let edges = self.edges()?;
        let q = solve_balance(self.modules.len(), &edges).ok()?;
        self.timesteps
            .iter()
            .zip(&q)
            .find_map(|(&ts, &reps)| ts.and_then(|t| t.checked_mul(reps)))
    }

    /// Dataflow edges derived from (unique-writer) signals; `None` if a
    /// signal has several writers.
    fn edges(&self) -> Option<Vec<Edge>> {
        let mut writer: Vec<Option<&PortUse>> = vec![None; self.signals.len()];
        for w in &self.writes {
            if writer[w.signal].is_some() {
                return None;
            }
            writer[w.signal] = Some(w);
        }
        let mut edges = Vec::new();
        for r in &self.reads {
            if let Some(w) = writer[r.signal] {
                if w.rate > 0 && r.rate > 0 {
                    edges.push(Edge {
                        src: w.module,
                        produce: w.rate,
                        dst: r.module,
                        consume: r.rate,
                        tokens: r.delay,
                        signal: r.signal,
                    });
                }
            }
        }
        Some(edges)
    }
}

/// A dataflow dependency used by the shared graph analyses.
#[derive(Debug, Clone, Copy)]
struct Edge {
    src: usize,
    produce: u64,
    dst: usize,
    consume: u64,
    tokens: u64,
    /// Signal index ([`lint_tdf`]) or edge index ([`lint_sdf`]) for
    /// naming.
    signal: usize,
}

/// Lints a full TDF model: connectivity, rates, cycles and timesteps.
pub fn lint_tdf(m: &TdfModel) -> LintReport {
    let mut r = LintReport::new(m.name.clone());
    let n_mods = m.modules.len();

    // TDF009: zero rates (checked first; zero-rate ports are excluded
    // from the rate analyses below).
    for u in m.reads.iter().chain(&m.writes) {
        if u.rate == 0 {
            r.push(
                Diagnostic::error(
                    codes::TDF009,
                    format!(
                        "module '{}' declares a zero rate on signal '{}'",
                        m.modules[u.module], m.signals[u.signal]
                    ),
                )
                .with_items([m.modules[u.module].as_str(), m.signals[u.signal].as_str()]),
            );
        }
    }

    // Writer map; TDF004 (multiple writers), TDF003 (no writer),
    // TDF007 (dangling).
    let mut writers: Vec<Vec<&PortUse>> = vec![Vec::new(); m.signals.len()];
    for w in &m.writes {
        writers[w.signal].push(w);
    }
    let mut readers: Vec<Vec<&PortUse>> = vec![Vec::new(); m.signals.len()];
    for u in &m.reads {
        readers[u.signal].push(u);
    }
    for (s, ws) in writers.iter().enumerate() {
        if ws.len() > 1 {
            let mut items = vec![m.signals[s].clone()];
            items.extend(ws.iter().map(|w| m.modules[w.module].clone()));
            r.push(
                Diagnostic::error(
                    codes::TDF004,
                    format!("signal '{}' has {} writers", m.signals[s], ws.len()),
                )
                .with_items(items),
            );
        }
        let observed = !readers[s].is_empty() || m.probed[s];
        if ws.is_empty() && observed {
            let mut items = vec![m.signals[s].clone()];
            items.extend(readers[s].iter().map(|u| m.modules[u.module].clone()));
            r.push(
                Diagnostic::error(
                    codes::TDF003,
                    format!("signal '{}' is read but never written", m.signals[s]),
                )
                .with_items(items),
            );
        }
        if ws.len() == 1 && !observed {
            r.push(
                Diagnostic::warning(
                    codes::TDF007,
                    format!(
                        "signal '{}' is written by '{}' but never read or probed",
                        m.signals[s], m.modules[ws[0].module]
                    ),
                )
                .with_items([m.signals[s].as_str(), m.modules[ws[0].module].as_str()]),
            );
        }
    }

    // Rate-dependent analyses need unambiguous edges.
    let edges = match m.edges() {
        Some(e) => e,
        None => return r, // multiple writers already reported
    };

    let name_edge = |e: &Edge| {
        format!(
            "'{}' \u{2192} '{}' via signal '{}'",
            m.modules[e.src], m.modules[e.dst], m.signals[e.signal]
        )
    };
    let q = check_balance(n_mods, &edges, &mut r, |e| {
        (
            name_edge(e),
            vec![
                m.signals[e.signal].clone(),
                m.modules[e.src].clone(),
                m.modules[e.dst].clone(),
            ],
        )
    });
    check_zero_delay_cycles(n_mods, &edges, &m.modules, &mut r);

    // Timestep checks mirror elaboration phase 3.
    let declared: Vec<usize> = (0..n_mods).filter(|&i| m.timesteps[i].is_some()).collect();
    if declared.is_empty() {
        r.push(Diagnostic::error(
            codes::TDF005,
            "no module declares a timestep; the cluster has no time base",
        ));
    }
    for &i in &declared {
        if m.timesteps[i] == Some(0) {
            r.push(
                Diagnostic::error(
                    codes::TDF013,
                    format!("module '{}' declared a zero timestep", m.modules[i]),
                )
                .with_items([m.modules[i].as_str()]),
            );
        }
    }
    if let Some(q) = &q {
        let mut period: Option<(u64, usize)> = None;
        for &i in &declared {
            let ts = m.timesteps[i].expect("declared");
            if ts == 0 {
                continue;
            }
            let implied = match ts.checked_mul(q[i]) {
                Some(p) => p,
                None => continue,
            };
            match period {
                None => period = Some((implied, i)),
                Some((p, first)) if p != implied => {
                    r.push(
                        Diagnostic::error(
                            codes::TDF006,
                            format!(
                                "module '{}' implies a cluster period of {implied} fs, \
                                 but '{}' established {p} fs",
                                m.modules[i], m.modules[first]
                            ),
                        )
                        .with_items([m.modules[i].as_str(), m.modules[first].as_str()]),
                    );
                }
                Some(_) => {}
            }
        }
        if let Some((p, _)) = period {
            for (i, &reps) in q.iter().enumerate() {
                if reps > 0 && p % reps != 0 {
                    r.push(
                        Diagnostic::error(
                            codes::TDF012,
                            format!(
                                "cluster period {p} fs is not divisible by the {reps} \
                                 firings of module '{}'",
                                m.modules[i]
                            ),
                        )
                        .with_items([m.modules[i].as_str()]),
                    );
                }
            }
        }

        // TDF008: components with no timestep declaration inherit the
        // cluster rate silently — usually a forgotten `set_timestep`.
        if !declared.is_empty() {
            let comp = components(n_mods, &edges);
            let n_comps = comp.iter().copied().max().map_or(0, |c| c + 1);
            let mut has_ts = vec![false; n_comps];
            for &i in &declared {
                has_ts[comp[i]] = true;
            }
            for (c, &ts_declared) in has_ts.iter().enumerate() {
                if !ts_declared {
                    let members: Vec<String> = (0..n_mods)
                        .filter(|&i| comp[i] == c)
                        .map(|i| m.modules[i].clone())
                        .collect();
                    r.push(
                        Diagnostic::warning(
                            codes::TDF008,
                            format!(
                                "module(s) {} are not connected to any \
                                 timestep-declaring module and inherit the cluster rate",
                                members
                                    .iter()
                                    .map(|s| format!("'{s}'"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        )
                        .with_items(members),
                    );
                }
            }
        }
    }
    r
}

/// Lints a bare SDF graph: balance equations and zero-delay cycles.
/// The same codes `ams-sdf` scheduling errors map to at runtime.
pub fn lint_sdf(g: &SdfGraph) -> LintReport {
    let mut r = LintReport::new("sdf");
    let names: Vec<String> = (0..g.actor_count())
        .map(|i| {
            // Actor handles are dense indices in creation order.
            g.edges()
                .flat_map(|(_, e)| [e.src, e.dst])
                .find(|a| a.index() == i)
                .map(|a| g.actor_name(a).to_string())
                .unwrap_or_else(|| format!("actor{i}"))
        })
        .collect();
    let edges: Vec<Edge> = g
        .edges()
        .map(|(id, e)| Edge {
            src: e.src.index(),
            produce: e.produce,
            dst: e.dst.index(),
            consume: e.consume,
            tokens: e.initial_tokens,
            signal: id.index(),
        })
        .collect();
    check_balance(g.actor_count(), &edges, &mut r, |e| {
        (
            format!(
                "'{}' \u{2192} '{}' (edge {})",
                names[e.src], names[e.dst], e.signal
            ),
            vec![names[e.src].clone(), names[e.dst].clone()],
        )
    });
    check_zero_delay_cycles(g.actor_count(), &edges, &names, &mut r);
    r
}

/// Solves the balance equations; emits [`codes::TDF001`] on failure.
/// Returns the per-module repetition vector when consistent.
fn check_balance(
    n: usize,
    edges: &[Edge],
    r: &mut LintReport,
    describe: impl Fn(&Edge) -> (String, Vec<String>),
) -> Option<Vec<u64>> {
    match solve_balance(n, edges) {
        Ok(q) => Some(q),
        Err(bad) => {
            let e = &edges[bad];
            let (name, items) = describe(e);
            r.push(
                Diagnostic::error(
                    codes::TDF001,
                    format!(
                        "token rates do not balance on {name}: \
                         {} produced per source firing vs {} consumed per sink firing \
                         conflicts with the rates established by the rest of the graph",
                        e.produce, e.consume
                    ),
                )
                .with_items(items),
            );
            None
        }
    }
}

/// Balance-equation solver (same algorithm as
/// `ams_sdf::SdfGraph::repetition_vector`): returns the minimal
/// repetition vector, or the index of the first conflicting edge.
fn solve_balance(n: usize, edges: &[Edge]) -> Result<Vec<u64>, usize> {
    let mut q: Vec<Option<Rational>> = vec![None; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        adj[e.src].push(i);
        adj[e.dst].push(i);
    }
    let comp = components(n, edges);
    for start in 0..n {
        if q[start].is_some() {
            continue;
        }
        q[start] = Some(Rational::ONE);
        let mut stack = vec![start];
        while let Some(a) = stack.pop() {
            let qa = q[a].expect("actor on stack has an assigned rate");
            for &ei in &adj[a] {
                let e = &edges[ei];
                let (other, q_other) = if e.src == a {
                    (
                        e.dst,
                        qa * Rational::new(e.produce, e.consume).expect("rates are nonzero"),
                    )
                } else {
                    (
                        e.src,
                        qa * Rational::new(e.consume, e.produce).expect("rates are nonzero"),
                    )
                };
                match q[other] {
                    None => {
                        q[other] = Some(q_other);
                        stack.push(other);
                    }
                    Some(existing) if existing != q_other => return Err(ei),
                    Some(_) => {}
                }
            }
        }
        // Normalize this component to minimal integers.
        let members: Vec<usize> = (0..n).filter(|&i| comp[i] == comp[start]).collect();
        let rats: Vec<Rational> = members
            .iter()
            .map(|&i| q[i].expect("component members are assigned"))
            .collect();
        let denom = common_denominator(&rats);
        let scaled: Vec<u64> = rats
            .iter()
            .map(|r| r.numer() * (denom / r.denom()))
            .collect();
        let g = scaled.iter().fold(0, |acc, &v| gcd(acc, v)).max(1);
        for (&i, &v) in members.iter().zip(scaled.iter()) {
            q[i] = Some(Rational::from_int(v / g));
        }
    }
    Ok(q.into_iter()
        .map(|r| r.expect("all actors assigned").numer())
        .collect())
}

/// Undirected connected components over the edge list; returns a dense
/// component index per module.
fn components(n: usize, edges: &[Edge]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in edges {
        let (a, b) = (find(&mut parent, e.src), find(&mut parent, e.dst));
        if a != b {
            parent[a] = b;
        }
    }
    let mut dense = vec![usize::MAX; n];
    let mut next = 0;
    let mut out = vec![0; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let root = find(&mut parent, i);
        if dense[root] == usize::MAX {
            dense[root] = next;
            next += 1;
        }
        *slot = dense[root];
    }
    out
}

/// Finds strongly connected components of the zero-initial-token edge
/// subgraph; any non-trivial SCC (or zero-delay self-loop) deadlocks
/// the static schedule — [`codes::TDF002`].
fn check_zero_delay_cycles(n: usize, edges: &[Edge], names: &[String], r: &mut LintReport) {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for e in edges {
        if e.tokens == 0 {
            if e.src == e.dst {
                self_loop[e.src] = true;
            } else {
                adj[e.src].push(e.dst);
            }
        }
    }
    for scc in tarjan_sccs(n, &adj) {
        let cyclic = scc.len() > 1 || self_loop[scc[0]];
        if cyclic {
            let members: Vec<String> = scc.iter().map(|&i| names[i].clone()).collect();
            r.push(
                Diagnostic::error(
                    codes::TDF002,
                    format!(
                        "delay-free cycle through {}: no initial samples break the \
                         dependency, so no module in the cycle can fire first",
                        members
                            .iter()
                            .map(|s| format!("'{s}'"))
                            .collect::<Vec<_>>()
                            .join(" \u{2192} ")
                    ),
                )
                .with_items(members),
            );
        }
    }
}

/// Iterative Tarjan SCC; returns each component as a list of node
/// indices (reverse topological order).
fn tarjan_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc root is on the stack");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_mod_model(produce: u64, consume: u64) -> TdfModel {
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let b = m.add_module("b");
        let s = m.add_signal("s");
        m.write(a, s, produce);
        m.read(b, s, consume, 0);
        m.set_timestep_fs(a, 1_000);
        m
    }

    #[test]
    fn clean_chain() {
        let m = two_mod_model(1, 1);
        let r = lint_tdf(&m);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn multirate_chain_clean() {
        // 2→3: q = [3, 2]; period = 3·ts must divide evenly.
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let b = m.add_module("b");
        let s = m.add_signal("s");
        m.write(a, s, 2);
        m.read(b, s, 3, 0);
        m.set_timestep_fs(a, 1_000);
        let r = lint_tdf(&m);
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(m.period_fs(), Some(3_000));
    }

    #[test]
    fn inconsistent_rates_flag_tdf001() {
        // Cycle with a rate gain: a→b at 1:1, b→a at 2:1.
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let b = m.add_module("b");
        let s1 = m.add_signal("s1");
        let s2 = m.add_signal("s2");
        m.write(a, s1, 1);
        m.read(b, s1, 1, 0);
        m.write(b, s2, 2);
        m.read(a, s2, 1, 1);
        m.set_timestep_fs(a, 1_000);
        let r = lint_tdf(&m);
        assert!(r.has_code(codes::TDF001), "{}", r.render());
    }

    #[test]
    fn zero_delay_cycle_flags_tdf002() {
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let b = m.add_module("b");
        let s1 = m.add_signal("s1");
        let s2 = m.add_signal("s2");
        m.write(a, s1, 1);
        m.read(b, s1, 1, 0);
        m.write(b, s2, 1);
        m.read(a, s2, 1, 0);
        m.set_timestep_fs(a, 1_000);
        let r = lint_tdf(&m);
        assert!(r.has_code(codes::TDF002), "{}", r.render());
        // One initial sample on the feedback edge fixes it.
        let mut m2 = TdfModel::new("t");
        let a = m2.add_module("a");
        let b = m2.add_module("b");
        let s1 = m2.add_signal("s1");
        let s2 = m2.add_signal("s2");
        m2.write(a, s1, 1);
        m2.read(b, s1, 1, 0);
        m2.write(b, s2, 1);
        m2.read(a, s2, 1, 1);
        m2.set_timestep_fs(a, 1_000);
        assert!(!lint_tdf(&m2).has_code(codes::TDF002));
    }

    #[test]
    fn zero_delay_self_loop_flags_tdf002() {
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let s = m.add_signal("s");
        m.write(a, s, 1);
        m.read(a, s, 1, 0);
        m.set_timestep_fs(a, 1_000);
        assert!(lint_tdf(&m).has_code(codes::TDF002));
    }

    #[test]
    fn no_writer_flags_tdf003() {
        let mut m = TdfModel::new("t");
        let b = m.add_module("b");
        let s = m.add_signal("s");
        m.read(b, s, 1, 0);
        m.set_timestep_fs(b, 1_000);
        let r = lint_tdf(&m);
        assert!(r.has_code(codes::TDF003));
        // Probing an unwritten signal is the same error.
        let mut m2 = TdfModel::new("t");
        let a = m2.add_module("a");
        m2.set_timestep_fs(a, 1_000);
        let s2 = m2.add_signal("ghost");
        m2.mark_probed(s2);
        assert!(lint_tdf(&m2).has_code(codes::TDF003));
    }

    #[test]
    fn multiple_writers_flag_tdf004() {
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let b = m.add_module("b");
        let s = m.add_signal("s");
        m.write(a, s, 1);
        m.write(b, s, 1);
        m.set_timestep_fs(a, 1_000);
        let r = lint_tdf(&m);
        assert!(r.has_code(codes::TDF004));
        assert!(r.diagnostics[0].items.contains(&"s".to_string()));
    }

    #[test]
    fn no_timestep_flags_tdf005() {
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let s = m.add_signal("s");
        m.write(a, s, 1);
        m.mark_probed(s);
        assert!(lint_tdf(&m).has_code(codes::TDF005));
    }

    #[test]
    fn conflicting_timesteps_flag_tdf006() {
        let mut m = two_mod_model(1, 1);
        m.set_timestep_fs(1, 2_000); // conflicts with a's 1000 fs
        assert!(lint_tdf(&m).has_code(codes::TDF006));
    }

    #[test]
    fn dangling_signal_flags_tdf007() {
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let s = m.add_signal("s");
        m.write(a, s, 1);
        m.set_timestep_fs(a, 1_000);
        let r = lint_tdf(&m);
        assert!(r.has_code(codes::TDF007));
        assert_eq!(r.error_count(), 0);
    }

    #[test]
    fn isolated_component_flags_tdf008() {
        let mut m = two_mod_model(1, 1);
        let c = m.add_module("lonely");
        let s2 = m.add_signal("s2");
        m.write(c, s2, 1);
        m.mark_probed(s2);
        let r = lint_tdf(&m);
        assert!(r.has_code(codes::TDF008), "{}", r.render());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.items.contains(&"lonely".to_string())));
    }

    #[test]
    fn zero_rate_flags_tdf009() {
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let s = m.add_signal("s");
        m.write(a, s, 0);
        m.mark_probed(s);
        m.set_timestep_fs(a, 1_000);
        assert!(lint_tdf(&m).has_code(codes::TDF009));
    }

    #[test]
    fn inexact_period_flags_tdf012() {
        // q = [3, 2] with ts(b) = 5 fs → period 10 fs, 10 % 3 ≠ 0.
        let mut m = TdfModel::new("t");
        let a = m.add_module("a");
        let b = m.add_module("b");
        let s = m.add_signal("s");
        m.write(a, s, 2);
        m.read(b, s, 3, 0);
        m.set_timestep_fs(b, 5);
        let r = lint_tdf(&m);
        assert!(r.has_code(codes::TDF012), "{}", r.render());
    }

    #[test]
    fn zero_timestep_flags_tdf013() {
        let mut m = two_mod_model(1, 1);
        m.set_timestep_fs(0, 0);
        assert!(lint_tdf(&m).has_code(codes::TDF013));
    }

    #[test]
    fn lint_sdf_matches_graph_analysis() {
        let mut g = SdfGraph::new();
        let a = g.add_actor("a");
        let b = g.add_actor("b");
        g.connect(a, 1, b, 1, 0).unwrap();
        g.connect(b, 2, a, 1, 1).unwrap();
        let r = lint_sdf(&g);
        assert!(r.has_code(codes::TDF001));
        // And a clean graph stays clean.
        let mut g2 = SdfGraph::new();
        let a = g2.add_actor("a");
        let b = g2.add_actor("b");
        g2.connect(a, 2, b, 3, 0).unwrap();
        assert!(lint_sdf(&g2).is_clean());
    }

    #[test]
    fn sccs_found_iteratively() {
        // 0→1→2→0 plus 3→4.
        let adj = vec![vec![1], vec![2], vec![0], vec![4], vec![]];
        let sccs = tarjan_sccs(5, &adj);
        let big = sccs.iter().find(|s| s.len() == 3).expect("cycle found");
        let mut sorted = big.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
