//! Diagnostic records, the stable code registry, report rendering
//! (human and JSON) and the enforcement policy.
//!
//! Every analysis in this crate emits [`Diagnostic`]s with a *stable
//! code* (`TDF001`, `MNA003`, …). The same codes are returned by the
//! runtime error types (`SdfError::code`, `NetError::code`,
//! `CoreError::code`), so a problem caught late maps to the same
//! identifier the linter would have reported up front.

use std::collections::BTreeMap;
use std::fmt;

/// How bad a diagnostic is on its own merits (before policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but simulatable (e.g. a dangling signal).
    Warning,
    /// The model cannot elaborate or cannot be solved.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What a [`LintPolicy`] decides to do with a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintLevel {
    /// Suppress entirely.
    Allow,
    /// Report but continue.
    #[default]
    Warn,
    /// Report and refuse to elaborate.
    Deny,
}

/// The stable diagnostic codes. Codes are never renumbered; retired
/// checks leave holes.
pub mod codes {
    /// Inconsistent token rates: the SDF balance equations have no
    /// solution.
    pub const TDF001: &str = "TDF001";
    /// Delay-free cycle: a dependency cycle with no initial samples
    /// deadlocks the static schedule.
    pub const TDF002: &str = "TDF002";
    /// A signal is read (or probed) but no module writes it.
    pub const TDF003: &str = "TDF003";
    /// A signal has more than one writer.
    pub const TDF004: &str = "TDF004";
    /// No module in the cluster declares a timestep.
    pub const TDF005: &str = "TDF005";
    /// Two timestep declarations imply different cluster periods.
    pub const TDF006: &str = "TDF006";
    /// Dangling signal: written but never read and never probed.
    pub const TDF007: &str = "TDF007";
    /// Module (or connected component) unreachable from any
    /// timestep-declaring module; it silently inherits the cluster rate.
    pub const TDF008: &str = "TDF008";
    /// A port declares a zero token rate.
    pub const TDF009: &str = "TDF009";
    /// A stale or out-of-range handle (runtime code).
    pub const TDF010: &str = "TDF010";
    /// A module violated its declared rate at runtime (runtime code).
    pub const TDF011: &str = "TDF011";
    /// The cluster period is not an integer multiple of a module's
    /// firing count, so its timestep would be inexact.
    pub const TDF012: &str = "TDF012";
    /// A module declared a zero timestep.
    pub const TDF013: &str = "TDF013";

    /// Floating node: no DC path to ground through any element.
    pub const MNA001: &str = "MNA001";
    /// Node reaches ground only through capacitors (no resistive DC
    /// path; the operating point rests on gmin).
    pub const MNA002: &str = "MNA002";
    /// Loop of voltage-defined branches (voltage sources, inductors,
    /// VCVS, CCVS).
    pub const MNA003: &str = "MNA003";
    /// Current-source cutset: a subcircuit connected to the rest only
    /// through current sources.
    pub const MNA004: &str = "MNA004";
    /// Structurally singular MNA pattern: the stamp pattern's structural
    /// rank is deficient (maximum bipartite matching < unknowns).
    pub const MNA005: &str = "MNA005";
    /// Nonlinear solve failed to converge (runtime code).
    pub const MNA006: &str = "MNA006";
    /// Unknown node handle (runtime code).
    pub const MNA007: &str = "MNA007";
    /// Unknown element handle (runtime code).
    pub const MNA008: &str = "MNA008";
    /// Element value outside its physical domain (runtime code).
    pub const MNA009: &str = "MNA009";
    /// Underlying numerical failure (runtime code).
    pub const MNA010: &str = "MNA010";

    /// Converter-port timing: the cluster period and a DE clock period
    /// are incommensurate, so TDF samples drift against clock edges.
    pub const CNV001: &str = "CNV001";

    /// Element value range crosses its physical domain for some corner
    /// of the parameter space (space-level, see `ams_lint::space`).
    pub const SPC001: &str = "SPC001";
    /// MNA matrix numerically singular at some corner of the parameter
    /// space (space-level).
    pub const SPC002: &str = "SPC002";
    /// Requested timestep exceeds the interval-Gershgorin safe bound at
    /// the worst corner of the parameter space (space-level).
    pub const SPC003: &str = "SPC003";
    /// A space bind references an unknown element or sweep parameter
    /// (space-level).
    pub const SPC004: &str = "SPC004";
    /// Structural defect of the template netlist, invariant across the
    /// whole parameter space (space-level lift of `MNA001`–`MNA005`).
    pub const SPC005: &str = "SPC005";
    /// Lane bundles may abort mid-bundle: some corners have invalid
    /// element values (space-level).
    pub const SPC006: &str = "SPC006";

    /// The registry: every code with its default severity and a short
    /// title. Used by docs and by the JSON emitter's consumers.
    pub fn registry() -> &'static [(&'static str, super::Severity, &'static str)] {
        use super::Severity::{Error, Warning};
        &[
            (
                TDF001,
                Error,
                "inconsistent token rates (no balance solution)",
            ),
            (
                TDF002,
                Error,
                "delay-free dependency cycle (schedule deadlock)",
            ),
            (TDF003, Error, "signal read or probed but never written"),
            (TDF004, Error, "signal has multiple writers"),
            (TDF005, Error, "no module declares a timestep"),
            (
                TDF006,
                Error,
                "timestep declarations imply different periods",
            ),
            (
                TDF007,
                Warning,
                "dangling signal (written, never read or probed)",
            ),
            (
                TDF008,
                Warning,
                "module unreachable from any timestep-declaring module",
            ),
            (TDF009, Error, "port declares a zero token rate"),
            (TDF010, Error, "stale or out-of-range handle"),
            (TDF011, Error, "declared rate violated at runtime"),
            (
                TDF012,
                Error,
                "cluster period not divisible by firing count",
            ),
            (TDF013, Error, "zero timestep declared"),
            (MNA001, Error, "floating node (no DC path to ground)"),
            (
                MNA002,
                Warning,
                "node reaches ground only through capacitors",
            ),
            (MNA003, Error, "loop of voltage-defined branches"),
            (MNA004, Error, "current-source cutset"),
            (MNA005, Error, "structurally singular MNA pattern"),
            (MNA006, Error, "nonlinear solve failed to converge"),
            (MNA007, Error, "unknown node handle"),
            (MNA008, Error, "unknown element handle"),
            (MNA009, Error, "element value outside its physical domain"),
            (MNA010, Error, "numerical failure"),
            (
                CNV001,
                Warning,
                "cluster period incommensurate with a DE clock",
            ),
            (
                SPC001,
                Error,
                "element value range crosses its physical domain for some corner",
            ),
            (
                SPC002,
                Error,
                "MNA matrix numerically singular at some corner",
            ),
            (
                SPC003,
                Warning,
                "requested timestep exceeds the safe bound at the worst corner",
            ),
            (
                SPC004,
                Error,
                "space bind references an unknown element or parameter",
            ),
            (
                SPC005,
                Error,
                "structural defect invariant across the whole space",
            ),
            (
                SPC006,
                Warning,
                "lane bundles may abort: some corners have invalid values",
            ),
        ]
    }
}

/// One finding: a stable code, a severity, a message, and the offending
/// module/port/node/element names.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Severity before policy is applied.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Names of the offending entities (modules, signals, nodes,
    /// elements — whatever the analysis identifies).
    pub items: Vec<String>,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            items: Vec::new(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            items: Vec::new(),
        }
    }

    /// Attaches offending entity names.
    pub fn with_items<I, S>(mut self, items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.items = items.into_iter().map(Into::into).collect();
        self
    }

    /// Serializes this diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.items.iter().map(|i| json_string(i)).collect();
        format!(
            "{{\"code\":{},\"severity\":{},\"message\":{},\"items\":[{}]}}",
            json_string(self.code),
            json_string(&self.severity.to_string()),
            json_string(&self.message),
            items.join(",")
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.severity, self.code, self.message)?;
        if !self.items.is_empty() {
            write!(f, " ({})", self.items.join(", "))?;
        }
        Ok(())
    }
}

/// The findings of one lint run over one subject (a TDF graph, a
/// netlist, or a converter boundary).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    /// What was linted (cluster or circuit name).
    pub context: String,
    /// All findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Creates an empty report for a named subject.
    pub fn new(context: impl Into<String>) -> Self {
        LintReport {
            context: context.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Folds another report's findings into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` if any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The human rendering: one line per finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}: {d}\n", self.context));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            self.context,
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Serializes the whole report as one JSON object.
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"context\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
            json_string(&self.context),
            self.error_count(),
            self.warning_count(),
            diags.join(",")
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maps diagnostics to actions: what severity class is denied, warned
/// or allowed, with optional per-code overrides.
///
/// The default policy denies errors and warns the rest — lint-clean
/// models elaborate exactly as before, structurally broken ones are
/// refused before any solver runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LintPolicy {
    /// Action for error-severity findings.
    pub errors: LintLevel,
    /// Action for warning-severity findings.
    pub warnings: LintLevel,
    overrides: BTreeMap<String, LintLevel>,
}

impl Default for LintPolicy {
    fn default() -> Self {
        LintPolicy {
            errors: LintLevel::Deny,
            warnings: LintLevel::Warn,
            overrides: BTreeMap::new(),
        }
    }
}

impl LintPolicy {
    /// Suppresses everything (lint still runs, nothing is enforced).
    pub fn allow_all() -> Self {
        LintPolicy {
            errors: LintLevel::Allow,
            warnings: LintLevel::Allow,
            overrides: BTreeMap::new(),
        }
    }

    /// Denies warnings too (strict mode).
    pub fn deny_all() -> Self {
        LintPolicy {
            errors: LintLevel::Deny,
            warnings: LintLevel::Deny,
            overrides: BTreeMap::new(),
        }
    }

    /// Overrides the action for one specific code.
    pub fn set_code(&mut self, code: impl Into<String>, level: LintLevel) -> &mut Self {
        self.overrides.insert(code.into(), level);
        self
    }

    /// The action this policy takes for a diagnostic.
    pub fn level_for(&self, d: &Diagnostic) -> LintLevel {
        if let Some(&l) = self.overrides.get(d.code) {
            return l;
        }
        match d.severity {
            Severity::Error => self.errors,
            Severity::Warning => self.warnings,
        }
    }

    /// The findings this policy refuses to elaborate with.
    pub fn denied<'a>(&self, report: &'a LintReport) -> Vec<&'a Diagnostic> {
        report
            .diagnostics
            .iter()
            .filter(|d| self.level_for(d) == LintLevel::Deny)
            .collect()
    }

    /// The findings this policy surfaces without refusing.
    pub fn warned<'a>(&self, report: &'a LintReport) -> Vec<&'a Diagnostic> {
        report
            .diagnostics
            .iter()
            .filter(|d| self.level_for(d) == LintLevel::Warn)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_stable() {
        let reg = codes::registry();
        for (i, (a, _, _)) in reg.iter().enumerate() {
            for (b, _, _) in &reg[i + 1..] {
                assert_ne!(a, b, "duplicate code {a}");
            }
        }
        assert!(reg
            .iter()
            .any(|(c, s, _)| *c == codes::TDF001 && *s == Severity::Error));
        assert!(reg
            .iter()
            .any(|(c, s, _)| *c == codes::CNV001 && *s == Severity::Warning));
    }

    #[test]
    fn report_counts_and_render() {
        let mut r = LintReport::new("demo");
        r.push(Diagnostic::error(codes::TDF001, "rates do not balance").with_items(["a", "b"]));
        r.push(Diagnostic::warning(codes::TDF007, "dangling signal").with_items(["s"]));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert!(r.has_code("TDF001"));
        assert!(!r.has_code("MNA001"));
        let human = r.render();
        assert!(human.contains("error [TDF001]"));
        assert!(human.contains("(a, b)"));
        assert!(human.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_escapes_and_shape() {
        let mut r = LintReport::new("x\"y");
        r.push(Diagnostic::error(codes::MNA001, "node \"n1\"\nfloats").with_items(["n1"]));
        let j = r.to_json();
        assert!(j.contains("\"context\":\"x\\\"y\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("\"code\":\"MNA001\""));
        assert!(j.contains("\"items\":[\"n1\"]"));
    }

    #[test]
    fn policy_default_denies_errors_warns_warnings() {
        let p = LintPolicy::default();
        let mut r = LintReport::new("p");
        r.push(Diagnostic::error(codes::TDF001, "e"));
        r.push(Diagnostic::warning(codes::TDF007, "w"));
        assert_eq!(p.denied(&r).len(), 1);
        assert_eq!(p.warned(&r).len(), 1);
    }

    #[test]
    fn policy_overrides_per_code() {
        let mut p = LintPolicy::default();
        p.set_code(codes::TDF007, LintLevel::Deny);
        p.set_code(codes::TDF001, LintLevel::Allow);
        let mut r = LintReport::new("p");
        r.push(Diagnostic::error(codes::TDF001, "e"));
        r.push(Diagnostic::warning(codes::TDF007, "w"));
        let denied = p.denied(&r);
        assert_eq!(denied.len(), 1);
        assert_eq!(denied[0].code, codes::TDF007);
        assert!(p.warned(&r).is_empty());
    }

    #[test]
    fn allow_all_and_deny_all() {
        let mut r = LintReport::new("p");
        r.push(Diagnostic::error(codes::TDF001, "e"));
        r.push(Diagnostic::warning(codes::TDF007, "w"));
        assert!(LintPolicy::allow_all().denied(&r).is_empty());
        assert_eq!(LintPolicy::deny_all().denied(&r).len(), 2);
    }
}
