//! Structural analyses of MNA netlists.
//!
//! These checks catch, *before* any matrix is factored, the classical
//! topology mistakes that make a nodal system singular or ill-posed:
//! floating nodes (no DC path to ground), loops of ideal voltage
//! sources, cutsets of current sources, and — as a catch-all — a
//! structural-rank test on the DC stamp pattern via maximum bipartite
//! matching. Runtime solver failures ([`ams_net::NetError`]) map to the
//! same `MNA###` codes, so a pre-elaboration finding and the eventual
//! pivot failure it predicts are correlated.

use crate::diag::{codes, Diagnostic, LintReport};
use ams_net::{Circuit, Element, ElementKind, NodeId};

/// How an element couples its two terminals at DC, for reachability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DcCoupling {
    /// A DC conduction path exists between `p` and `n` (R, L, V-source,
    /// Vcvs, Ccvs, switch, diode, MOS channel).
    Conductive,
    /// Couples only through `dv/dt` — no DC path (capacitor).
    Capacitive,
    /// Injects current but provides no path (current sources).
    CurrentOnly,
}

fn coupling(kind: &ElementKind) -> DcCoupling {
    match kind {
        ElementKind::Capacitor { .. } => DcCoupling::Capacitive,
        ElementKind::CurrentSource { .. } | ElementKind::Vccs { .. } | ElementKind::Cccs { .. } => {
            DcCoupling::CurrentOnly
        }
        // Resistor, Inductor, VoltageSource, Vcvs, Ccvs, Diode, Nmos
        // (drain–source channel), Switch (r_off is finite) — and any
        // future kind, conservatively, to avoid false positives.
        _ => DcCoupling::Conductive,
    }
}

/// `true` for elements that fix the branch voltage independently of the
/// branch current (ideal voltage-defined branches) — the ones that form
/// forbidden loops.
fn is_voltage_defined(kind: &ElementKind) -> bool {
    matches!(
        kind,
        ElementKind::VoltageSource { .. } | ElementKind::Vcvs { .. } | ElementKind::Ccvs { .. }
    )
}

struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n).collect())
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }
    /// Returns `false` if `a` and `b` were already connected.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.0[ra] = rb;
        true
    }
}

/// Lints a netlist: ground reachability (MNA001/002/004), voltage-source
/// loops (MNA003) and structural rank of the DC stamp pattern (MNA005).
///
/// `context` names the report (typically the solver or circuit name).
pub fn lint_circuit(context: impl Into<String>, ckt: &Circuit) -> LintReport {
    let mut r = LintReport::new(context);
    let n = ckt.node_count();
    if n == 0 {
        return r;
    }
    let ground = Circuit::GROUND.index();

    // Reachability from ground, once over conductive elements only and
    // once with capacitors included. A node conductively connected is
    // fine; one reachable only through capacitors relies on the
    // solver's gmin and gets a warning; one not reachable at all has no
    // defined DC voltage.
    let mut cond = UnionFind::new(n);
    let mut cond_cap = UnionFind::new(n);
    // Nodes touched by a current-injecting element, to distinguish a
    // current-source cutset (MNA004) from a plainly floating node.
    let mut touched_by_current = vec![false; n];
    for e in ckt.elements() {
        let (p, nn) = (e.p.index(), e.n.index());
        match coupling(&e.kind) {
            DcCoupling::Conductive => {
                cond.union(p, nn);
                cond_cap.union(p, nn);
            }
            DcCoupling::Capacitive => {
                cond_cap.union(p, nn);
            }
            DcCoupling::CurrentOnly => {
                touched_by_current[p] = true;
                touched_by_current[nn] = true;
            }
        }
    }

    let g_cond = cond.find(ground);
    let g_cap = cond_cap.find(ground);
    let mut floating: Vec<NodeId> = Vec::new();
    let mut cap_only: Vec<NodeId> = Vec::new();
    let mut cutset: Vec<NodeId> = Vec::new();
    for node in ckt.nodes() {
        let i = node.index();
        if cond.find(i) == g_cond {
            continue;
        }
        if cond_cap.find(i) == g_cap {
            cap_only.push(node);
        } else if touched_by_current[i] {
            cutset.push(node);
        } else {
            floating.push(node);
        }
    }
    if !floating.is_empty() {
        let names: Vec<&str> = floating.iter().map(|&nd| ckt.node_name(nd)).collect();
        r.push(
            Diagnostic::error(
                codes::MNA001,
                format!(
                    "node(s) {} have no DC path to ground; their voltage is undefined",
                    quote_list(&names)
                ),
            )
            .with_items(names),
        );
    }
    if !cutset.is_empty() {
        let names: Vec<&str> = cutset.iter().map(|&nd| ckt.node_name(nd)).collect();
        r.push(
            Diagnostic::error(
                codes::MNA004,
                format!(
                    "node(s) {} are fed only by current sources (a current-source \
                     cutset); KCL fixes the current but no element fixes the voltage",
                    quote_list(&names)
                ),
            )
            .with_items(names),
        );
    }
    if !cap_only.is_empty() {
        let names: Vec<&str> = cap_only.iter().map(|&nd| ckt.node_name(nd)).collect();
        r.push(
            Diagnostic::warning(
                codes::MNA002,
                format!(
                    "node(s) {} reach ground only through capacitors; the DC operating \
                     point is defined solely by the solver's gmin leakage",
                    quote_list(&names)
                ),
            )
            .with_items(names),
        );
    }

    // MNA003: a loop of ideal voltage-defined branches over-determines
    // KVL. Union-find over voltage-defined branches only: adding a
    // branch whose terminals are already connected closes a loop.
    let mut vloop = UnionFind::new(n);
    let mut looped: Vec<&Element> = Vec::new();
    for e in ckt.elements() {
        if is_voltage_defined(&e.kind) && !vloop.union(e.p.index(), e.n.index()) {
            looped.push(e);
        }
    }
    if !looped.is_empty() {
        let names: Vec<&str> = looped.iter().map(|e| e.name.as_str()).collect();
        r.push(
            Diagnostic::error(
                codes::MNA003,
                format!(
                    "voltage source(s) {} close a loop of ideal voltage-defined \
                     branches; KVL around the loop is over-determined",
                    quote_list(&names)
                ),
            )
            .with_items(names),
        );
    }

    // MNA005: structural rank of the DC stamp pattern. A maximum
    // bipartite matching of rows to columns smaller than the number of
    // unknowns means the matrix is singular for *every* choice of
    // element values — the numeric solver is guaranteed to hit a zero
    // pivot.
    let pattern = ckt.dc_stamp_pattern();
    let nu = pattern.n_unknowns();
    if nu > 0 {
        let mut cols: Vec<Vec<usize>> = vec![Vec::new(); nu];
        for &(i, j) in pattern.coords() {
            cols[i].push(j);
        }
        for c in &mut cols {
            c.sort_unstable();
            c.dedup();
        }
        let (rank, unmatched) = structural_rank(&cols);
        if rank < nu {
            let names: Vec<String> = unmatched
                .iter()
                .map(|&i| pattern.unknown_name(i).to_string())
                .collect();
            r.push(
                Diagnostic::error(
                    codes::MNA005,
                    format!(
                        "the MNA system is structurally singular: structural rank \
                         {rank} of {nu} unknowns; no values of the element parameters \
                         can make row(s) {} independent",
                        quote_list(&names)
                    ),
                )
                .with_items(names),
            );
        }
    }
    r
}

/// Maximum bipartite matching (Kuhn's algorithm) of rows to columns on
/// the sparsity pattern. Returns the matching size and the unmatched
/// row indices.
fn structural_rank(rows: &[Vec<usize>]) -> (usize, Vec<usize>) {
    let n = rows.len();
    // col_match[j] = row currently matched to column j.
    let mut col_match: Vec<Option<usize>> = vec![None; n];
    let mut rank = 0;
    for start in 0..n {
        let mut visited = vec![false; n];
        if try_augment(rows, start, &mut visited, &mut col_match) {
            rank += 1;
        }
    }
    // Augmenting later rows never unmatches earlier ones, but the row a
    // column maps to can change; read the final matching off col_match.
    let mut matched = vec![false; n];
    for &row in col_match.iter().flatten() {
        matched[row] = true;
    }
    let unmatched = (0..n).filter(|&i| !matched[i]).collect();
    (rank, unmatched)
}

fn try_augment(
    rows: &[Vec<usize>],
    row: usize,
    visited: &mut [bool],
    col_match: &mut [Option<usize>],
) -> bool {
    for &j in &rows[row] {
        if visited[j] {
            continue;
        }
        visited[j] = true;
        match col_match[j] {
            None => {
                col_match[j] = Some(row);
                return true;
            }
            Some(other) => {
                if try_augment(rows, other, visited, col_match) {
                    col_match[j] = Some(row);
                    return true;
                }
            }
        }
    }
    false
}

fn quote_list<S: AsRef<str>>(names: &[S]) -> String {
    names
        .iter()
        .map(|s| format!("'{}'", s.as_ref()))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        ckt
    }

    #[test]
    fn clean_divider() {
        let r = lint_circuit("t", &divider());
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn floating_node_flags_mna001() {
        let mut ckt = divider();
        let c = ckt.node("c");
        let d = ckt.node("d");
        ckt.resistor("R3", c, d, 1e3).unwrap();
        let r = lint_circuit("t", &ckt);
        assert!(r.has_code(codes::MNA001), "{}", r.render());
        // Note: a floating resistor island is *numerically* singular
        // but structurally full-rank (the diagonal is a perfect
        // matching), which is exactly why the reachability check exists
        // alongside the structural-rank check.
        assert!(r.error_count() >= 1);
    }

    #[test]
    fn cap_coupled_node_warns_mna002() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let c = ckt.node("c");
        let d = ckt.node("d");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.capacitor("C1", a, c, 1e-9).unwrap();
        ckt.resistor("R3", c, d, 1e3).unwrap();
        ckt.capacitor("C2", d, Circuit::GROUND, 1e-9).unwrap();
        let r = lint_circuit("t", &ckt);
        assert!(r.has_code(codes::MNA002), "{}", r.render());
        assert_eq!(r.error_count(), 0, "{}", r.render());
    }

    #[test]
    fn v_loop_flags_mna003() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.voltage_source("V2", a, Circuit::GROUND, 2.0).unwrap();
        ckt.resistor("RL", a, Circuit::GROUND, 1e3).unwrap();
        let r = lint_circuit("t", &ckt);
        assert!(r.has_code(codes::MNA003), "{}", r.render());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.items.contains(&"V2".to_string())));
    }

    #[test]
    fn current_source_cutset_flags_mna004() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.current_source("I1", a, Circuit::GROUND, 1e-3).unwrap();
        let r = lint_circuit("t", &ckt);
        assert!(r.has_code(codes::MNA004), "{}", r.render());
        // The empty matrix row is also a structural-rank deficiency.
        assert!(r.has_code(codes::MNA005), "{}", r.render());
    }

    #[test]
    fn inductor_is_a_dc_path() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.current_source("I1", a, Circuit::GROUND, 1e-3).unwrap();
        ckt.inductor("L1", a, b, 1e-3).unwrap();
        ckt.resistor("R1", b, Circuit::GROUND, 50.0).unwrap();
        let r = lint_circuit("t", &ckt);
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn structural_rank_on_identity() {
        let rows = vec![vec![0], vec![1], vec![2]];
        assert_eq!(structural_rank(&rows), (3, vec![]));
        let deficient = vec![vec![0, 1], vec![0, 1], vec![0, 1]];
        let (rank, unmatched) = structural_rank(&deficient);
        assert_eq!(rank, 2);
        assert_eq!(unmatched.len(), 1);
    }
}
