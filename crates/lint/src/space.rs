//! Sweep-space abstract interpretation: lint over whole parameter
//! spaces.
//!
//! PR 3's `lint_circuit` proves facts about **one** concrete netlist.
//! A sweep, though, runs the same topology over a *box* of parameter
//! values — grid extents or Monte-Carlo bounds — and a single bad
//! sub-region either burns compute on scenarios that were doomed before
//! any transient ran, or aborts a whole lane bundle at runtime. This
//! module lifts the lint gate from points to boxes: element values are
//! propagated as [`Interval`]s through the MNA companion stamps, and
//! each space-level check returns a [`Verdict`]:
//!
//! * [`Verdict::ProvedSafe`] — the property holds at **every** corner of
//!   the box.
//! * [`Verdict::ProvedViolated`] — a witness sub-box is returned that
//!   provably **contains a concrete failing corner** (for `SPC001` the
//!   whole witness box violates; for `SPC002` its midpoint is a
//!   concrete singular matrix).
//! * [`Verdict::Unknown`] — neither could be proved within the
//!   bisection budget; the unresolved sub-boxes are returned so a
//!   caller can refine further or fall back to runtime checks.
//!
//! The abstract domain is plain closed-interval arithmetic
//! ([`ams_math::Interval`]); refinement is bisection on the widest
//! dimension down to a configurable budget of box evaluations. The
//! nonsingularity proof for `SPC002` is the midpoint-preconditioned
//! enclosure test (Rump-style): with `R = A(mid)⁻¹`, if the row-sum
//! norm `‖I − R·A(box)‖∞ < 1` holds in interval arithmetic then every
//! concrete matrix in the box family is nonsingular.
//!
//! Codes issued here are `SPC001`–`SPC006` in the stable registry
//! ([`crate::codes::registry`]). Consumers: `NetlistSweep` prunes
//! statically-doomed scenarios via [`classify_point`], and `ams-serve`
//! rejects doomed `JobSpec`s at admission, caching the verdict.

use crate::diag::{codes, Diagnostic, LintReport};
use crate::mna::lint_circuit;
use ams_math::{DMat, Interval, Lu};
use ams_net::{Circuit, ElementKind};
use std::collections::VecDeque;
use std::sync::Arc;

/// The solver's minimum leakage conductance, mirrored from
/// `ams-net::dcop::GMIN` so the abstract matrix encloses what the
/// runtime actually factors.
const GMIN: f64 = 1e-12;

/// One named parameter with its range over the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamRange {
    /// Sweep parameter name.
    pub name: String,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl ParamRange {
    /// A named range `[lo, hi]`.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64) -> ParamRange {
        ParamRange {
            name: name.into(),
            lo: lo.min(hi),
            hi: lo.max(hi),
        }
    }
}

/// Which element value a space bind rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceTarget {
    /// Resistance in ohms.
    Resistance,
    /// Capacitance in farads.
    Capacitance,
    /// Inductance in henries.
    Inductance,
}

impl SpaceTarget {
    fn noun(self) -> &'static str {
        match self {
            SpaceTarget::Resistance => "resistance",
            SpaceTarget::Capacitance => "capacitance",
            SpaceTarget::Inductance => "inductance",
        }
    }
}

/// A declarative binding of one sweep parameter to one element value —
/// the space-level mirror of the sweep's `apply` closure. `relative`
/// means the element takes `nominal * (1 + p)`; otherwise it takes `p`
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceBind {
    /// Sweep parameter name (must appear in the spec's ranges).
    pub param: String,
    /// Element name in the template circuit.
    pub element: String,
    /// Which value of the element is rewritten.
    pub target: SpaceTarget,
    /// Relative (`nominal * (1 + p)`) vs absolute (`p`) binding.
    pub relative: bool,
    /// Nominal value for relative binds (ignored for absolute ones).
    pub nominal: f64,
}

/// A topology-plus-box specification for the space pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSpec {
    /// Parameter ranges spanning the box.
    pub ranges: Vec<ParamRange>,
    /// Parameter-to-element bindings.
    pub binds: Vec<SpaceBind>,
    /// Maximum number of box evaluations per check before giving up
    /// with [`Verdict::Unknown`].
    pub budget: usize,
    /// The timestep the sweep intends to run with, for the `SPC003`
    /// interval-Gershgorin bound. `None` skips the check.
    pub requested_h: Option<f64>,
}

impl SpaceSpec {
    /// A spec with the default bisection budget (64 box evaluations).
    pub fn new(ranges: Vec<ParamRange>, binds: Vec<SpaceBind>) -> SpaceSpec {
        SpaceSpec {
            ranges,
            binds,
            budget: 64,
            requested_h: None,
        }
    }

    /// Sets the bisection budget (box evaluations per check, min 1).
    pub fn budget(mut self, budget: usize) -> SpaceSpec {
        self.budget = budget.max(1);
        self
    }

    /// Declares the timestep the sweep will run with (`SPC003`).
    pub fn requested_h(mut self, h: f64) -> SpaceSpec {
        self.requested_h = Some(h);
        self
    }

    /// The full parameter box spanned by the ranges.
    pub fn param_box(&self) -> ParamBox {
        ParamBox {
            names: Arc::new(self.ranges.iter().map(|r| r.name.clone()).collect()),
            intervals: self
                .ranges
                .iter()
                .map(|r| Interval::new(r.lo, r.hi))
                .collect(),
        }
    }

    /// A stable FNV-1a fingerprint over ranges, binds, budget and
    /// requested timestep — the cache key `ams-serve` pairs with the
    /// topology fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut put = |bytes: &[u8]| {
            h ^= bytes.len() as u64;
            h = h.wrapping_mul(0x100000001b3);
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for r in &self.ranges {
            put(r.name.as_bytes());
            put(&r.lo.to_bits().to_le_bytes());
            put(&r.hi.to_bits().to_le_bytes());
        }
        for b in &self.binds {
            put(b.param.as_bytes());
            put(b.element.as_bytes());
            put(&[b.target as u8, b.relative as u8]);
            put(&b.nominal.to_bits().to_le_bytes());
        }
        put(&(self.budget as u64).to_le_bytes());
        put(&self.requested_h.unwrap_or(-1.0).to_bits().to_le_bytes());
        h
    }
}

/// An axis-aligned box in parameter space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBox {
    names: Arc<Vec<String>>,
    intervals: Vec<Interval>,
}

impl ParamBox {
    /// Parameter names, in axis order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Per-axis intervals, in the same order as [`ParamBox::names`].
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The interval of a named parameter, if present.
    pub fn interval(&self, name: &str) -> Option<Interval> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.intervals[i])
    }

    /// The box center, one value per axis.
    pub fn midpoint(&self) -> Vec<f64> {
        self.intervals.iter().map(|i| i.midpoint()).collect()
    }

    /// Whether the concrete point (axis order) lies inside the box.
    pub fn contains(&self, values: &[f64]) -> bool {
        values.len() == self.intervals.len()
            && self
                .intervals
                .iter()
                .zip(values)
                .all(|(i, &v)| i.contains(v))
    }

    /// Splits on the widest axis. Returns `None` for a zero-dimensional
    /// or degenerate (all-point) box.
    pub fn bisect_widest(&self) -> Option<(ParamBox, ParamBox)> {
        let (dim, w) = self
            .intervals
            .iter()
            .enumerate()
            .map(|(i, iv)| (i, iv.width()))
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        if w <= 0.0 || !w.is_finite() {
            return None;
        }
        let (l, r) = self.intervals[dim].bisect();
        let mut left = self.clone();
        let mut right = self.clone();
        left.intervals[dim] = l;
        right.intervals[dim] = r;
        Some((left, right))
    }
}

impl std::fmt::Display for ParamBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (n, iv)) in self.names.iter().zip(&self.intervals).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} ∈ {iv}")?;
        }
        write!(f, "}}")
    }
}

/// The outcome of one space-level check over the whole box.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The property holds at every corner of the box.
    ProvedSafe,
    /// The property fails somewhere: the witness box contains a
    /// concrete failing corner.
    ProvedViolated(ParamBox),
    /// Undecided within the bisection budget; the listed sub-boxes are
    /// the unresolved remainder.
    Unknown(Vec<ParamBox>),
}

impl Verdict {
    /// Short tag for rendering: `proved-safe`, `proved-violated`,
    /// `unknown`.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::ProvedSafe => "proved-safe",
            Verdict::ProvedViolated(_) => "proved-violated",
            Verdict::Unknown(_) => "unknown",
        }
    }
}

/// One check's code paired with its verdict over the space.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceVerdict {
    /// The stable `SPC###` code.
    pub code: &'static str,
    /// The verdict over the whole box.
    pub verdict: Verdict,
}

/// The space pass result: a normal [`LintReport`] (so the existing
/// policy machinery applies unchanged) plus the per-code verdicts and
/// the interval-Gershgorin safe timestep, when one could be bounded.
#[derive(Debug, Clone)]
pub struct SpaceReport {
    /// Diagnostics in the standard report shape — feed to `LintPolicy`.
    pub report: LintReport,
    /// Per-code space verdicts (one entry per check that ran).
    pub verdicts: Vec<SpaceVerdict>,
    /// Provably safe timestep at the worst corner (2/λ̄ from the
    /// interval-Gershgorin bound), when the topology admits one.
    pub safe_h: Option<f64>,
}

impl SpaceReport {
    /// The verdict for a code, if that check ran.
    pub fn verdict(&self, code: &str) -> Option<&Verdict> {
        self.verdicts
            .iter()
            .find(|v| v.code == code)
            .map(|v| &v.verdict)
    }

    /// Human rendering: the lint report followed by one verdict line
    /// per check and the safe-timestep bound.
    pub fn render(&self) -> String {
        let mut out = self.report.render();
        for v in &self.verdicts {
            out.push_str(&format!("space [{}] {}", v.code, v.verdict.tag()));
            match &v.verdict {
                Verdict::ProvedViolated(b) => out.push_str(&format!(" witness {b}\n")),
                Verdict::Unknown(boxes) => {
                    out.push_str(&format!(" ({} sub-boxes unresolved)\n", boxes.len()))
                }
                Verdict::ProvedSafe => out.push('\n'),
            }
        }
        if let Some(h) = self.safe_h {
            out.push_str(&format!("space safe timestep (worst corner): {h:.3e}\n"));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Bind resolution
// ---------------------------------------------------------------------

/// A bind resolved against the template: element index + target, with
/// the value map. Later binds to the same (element, target) override
/// earlier ones, mirroring the order the sweep's `apply` runs them in.
struct ResolvedBind {
    elem: usize,
    target: SpaceTarget,
    param: usize,
    relative: bool,
    nominal: f64,
}

impl ResolvedBind {
    /// The element value over a parameter interval.
    fn value(&self, p: Interval) -> Interval {
        if self.relative {
            (p + 1.0) * self.nominal
        } else {
            p
        }
    }

    /// The element value at a concrete parameter point.
    fn value_at(&self, p: f64) -> f64 {
        if self.relative {
            self.nominal * (1.0 + p)
        } else {
            p
        }
    }
}

/// Resolves binds, emitting `SPC004` for unknown elements/parameters or
/// target-kind mismatches. On any `SPC004` the value-dependent checks
/// are skipped (there is nothing meaningful to evaluate).
fn resolve_binds(
    ckt: &Circuit,
    spec: &SpaceSpec,
    r: &mut LintReport,
    verdicts: &mut Vec<SpaceVerdict>,
    full: &ParamBox,
) -> Option<Vec<ResolvedBind>> {
    let mut bad: Vec<String> = Vec::new();
    let mut resolved: Vec<ResolvedBind> = Vec::new();
    for b in &spec.binds {
        let Some(param) = spec.ranges.iter().position(|rg| rg.name == b.param) else {
            bad.push(format!("parameter '{}'", b.param));
            continue;
        };
        let Some(elem) = ckt.elements().iter().position(|e| e.name == b.element) else {
            bad.push(format!("element '{}'", b.element));
            continue;
        };
        let kind_ok = matches!(
            (&ckt.elements()[elem].kind, b.target),
            (ElementKind::Resistor { .. }, SpaceTarget::Resistance)
                | (ElementKind::Capacitor { .. }, SpaceTarget::Capacitance)
                | (ElementKind::Inductor { .. }, SpaceTarget::Inductance)
        );
        if !kind_ok {
            bad.push(format!(
                "element '{}' has no {}",
                b.element,
                b.target.noun()
            ));
            continue;
        }
        // Later binds override earlier ones on the same value slot.
        resolved.retain(|rb| !(rb.elem == elem && rb.target == b.target));
        resolved.push(ResolvedBind {
            elem,
            target: b.target,
            param,
            relative: b.relative,
            nominal: b.nominal,
        });
    }
    if bad.is_empty() {
        verdicts.push(SpaceVerdict {
            code: codes::SPC004,
            verdict: Verdict::ProvedSafe,
        });
        Some(resolved)
    } else {
        r.push(
            Diagnostic::error(
                codes::SPC004,
                format!(
                    "space bind(s) reference unknown targets: {}",
                    bad.join(", ")
                ),
            )
            .with_items(bad),
        );
        verdicts.push(SpaceVerdict {
            code: codes::SPC004,
            verdict: Verdict::ProvedViolated(full.clone()),
        });
        None
    }
}

// ---------------------------------------------------------------------
// Bisection refinement
// ---------------------------------------------------------------------

/// Trilean result of evaluating one property over one sub-box.
enum BoxEval {
    /// Holds at every corner of the sub-box.
    Safe,
    /// Fails somewhere in the sub-box (the sub-box is a valid witness).
    Violated,
    /// Undecided — bisect further.
    Undecided,
}

/// Breadth-first bisection on the widest axis, up to `budget` box
/// evaluations. Returns the first violated sub-box as witness, safe if
/// every leaf proved safe, unknown (with the unresolved frontier)
/// otherwise.
fn refine(root: ParamBox, budget: usize, eval: impl Fn(&ParamBox) -> BoxEval) -> Verdict {
    let mut queue: VecDeque<ParamBox> = VecDeque::new();
    queue.push_back(root);
    let mut unresolved: Vec<ParamBox> = Vec::new();
    let mut evals = 0usize;
    while let Some(b) = queue.pop_front() {
        if evals >= budget {
            unresolved.push(b);
            unresolved.extend(queue);
            return Verdict::Unknown(unresolved);
        }
        evals += 1;
        match eval(&b) {
            BoxEval::Safe => {}
            BoxEval::Violated => return Verdict::ProvedViolated(b),
            BoxEval::Undecided => match b.bisect_widest() {
                Some((l, r)) => {
                    queue.push_back(l);
                    queue.push_back(r);
                }
                None => unresolved.push(b),
            },
        }
    }
    if unresolved.is_empty() {
        Verdict::ProvedSafe
    } else {
        Verdict::Unknown(unresolved)
    }
}

// ---------------------------------------------------------------------
// Interval MNA assembly
// ---------------------------------------------------------------------

/// Element value intervals over a box: `values[elem]` is `Some(iv)` for
/// bound R/C/L elements, `None` for unbound ones (use the template's
/// concrete value).
fn element_intervals(ckt: &Circuit, binds: &[ResolvedBind], b: &ParamBox) -> Vec<Option<Interval>> {
    let mut v: Vec<Option<Interval>> = vec![None; ckt.elements().len()];
    for rb in binds {
        v[rb.elem] = Some(rb.value(b.intervals[rb.param]));
    }
    v
}

/// The template's concrete R/C/L value for an element.
fn template_value(kind: &ElementKind) -> Option<f64> {
    match kind {
        ElementKind::Resistor { ohms } => Some(*ohms),
        ElementKind::Capacitor { farads, .. } => Some(*farads),
        ElementKind::Inductor { henries, .. } => Some(*henries),
        _ => None,
    }
}

/// The MNA unknown layout for the abstract matrix: non-ground node
/// voltages first, then one branch current per voltage-defined or
/// inductive element. Returns `None` when the circuit contains element
/// kinds outside the linear R/C/L/source family the interval stamps
/// model (controlled sources, diodes, MOS, switches) — the matrix
/// checks then answer [`Verdict::Unknown`] rather than overclaim.
struct MnaLayout {
    /// node index -> matrix row (ground excluded).
    node_row: Vec<Option<usize>>,
    /// element index -> branch row, for branch-current elements.
    branch_row: Vec<Option<usize>>,
    n: usize,
}

fn layout(ckt: &Circuit) -> Option<MnaLayout> {
    let ground = Circuit::GROUND.index();
    let mut node_row = vec![None; ckt.node_count()];
    let mut next = 0usize;
    for node in ckt.nodes() {
        if node.index() != ground {
            node_row[node.index()] = Some(next);
            next += 1;
        }
    }
    let mut branch_row = vec![None; ckt.elements().len()];
    for (i, e) in ckt.elements().iter().enumerate() {
        match e.kind {
            ElementKind::Inductor { .. } | ElementKind::VoltageSource { .. } => {
                branch_row[i] = Some(next);
                next += 1;
            }
            ElementKind::Resistor { .. }
            | ElementKind::Capacitor { .. }
            | ElementKind::CurrentSource { .. } => {}
            // Controlled sources and nonlinear devices are outside the
            // interval stamp family.
            _ => return None,
        }
    }
    Some(MnaLayout {
        node_row,
        branch_row,
        n: next,
    })
}

/// Assembles the interval BE companion matrix `G + C/h` (plus source
/// and inductor branch rows) over a box; `h = None` assembles the DC
/// matrix with the solver's gmin leakage, exactly as `ams-net` does.
fn interval_matrix(
    ckt: &Circuit,
    lay: &MnaLayout,
    values: &[Option<Interval>],
    h: Option<f64>,
) -> Option<Vec<Vec<Interval>>> {
    let n = lay.n;
    let z = Interval::point(0.0);
    let mut a = vec![vec![z; n]; n];
    let add = |a: &mut Vec<Vec<Interval>>, i: Option<usize>, j: Option<usize>, v: Interval| {
        if let (Some(i), Some(j)) = (i, j) {
            a[i][j] = a[i][j] + v;
        }
    };
    for (idx, e) in ckt.elements().iter().enumerate() {
        let p = lay.node_row[e.p.index()];
        let nn = lay.node_row[e.n.index()];
        let iv = |concrete: Option<f64>| -> Option<Interval> {
            values[idx].or_else(|| concrete.map(Interval::point))
        };
        match &e.kind {
            ElementKind::Resistor { ohms } => {
                let g = iv(Some(*ohms))?.recip() + GMIN;
                add(&mut a, p, p, g);
                add(&mut a, nn, nn, g);
                add(&mut a, p, nn, -g);
                add(&mut a, nn, p, -g);
            }
            ElementKind::Capacitor { farads, .. } => {
                let c = iv(Some(*farads))?;
                let g = match h {
                    Some(h) => c * (1.0 / h) + GMIN,
                    None => Interval::point(GMIN),
                };
                add(&mut a, p, p, g);
                add(&mut a, nn, nn, g);
                add(&mut a, p, nn, -g);
                add(&mut a, nn, p, -g);
            }
            ElementKind::Inductor { henries, .. } => {
                let br = lay.branch_row[idx];
                let one = Interval::point(1.0);
                add(&mut a, p, br, one);
                add(&mut a, nn, br, -one);
                add(&mut a, br, p, one);
                add(&mut a, br, nn, -one);
                // BE companion: v = (L/h)(i - i_prev); DC: v = 0 with
                // the branch current free — diagonal stays 0.
                if let Some(h) = h {
                    let l = iv(Some(*henries))?;
                    add(&mut a, br, br, -(l * (1.0 / h)));
                }
            }
            ElementKind::VoltageSource { .. } => {
                let br = lay.branch_row[idx];
                let one = Interval::point(1.0);
                add(&mut a, p, br, one);
                add(&mut a, nn, br, -one);
                add(&mut a, br, p, one);
                add(&mut a, br, nn, -one);
            }
            ElementKind::CurrentSource { .. } => {}
            _ => return None,
        }
    }
    Some(a)
}

/// The concrete matrix at a parameter point: same stamps, point values.
fn concrete_matrix(
    ckt: &Circuit,
    lay: &MnaLayout,
    binds: &[ResolvedBind],
    point: &[f64],
    h: Option<f64>,
) -> Option<DMat<f64>> {
    let mut values: Vec<Option<Interval>> = vec![None; ckt.elements().len()];
    for rb in binds {
        values[rb.elem] = Some(Interval::point(rb.value_at(point[rb.param])));
    }
    let a = interval_matrix(ckt, lay, &values, h)?;
    let n = lay.n;
    Some(DMat::from_fn(n, n, |i, j| a[i][j].midpoint()))
}

/// Midpoint-preconditioned nonsingularity proof: every matrix in the
/// interval family is nonsingular if `‖I − A(mid)⁻¹·A(box)‖∞ < 1`.
fn proves_nonsingular(a: &[Vec<Interval>], mid_lu: &Lu<f64>) -> bool {
    let n = a.len();
    // R = mid⁻¹ by solving against identity columns.
    let r = match mid_lu.solve_mat(&DMat::identity(n)) {
        Ok(r) => r,
        Err(_) => return false,
    };
    // Row-sum norm of I − R·A(box), evaluated in interval arithmetic.
    let mut worst: f64 = 0.0;
    for i in 0..n {
        let mut row_sum = 0.0f64;
        for j in 0..n {
            let mut cij = Interval::point(0.0);
            for (k, ak) in a.iter().enumerate() {
                let rik = *r.get(i, k).expect("inverse is n×n");
                if rik != 0.0 {
                    cij = cij + ak[j] * rik;
                }
            }
            let eij = if i == j { cij + (-1.0) } else { cij };
            row_sum += eij.abs().hi;
            if !row_sum.is_finite() {
                return false;
            }
        }
        worst = worst.max(row_sum);
    }
    worst < 1.0
}

// ---------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------

/// Runs the space pass over a template circuit and a parameter box.
///
/// `context` names the report, exactly like [`lint_circuit`]. The
/// returned [`SpaceReport`] carries standard diagnostics (enforce with
/// the usual `LintPolicy`) plus per-code [`Verdict`]s and the safe
/// timestep bound.
pub fn lint_space(context: impl Into<String>, ckt: &Circuit, spec: &SpaceSpec) -> SpaceReport {
    let mut r = LintReport::new(context);
    let mut verdicts: Vec<SpaceVerdict> = Vec::new();
    let full = spec.param_box();

    // SPC005: structural defects are value-independent — binds rewrite
    // values, never topology — so the concrete verdict on the template
    // lifts to every corner of the space.
    let structural = lint_circuit("space-template", ckt);
    let structural_errors: Vec<String> = structural
        .diagnostics
        .iter()
        .filter(|d| d.severity == crate::diag::Severity::Error)
        .map(|d| d.code.to_string())
        .collect();
    if structural_errors.is_empty() {
        verdicts.push(SpaceVerdict {
            code: codes::SPC005,
            verdict: Verdict::ProvedSafe,
        });
    } else {
        r.push(
            Diagnostic::error(
                codes::SPC005,
                format!(
                    "template netlist is structurally defective at every corner \
                     of the space (value binds cannot repair topology): {}",
                    structural_errors.join(", ")
                ),
            )
            .with_items(structural_errors.clone()),
        );
        verdicts.push(SpaceVerdict {
            code: codes::SPC005,
            verdict: Verdict::ProvedViolated(full.clone()),
        });
    }

    // SPC004 + bind resolution; value-dependent checks need it.
    let Some(binds) = resolve_binds(ckt, spec, &mut r, &mut verdicts, &full) else {
        return SpaceReport {
            report: r,
            verdicts,
            safe_h: None,
        };
    };

    // SPC001: element value ranges vs their physical domain (> 0).
    let mut domain_bad: Vec<String> = Vec::new();
    let mut spc001 = Verdict::ProvedSafe;
    for rb in &binds {
        let name = &ckt.elements()[rb.elem].name;
        let v = refine(full.clone(), spec.budget, |b| {
            let iv = rb.value(b.intervals[rb.param]);
            if iv.hi <= 0.0 {
                BoxEval::Violated
            } else if iv.lo > 0.0 {
                BoxEval::Safe
            } else {
                BoxEval::Undecided
            }
        });
        match v {
            Verdict::ProvedSafe => {}
            Verdict::ProvedViolated(w) => {
                domain_bad.push(name.clone());
                if !matches!(spc001, Verdict::ProvedViolated(_)) {
                    spc001 = Verdict::ProvedViolated(w);
                }
            }
            Verdict::Unknown(boxes) => {
                if matches!(spc001, Verdict::ProvedSafe) {
                    spc001 = Verdict::Unknown(boxes);
                }
            }
        }
    }
    if let Verdict::ProvedViolated(w) = &spc001 {
        r.push(
            Diagnostic::error(
                codes::SPC001,
                format!(
                    "element value(s) of {} leave their physical domain (≤ 0) for \
                     some corner; witness box {w}",
                    domain_bad
                        .iter()
                        .map(|n| format!("'{n}'"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .with_items(domain_bad.clone()),
        );
        r.push(Diagnostic::warning(
            codes::SPC006,
            "lane bundles over this space may abort mid-bundle: some corners \
             have invalid element values (prune or narrow the ranges)"
                .to_string(),
        ));
        verdicts.push(SpaceVerdict {
            code: codes::SPC006,
            verdict: Verdict::ProvedViolated(w.clone()),
        });
    } else {
        verdicts.push(SpaceVerdict {
            code: codes::SPC006,
            verdict: Verdict::ProvedSafe,
        });
    }
    verdicts.push(SpaceVerdict {
        code: codes::SPC001,
        verdict: spc001.clone(),
    });

    // SPC002: numerical nonsingularity across the box. Only meaningful
    // when the structure is sound and values stay in-domain (a zero
    // crossing already makes some corner singular — but that corner is
    // SPC001's finding, not a new one).
    let lay = layout(ckt);
    let spc002 = match (&lay, &spc001, structural_errors.is_empty()) {
        (Some(lay), Verdict::ProvedSafe, true) => refine(full.clone(), spec.budget, |b| {
            let values = element_intervals(ckt, &binds, b);
            let Some(a) = interval_matrix(ckt, lay, &values, spec.requested_h) else {
                return BoxEval::Undecided;
            };
            let Some(mid) = concrete_matrix(ckt, lay, &binds, &b.midpoint(), spec.requested_h)
            else {
                return BoxEval::Undecided;
            };
            match Lu::factor(&mid) {
                // Midpoint is a concrete singular corner: witness found.
                Err(_) => BoxEval::Violated,
                Ok(lu) => {
                    if proves_nonsingular(&a, &lu) {
                        BoxEval::Safe
                    } else {
                        BoxEval::Undecided
                    }
                }
            }
        }),
        // Out-of-domain values or unmodelled element kinds: undecided
        // over the whole box rather than a false proof either way.
        (None, _, _) => Verdict::Unknown(vec![full.clone()]),
        _ => Verdict::Unknown(vec![full.clone()]),
    };
    if let Verdict::ProvedViolated(w) = &spc002 {
        r.push(Diagnostic::error(
            codes::SPC002,
            format!("the MNA matrix is numerically singular at some corner; witness box {w}"),
        ));
    }
    verdicts.push(SpaceVerdict {
        code: codes::SPC002,
        verdict: spc002,
    });

    // SPC003: interval-Gershgorin timestep bound at the worst corner.
    // For the RC part of the network, every eigenvalue of C⁻¹G lies in
    // a Gershgorin disc of the row-scaled matrix; the worst-corner
    // magnitude is bounded by max_i (Σ_j |G_ij|.hi) / c_ii.lo over
    // capacitive nodes. 2/λ̄ is the trapezoidal stability / accuracy
    // guard band.
    let safe_h = lay
        .as_ref()
        .and_then(|lay| gershgorin_safe_h(ckt, lay, &binds, &full));
    if let (Some(h_req), Some(h_safe)) = (spec.requested_h, safe_h) {
        if h_req > h_safe {
            r.push(Diagnostic::warning(
                codes::SPC003,
                format!(
                    "requested timestep {h_req:.3e} exceeds the interval-Gershgorin \
                     safe bound {h_safe:.3e} at the worst corner"
                ),
            ));
            verdicts.push(SpaceVerdict {
                code: codes::SPC003,
                verdict: Verdict::ProvedViolated(full.clone()),
            });
        } else {
            verdicts.push(SpaceVerdict {
                code: codes::SPC003,
                verdict: Verdict::ProvedSafe,
            });
        }
    }

    SpaceReport {
        report: r,
        verdicts,
        safe_h,
    }
}

/// `2 / λ̄` where `λ̄` bounds the fastest RC eigenvalue over the whole
/// box. `None` when no node carries capacitance (nothing to bound) or
/// any needed interval is unusable.
fn gershgorin_safe_h(
    ckt: &Circuit,
    lay: &MnaLayout,
    binds: &[ResolvedBind],
    b: &ParamBox,
) -> Option<f64> {
    let values = element_intervals(ckt, binds, b);
    let n_nodes = lay.node_row.len();
    // Per-node capacitance (lo) and conductance row magnitude (hi).
    let mut cap_lo = vec![0.0f64; n_nodes];
    let mut g_hi = vec![0.0f64; n_nodes];
    for (idx, e) in ckt.elements().iter().enumerate() {
        let iv = values[idx].or_else(|| template_value(&e.kind).map(Interval::point));
        match &e.kind {
            ElementKind::Capacitor { .. } => {
                let c = iv?;
                if c.lo <= 0.0 {
                    return None;
                }
                cap_lo[e.p.index()] += c.lo;
                cap_lo[e.n.index()] += c.lo;
            }
            ElementKind::Resistor { .. } => {
                let g = iv?.recip();
                if !g.hi.is_finite() || g.lo <= 0.0 {
                    return None;
                }
                // Diagonal + off-diagonal magnitude: 2·g.hi per node.
                g_hi[e.p.index()] += 2.0 * g.hi;
                g_hi[e.n.index()] += 2.0 * g.hi;
            }
            _ => {}
        }
    }
    let ground = Circuit::GROUND.index();
    let mut lambda: f64 = 0.0;
    for i in 0..n_nodes {
        if i == ground || g_hi[i] == 0.0 {
            continue;
        }
        if cap_lo[i] > 0.0 {
            lambda = lambda.max(g_hi[i] / cap_lo[i]);
        }
    }
    (lambda > 0.0).then(|| 2.0 / lambda)
}

// ---------------------------------------------------------------------
// Concrete-point classification (sweep pruning)
// ---------------------------------------------------------------------

/// Classifies one concrete scenario point: `Some(code)` when the corner
/// is statically doomed (`SPC001` out-of-domain element value, `SPC002`
/// singular matrix), `None` when it passes. `names`/`values` are the
/// scenario's parameter row; parameters the binds do not use are
/// ignored, and a bind whose parameter is missing from the row is
/// classified `SPC004`.
pub fn classify_point(
    ckt: &Circuit,
    spec: &SpaceSpec,
    names: &[String],
    values: &[f64],
) -> Option<&'static str> {
    let value_of =
        |name: &str| -> Option<f64> { names.iter().position(|n| n == name).map(|i| values[i]) };
    let mut resolved: Vec<(usize, SpaceTarget, f64)> = Vec::new();
    for b in &spec.binds {
        let p = match value_of(&b.param) {
            Some(p) => p,
            None => return Some(codes::SPC004),
        };
        let Some(elem) = ckt.elements().iter().position(|e| e.name == b.element) else {
            return Some(codes::SPC004);
        };
        let v = if b.relative { b.nominal * (1.0 + p) } else { p };
        resolved.retain(|(e, t, _)| !(*e == elem && *t == b.target));
        resolved.push((elem, b.target, v));
    }
    if resolved.iter().any(|&(_, _, v)| v <= 0.0) {
        return Some(codes::SPC001);
    }
    // Singularity at the concrete point, with the same companion stamps
    // the interval pass uses.
    if let Some(lay) = layout(ckt) {
        let mut ivs: Vec<Option<Interval>> = vec![None; ckt.elements().len()];
        for &(e, _, v) in &resolved {
            ivs[e] = Some(Interval::point(v));
        }
        if let Some(a) = interval_matrix(ckt, &lay, &ivs, spec.requested_h) {
            let n = lay.n;
            let mid = DMat::from_fn(n, n, |i, j| a[i][j].midpoint());
            if Lu::factor(&mid).is_err() {
                return Some(codes::SPC002);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Range-string parsing (example CLI support)
// ---------------------------------------------------------------------

/// Parses `"dr=-0.1:0.1,dc=-0.2:0.2"` into ranges, for the examples'
/// `--lint-space` flag.
pub fn parse_ranges(s: &str) -> Result<Vec<ParamRange>, String> {
    let mut out = Vec::new();
    for part in s.split(',').filter(|p| !p.is_empty()) {
        let (name, rest) = part
            .split_once('=')
            .ok_or_else(|| format!("range '{part}' is not NAME=LO:HI"))?;
        let (lo, hi) = rest
            .split_once(':')
            .ok_or_else(|| format!("range '{part}' is not NAME=LO:HI"))?;
        let lo: f64 = lo
            .parse()
            .map_err(|_| format!("bad lower bound in '{part}'"))?;
        let hi: f64 = hi
            .parse()
            .map_err(|_| format!("bad upper bound in '{part}'"))?;
        out.push(ParamRange::new(name.trim(), lo, hi));
    }
    if out.is_empty() {
        return Err("no ranges given (expected NAME=LO:HI[,NAME=LO:HI…])".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// V source + R ladder + C to ground: the canonical sweep template.
    fn rc_ladder(stages: usize) -> Circuit {
        let mut ckt = Circuit::new();
        let mut prev = ckt.node("n0");
        ckt.voltage_source("Vin", prev, Circuit::GROUND, 1.0)
            .unwrap();
        for k in 0..stages {
            let next = ckt.node(format!("n{}", k + 1));
            ckt.resistor(format!("R{k}"), prev, next, 1e3).unwrap();
            ckt.capacitor(format!("C{k}"), next, Circuit::GROUND, 1e-9)
                .unwrap();
            prev = next;
        }
        ckt
    }

    fn spec_rel(dr: (f64, f64), dc: (f64, f64), stages: usize) -> SpaceSpec {
        let mut binds = Vec::new();
        for k in 0..stages {
            binds.push(SpaceBind {
                param: "dr".into(),
                element: format!("R{k}"),
                target: SpaceTarget::Resistance,
                relative: true,
                nominal: 1e3,
            });
            binds.push(SpaceBind {
                param: "dc".into(),
                element: format!("C{k}"),
                target: SpaceTarget::Capacitance,
                relative: true,
                nominal: 1e-9,
            });
        }
        SpaceSpec::new(
            vec![
                ParamRange::new("dr", dr.0, dr.1),
                ParamRange::new("dc", dc.0, dc.1),
            ],
            binds,
        )
        .requested_h(50e-9)
    }

    #[test]
    fn healthy_box_proves_safe() {
        let ckt = rc_ladder(3);
        let rep = lint_space("t", &ckt, &spec_rel((-0.1, 0.1), (-0.1, 0.1), 3));
        assert!(rep.report.is_clean(), "{}", rep.render());
        assert_eq!(rep.verdict(codes::SPC001), Some(&Verdict::ProvedSafe));
        assert_eq!(rep.verdict(codes::SPC005), Some(&Verdict::ProvedSafe));
        assert_eq!(
            rep.verdict(codes::SPC002),
            Some(&Verdict::ProvedSafe),
            "{}",
            rep.render()
        );
        let h = rep.safe_h.expect("RC ladder admits a Gershgorin bound");
        assert!(h > 0.0 && h.is_finite());
    }

    #[test]
    fn domain_crossing_is_proved_violated_with_witness() {
        let ckt = rc_ladder(2);
        // dr reaches -1.2: R = nom·(1+dr) crosses zero inside the box.
        let rep = lint_space("t", &ckt, &spec_rel((-1.2, 0.1), (-0.05, 0.05), 2));
        assert!(rep.report.has_code(codes::SPC001), "{}", rep.render());
        let Some(Verdict::ProvedViolated(w)) = rep.verdict(codes::SPC001) else {
            panic!("expected a witness: {}", rep.render());
        };
        // Every point of the witness box must violate: R(dr) ≤ 0.
        let dr = w.interval("dr").unwrap();
        assert!(
            1e3 * (1.0 + dr.hi) <= 0.0,
            "witness box {w} contains passing corners"
        );
        // The lane-safety warning rides along.
        assert!(rep.report.has_code(codes::SPC006));
    }

    #[test]
    fn unknown_bind_targets_are_spc004() {
        let ckt = rc_ladder(1);
        let mut spec = spec_rel((-0.1, 0.1), (-0.1, 0.1), 1);
        spec.binds.push(SpaceBind {
            param: "dq".into(),
            element: "R9".into(),
            target: SpaceTarget::Resistance,
            relative: true,
            nominal: 1.0,
        });
        let rep = lint_space("t", &ckt, &spec);
        assert!(rep.report.has_code(codes::SPC004), "{}", rep.render());
        assert!(matches!(
            rep.verdict(codes::SPC004),
            Some(Verdict::ProvedViolated(_))
        ));
    }

    #[test]
    fn structural_defects_lift_to_spc005() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.current_source("I1", a, Circuit::GROUND, 1e-3).unwrap();
        let spec = SpaceSpec::new(vec![ParamRange::new("p", 0.0, 1.0)], vec![]);
        let rep = lint_space("t", &ckt, &spec);
        assert!(rep.report.has_code(codes::SPC005), "{}", rep.render());
        assert!(matches!(
            rep.verdict(codes::SPC005),
            Some(Verdict::ProvedViolated(_))
        ));
    }

    #[test]
    fn point_classification_matches_the_space_verdicts() {
        let ckt = rc_ladder(2);
        let spec = spec_rel((-1.2, 0.1), (-0.05, 0.05), 2);
        let names: Vec<String> = vec!["dr".into(), "dc".into()];
        assert_eq!(
            classify_point(&ckt, &spec, &names, &[-1.1, 0.0]),
            Some(codes::SPC001),
            "R = 1e3·(1-1.1) < 0 is out of domain"
        );
        assert_eq!(classify_point(&ckt, &spec, &names, &[0.05, 0.0]), None);
        // Missing bind parameter in the row.
        assert_eq!(
            classify_point(&ckt, &spec, &["dr".to_string()], &[0.0]),
            Some(codes::SPC004)
        );
    }

    #[test]
    fn requested_timestep_beyond_the_bound_warns_spc003() {
        let ckt = rc_ladder(2);
        let mut spec = spec_rel((-0.1, 0.1), (-0.1, 0.1), 2);
        let base = lint_space("t", &ckt, &spec);
        let safe = base.safe_h.unwrap();
        spec.requested_h = Some(safe * 10.0);
        let rep = lint_space("t", &ckt, &spec);
        assert!(rep.report.has_code(codes::SPC003), "{}", rep.render());
        assert_eq!(rep.report.error_count(), 0, "SPC003 is a warning");
    }

    #[test]
    fn budget_exhaustion_reports_unknown_not_a_false_proof() {
        let ckt = rc_ladder(2);
        // A box that needs refinement (crosses zero) with budget 1.
        let spec = spec_rel((-1.2, 0.1), (-0.05, 0.05), 2).budget(1);
        let rep = lint_space("t", &ckt, &spec);
        match rep.verdict(codes::SPC001) {
            Some(Verdict::Unknown(boxes)) => assert!(!boxes.is_empty()),
            Some(Verdict::ProvedViolated(_)) => {} // budget 1 may still hit a witness first
            other => panic!("budget-starved verdict must not prove safety: {other:?}"),
        }
    }

    #[test]
    fn fingerprint_is_value_sensitive() {
        let a = spec_rel((-0.1, 0.1), (-0.1, 0.1), 2);
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.ranges[0].hi = 0.2;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn range_parser_round_trips_and_rejects_garbage() {
        let r = parse_ranges("dr=-0.1:0.1,dc=-0.2:0.2").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], ParamRange::new("dr", -0.1, 0.1));
        assert!(parse_ranges("").is_err());
        assert!(parse_ranges("dr=0.1").is_err());
        assert!(parse_ranges("dr=a:b").is_err());
    }
}
