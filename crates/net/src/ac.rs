//! Small-signal AC analysis.
//!
//! "SystemC-AMS will also have to support at least small-signal linear
//! frequency-domain analysis, as the frequency-domain characteristics of a
//! system is also important" (paper §3, O3). The netlist is linearized at
//! the DC operating point (diodes → their small-signal conductance), the
//! complex MNA system is assembled per frequency, and AC-designated
//! sources provide the stimulus — no extra language elements, exactly as
//! the paper requires: the frequency-domain model derives from the same
//! time-domain description.

use crate::assembly::{MnaSystem, SolverBackend, Stamp};
use crate::dcop::{DcSolution, GMIN};
use crate::mna::{
    stamp_branch_kcl, stamp_branch_voltage, stamp_conductance, stamp_current, stamp_mos_ac,
    stamp_vccs, MnaLayout,
};
use crate::{Circuit, ElementId, ElementKind, NetError, NodeId};
use ams_math::{Complex64, DVec};

/// The complex solution of one AC frequency point.
#[derive(Debug, Clone)]
pub struct AcSolution {
    pub(crate) layout: MnaLayout,
    pub(crate) x: DVec<Complex64>,
    /// The angular frequency (rad/s) this point was solved at.
    pub omega: f64,
}

impl AcSolution {
    /// The complex node voltage phasor.
    ///
    /// # Panics
    ///
    /// Panics for nodes outside the circuit.
    pub fn voltage(&self, node: NodeId) -> Complex64 {
        assert!(node.index() < self.layout.n_nodes, "node out of range");
        match self.layout.node_var(node) {
            None => Complex64::ZERO,
            Some(i) => self.x[i],
        }
    }

    /// The complex branch current of a voltage-defined element.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownElement`] if the element carries no
    /// branch unknown.
    pub fn branch_current(&self, elem: ElementId) -> Result<Complex64, NetError> {
        self.layout
            .branch_var(elem)
            .map(|b| self.x[b])
            .ok_or(NetError::UnknownElement {
                index: elem.index(),
                what: "branch current",
            })
    }
}

/// Assembles the complex MNA matrix at angular frequency `omega`,
/// linearized at the operating point `op`.
///
/// The stamp sequence is topology-determined (independent of `omega`),
/// so the sparse pattern recorded at one frequency serves the entire
/// sweep and every later factorization is a numeric refactor.
pub(crate) fn assemble_ac(
    ckt: &Circuit,
    layout: &MnaLayout,
    op: &DcSolution,
    switches: &[bool],
    omega: f64,
    st: &mut dyn Stamp<Complex64>,
) {
    let jw = Complex64::new(0.0, omega);
    for (idx, e) in ckt.elements().iter().enumerate() {
        let eid = ElementId(idx);
        match &e.kind {
            ElementKind::Resistor { ohms } => {
                stamp_conductance(layout, st, e.p, e.n, Complex64::from_real(1.0 / ohms));
            }
            ElementKind::Capacitor { farads, .. } => {
                stamp_conductance(layout, st, e.p, e.n, jw * *farads);
            }
            ElementKind::Inductor { henries, .. } => {
                let b = layout.branch_var(eid).expect("inductor branch");
                stamp_branch_kcl(layout, st, e.p, e.n, b);
                stamp_branch_voltage(layout, st, b, e.p, e.n, Complex64::ONE);
                st.mat(b, b, -(jw * *henries));
            }
            ElementKind::VoltageSource { .. } => {
                let b = layout.branch_var(eid).expect("vsource branch");
                stamp_branch_kcl(layout, st, e.p, e.n, b);
                stamp_branch_voltage(layout, st, b, e.p, e.n, Complex64::ONE);
                // RHS handled by the caller (stimulus).
            }
            ElementKind::CurrentSource { .. } => {
                // Independent current sources are open in AC unless they
                // carry an AC magnitude (stimulus handled by caller).
            }
            ElementKind::Vcvs { cp, cn, gain } => {
                let b = layout.branch_var(eid).expect("vcvs branch");
                stamp_branch_kcl(layout, st, e.p, e.n, b);
                stamp_branch_voltage(layout, st, b, e.p, e.n, Complex64::ONE);
                stamp_branch_voltage(layout, st, b, *cp, *cn, Complex64::from_real(-*gain));
            }
            ElementKind::Vccs { cp, cn, gm } => {
                stamp_vccs(layout, st, e.p, e.n, *cp, *cn, Complex64::from_real(*gm));
            }
            ElementKind::Cccs { ctrl, gain } => {
                let cb = layout.branch_var(*ctrl).expect("validated control");
                if let Some(ip) = layout.node_var(e.p) {
                    st.mat(ip, cb, Complex64::from_real(*gain));
                }
                if let Some(in_) = layout.node_var(e.n) {
                    st.mat(in_, cb, Complex64::from_real(-*gain));
                }
            }
            ElementKind::Ccvs { ctrl, r } => {
                let b = layout.branch_var(eid).expect("ccvs branch");
                let cb = layout.branch_var(*ctrl).expect("validated control");
                stamp_branch_kcl(layout, st, e.p, e.n, b);
                stamp_branch_voltage(layout, st, b, e.p, e.n, Complex64::ONE);
                st.mat(b, cb, Complex64::from_real(-*r));
            }
            ElementKind::Diode { .. } => {
                let g = op.diode_ops[idx].map(|d| d.g).unwrap_or(0.0);
                stamp_conductance(layout, st, e.p, e.n, Complex64::from_real(g + GMIN));
            }
            ElementKind::Nmos { gate, .. } => {
                if let Some(mos) = op.nmos_ops[idx] {
                    stamp_mos_ac(layout, st, e.p, *gate, e.n, &mos);
                }
                stamp_conductance(layout, st, e.p, e.n, Complex64::from_real(GMIN));
            }
            ElementKind::Switch { r_on, r_off, .. } => {
                let r = if switches.get(idx).copied().unwrap_or(false) {
                    *r_on
                } else {
                    *r_off
                };
                stamp_conductance(layout, st, e.p, e.n, Complex64::from_real(1.0 / r));
            }
        }
    }
}

/// Builds the AC stimulus right-hand side from sources' `ac_mag`.
pub(crate) fn assemble_ac_rhs(ckt: &Circuit, layout: &MnaLayout, st: &mut dyn Stamp<Complex64>) {
    for (idx, e) in ckt.elements().iter().enumerate() {
        match &e.kind {
            ElementKind::VoltageSource { ac_mag, .. } if *ac_mag != 0.0 => {
                let b = layout.branch_var(ElementId(idx)).expect("vsource branch");
                st.rhs(b, Complex64::from_real(*ac_mag));
            }
            ElementKind::CurrentSource { ac_mag, .. } if *ac_mag != 0.0 => {
                stamp_current(layout, st, e.p, e.n, Complex64::from_real(*ac_mag));
            }
            _ => {}
        }
    }
}

impl Circuit {
    /// Runs an AC sweep over the given frequencies (Hz), linearizing at
    /// the provided operating point. The stimulus comes from sources with
    /// a non-zero `ac_mag` (see [`Circuit::voltage_source_ac`]).
    ///
    /// # Errors
    ///
    /// * [`NetError::Singular`] for unsolvable topologies.
    /// * Propagates factorization failures.
    pub fn ac_sweep(&self, op: &DcSolution, freqs_hz: &[f64]) -> Result<Vec<AcSolution>, NetError> {
        self.ac_sweep_with(op, freqs_hz, SolverBackend::Auto)
    }

    /// [`Circuit::ac_sweep`] with an explicit linear-solver backend. On
    /// the sparse backend the symbolic analysis runs once for the whole
    /// sweep; every frequency point is a numeric refactor over the cached
    /// pattern.
    ///
    /// # Errors
    ///
    /// See [`Circuit::ac_sweep`].
    pub fn ac_sweep_with(
        &self,
        op: &DcSolution,
        freqs_hz: &[f64],
        backend: SolverBackend,
    ) -> Result<Vec<AcSolution>, NetError> {
        let layout = MnaLayout::build(self);
        let switches = self.initial_switch_states();
        let n = layout.n_unknowns;
        let mut out = Vec::with_capacity(freqs_hz.len());
        let mut sys = MnaSystem::<Complex64>::new(n, backend.use_sparse(n), |st| {
            assemble_ac(self, &layout, op, &switches, 1.0, st)
        });
        for &f in freqs_hz {
            let omega = 2.0 * std::f64::consts::PI * f;
            sys.assemble(|st| {
                assemble_ac(self, &layout, op, &switches, omega, st);
                assemble_ac_rhs(self, &layout, st);
            });
            sys.factor(true)?;
            let x = sys.solve_rhs()?;
            out.push(AcSolution {
                layout: layout.clone(),
                x,
                omega,
            });
        }
        Ok(out)
    }

    /// Convenience: AC transfer function from the AC stimulus to one
    /// output node, over a list of frequencies.
    ///
    /// # Errors
    ///
    /// See [`Circuit::ac_sweep`].
    pub fn ac_transfer(
        &self,
        op: &DcSolution,
        output: NodeId,
        freqs_hz: &[f64],
    ) -> Result<Vec<Complex64>, NetError> {
        Ok(self
            .ac_sweep(op, freqs_hz)?
            .iter()
            .map(|s| s.voltage(output))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_low_pass_ac() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source_ac("V1", a, Circuit::GROUND, 0.0, 1.0)
            .unwrap();
        ckt.resistor("R1", a, out, 1e3).unwrap();
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-6).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e-3); // ≈ 159 Hz
        let h = ckt.ac_transfer(&op, out, &[1.0, f0, 100.0 * f0]).unwrap();
        assert!((h[0].abs() - 1.0).abs() < 1e-3);
        assert!((h[1].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!(h[2].abs() < 0.011);
        // Phase at cutoff is −45°.
        assert!((h[1].arg().to_degrees() + 45.0).abs() < 0.1);
    }

    #[test]
    fn rlc_resonance() {
        // Series RLC, output across C: peak near f₀ with gain ≈ Q.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let out = ckt.node("out");
        ckt.voltage_source_ac("V1", a, Circuit::GROUND, 0.0, 1.0)
            .unwrap();
        ckt.resistor("R1", a, b, 10.0).unwrap();
        ckt.inductor("L1", b, out, 1e-3).unwrap();
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-6).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3f64 * 1e-6).sqrt());
        let q = (1e-3f64 / 1e-6).sqrt() / 10.0; // √(L/C)/R ≈ 3.16
        let h = ckt.ac_transfer(&op, out, &[f0]).unwrap();
        assert!(
            (h[0].abs() - q).abs() / q < 0.01,
            "peak {} vs Q {q}",
            h[0].abs()
        );
    }

    #[test]
    fn diode_small_signal_resistance() {
        // Diode biased at ~1 mA has r_d = nVt/I ≈ 26 Ω; an AC divider with
        // a series resistor confirms the linearized conductance.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.voltage_source_ac("V1", a, Circuit::GROUND, 5.0, 1.0)
            .unwrap();
        ckt.resistor("R1", a, d, 4.3e3).unwrap();
        ckt.diode("D1", d, Circuit::GROUND, 1e-14, 1.0).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let id = (5.0 - op.voltage(d)) / 4.3e3;
        let rd = 0.02585 / id;
        let h = ckt.ac_transfer(&op, d, &[1.0]).unwrap();
        let expected = rd / (rd + 4.3e3);
        assert!(
            (h[0].abs() - expected).abs() / expected < 0.01,
            "{} vs {expected}",
            h[0].abs()
        );
    }

    #[test]
    fn current_source_stimulus() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // AC current of 1 mA into a 2 kΩ: 2 V.
        let mut e = ckt.current_source("I1", Circuit::GROUND, a, 0.0).unwrap();
        // Overwrite with an AC magnitude via direct construction:
        // (simplest: a second AC source API would be overkill here).
        let _ = &mut e;
        ckt.resistor("R1", a, Circuit::GROUND, 2e3).unwrap();
        // Build a fresh circuit using voltage_source_ac equivalent for I:
        // hand-patch kind:
        let mut ckt2 = Circuit::new();
        let a2 = ckt2.node("a");
        ckt2.current_source("I1", Circuit::GROUND, a2, 0.0).unwrap();
        ckt2.resistor("R1", a2, Circuit::GROUND, 2e3).unwrap();
        // The ac_mag of current sources is exercised through ac_rhs
        // assembly in the noise module; here we just confirm a sweep with
        // no stimulus yields zero.
        let op = ckt2.dc_operating_point().unwrap();
        let h = ckt2.ac_transfer(&op, a2, &[100.0]).unwrap();
        assert_eq!(h[0].abs(), 0.0);
    }

    #[test]
    fn vcvs_in_ac() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source_ac("V1", inp, Circuit::GROUND, 0.0, 1.0)
            .unwrap();
        ckt.vcvs("E1", out, Circuit::GROUND, inp, Circuit::GROUND, -10.0)
            .unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let h = ckt.ac_transfer(&op, out, &[1e3]).unwrap();
        assert!((h[0].re + 10.0).abs() < 1e-9);
        assert!(h[0].im.abs() < 1e-9);
    }

    #[test]
    fn inductor_blocks_high_frequencies() {
        // RL high-pass: output across L... actually L in shunt blocks lows.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source_ac("V1", a, Circuit::GROUND, 0.0, 1.0)
            .unwrap();
        ckt.resistor("R1", a, out, 100.0).unwrap();
        ckt.inductor("L1", out, Circuit::GROUND, 1e-3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let fc = 100.0 / (2.0 * std::f64::consts::PI * 1e-3); // R/(2πL)
        let h = ckt
            .ac_transfer(&op, out, &[fc / 100.0, fc, fc * 100.0])
            .unwrap();
        assert!(h[0].abs() < 0.02); // low f: inductor shorts output
        assert!((h[1].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
        assert!(h[2].abs() > 0.99); // high f: inductor open
    }
}
