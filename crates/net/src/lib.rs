//! Conservative-law network modeling and simulation via Modified Nodal
//! Analysis (MNA).
//!
//! Implements the paper's design objective O5 ("SystemC-AMS must support
//! the description and the simulation of continuous-time systems as
//! conservative-law models") and the O7 netlist description layer:
//!
//! * [`Circuit`] — netlist construction: R, L, C, independent sources
//!   (DC/sine/pulse/externally-driven), all four controlled sources,
//!   Shockley diodes and externally controlled switches;
//! * [`DcSolution`] — DC operating point (Newton with junction limiting,
//!   gmin stepping and source stepping) — the paper's "consistent initial
//!   (quiescent) state";
//! * [`TransientSolver`] — companion-model time stepping (backward Euler /
//!   trapezoidal), a factor-once linear fast path ("such networks can be
//!   simulated using efficient dedicated algorithms", §3), per-step Newton
//!   for nonlinear networks and LTE-controlled variable steps (phase 2);
//! * [`LaneTransientSolver`] — lane-bundled batch transient: `K`
//!   parameter corners of one topology advanced in lockstep through
//!   assembly, sparse LU and Newton over `ams_math::F64xK` bundles;
//! * [`Circuit::ac_sweep`] / [`Circuit::noise_analysis`] — small-signal
//!   frequency-domain and noise analyses derived from the same netlist;
//! * [`Multiphysics`] — discipline-typed mechanical (translational &
//!   rotational) and thermal element libraries over the same conservative
//!   core (phase 3), including a DC-machine electro-mechanical coupling.
//!
//! # Example
//!
//! ```
//! use ams_net::Circuit;
//!
//! # fn main() -> Result<(), ams_net::NetError> {
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.voltage_source_ac("V1", inp, Circuit::GROUND, 0.0, 1.0)?;
//! ckt.resistor("R1", inp, out, 1_000.0)?;
//! ckt.capacitor("C1", out, Circuit::GROUND, 1e-6)?;
//! let op = ckt.dc_operating_point()?;
//! let h = ckt.ac_transfer(&op, out, &[159.15])?; // at the pole
//! assert!((h[0].abs() - 0.7071).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod assembly;
pub mod checkpoint;
mod circuit;
mod dcop;
mod devices;
mod error;
mod lane;
mod mna;
mod multiphys;
mod noise;
mod pattern;
mod transient;

pub use ac::AcSolution;
pub use assembly::SolverBackend;
pub use checkpoint::Checkpoint;
pub use circuit::{Circuit, Element, ElementId, ElementKind, InputId, NodeId, Waveform};
pub use dcop::DcSolution;
pub use error::NetError;
pub use lane::{LaneSymbolicFactor, LaneTransientSolver, LaneView, ScenarioProbe};
pub use multiphys::{MechNode, Multiphysics, RotNode, ThermalNode};
pub use noise::{
    NoiseAnalysis, NoiseContribution, NoisePoint, BOLTZMANN, ELEMENTARY_CHARGE, NOISE_TEMP,
};
pub use pattern::StampPattern;
pub use transient::{
    AdaptiveOptions, IntegrationMethod, SymbolicFactor, TransientSolver, TransientStats,
};
