//! Circuit (netlist) construction — the paper's "netlist interface"
//! description layer (§3, O7).
//!
//! A [`Circuit`] is a bag of conservative two-terminal (and controlled
//! four-terminal) elements between nodes. Node 0 is the reference
//! (ground). The same netlist feeds every analysis: DC operating point,
//! transient (with companion models), small-signal AC and noise — one
//! description, many solvers, exactly as the paper's O7 prescribes.

use crate::NetError;
use std::fmt;

/// Handle to a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The reference (ground) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Handle to an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to an externally driven source value (the TDF ↔ netlist
/// coupling point: converter modules write these each cluster activation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputId(pub(crate) usize);

impl InputId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Source waveform for independent sources.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `offset + ampl·sin(2π·freq·t + phase)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Phase in radians.
        phase: f64,
    },
    /// Trapezoidal pulse train.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Width at `v2`, seconds.
        width: f64,
        /// Repetition period, seconds (0 = single pulse).
        period: f64,
    },
    /// Value driven from outside the solver (TDF converter input or a DE
    /// process). Defaults to 0 until set.
    External(InputId),
}

impl Waveform {
    /// Evaluates the waveform at time `t`, with `ext` supplying external
    /// input values.
    pub(crate) fn value_at(&self, t: f64, ext: &[f64]) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Sine {
                offset,
                ampl,
                freq,
                phase,
            } => offset + ampl * (2.0 * std::f64::consts::PI * freq * t + phase).sin(),
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                let mut tau = t - delay;
                if tau < 0.0 {
                    return v1;
                }
                if period > 0.0 {
                    tau %= period;
                }
                if tau < rise {
                    if rise == 0.0 {
                        v2
                    } else {
                        v1 + (v2 - v1) * tau / rise
                    }
                } else if tau < rise + width {
                    v2
                } else if tau < rise + width + fall {
                    if fall == 0.0 {
                        v1
                    } else {
                        v2 + (v1 - v2) * (tau - rise - width) / fall
                    }
                } else {
                    v1
                }
            }
            Waveform::External(id) => ext.get(id.0).copied().unwrap_or(0.0),
        }
    }

    /// The DC (t → 0⁻, quiescent) value used for operating-point analysis.
    pub(crate) fn dc_value(&self, ext: &[f64]) -> f64 {
        match *self {
            Waveform::Dc(v) => v,
            Waveform::Sine { offset, .. } => offset,
            Waveform::Pulse { v1, .. } => v1,
            Waveform::External(id) => ext.get(id.0).copied().unwrap_or(0.0),
        }
    }
}

/// The element kinds supported by the solvers.
///
/// This covers the paper's phase-1 "linear network elements (electrical
/// element library: R, L, C, sources)", the controlled sources needed for
/// macromodels, and the phase-2/3 nonlinear devices (diode, switch).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ElementKind {
    /// Linear resistor (ohms).
    Resistor {
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor (farads), optional initial voltage.
    Capacitor {
        /// Capacitance in farads.
        farads: f64,
        /// Initial voltage for transient start (None = use DC solution).
        ic: Option<f64>,
    },
    /// Linear inductor (henries), optional initial current. Carries a
    /// branch-current unknown.
    Inductor {
        /// Inductance in henries.
        henries: f64,
        /// Initial current for transient start (None = use DC solution).
        ic: Option<f64>,
    },
    /// Independent voltage source. Carries a branch-current unknown.
    VoltageSource {
        /// Large-signal waveform.
        wave: Waveform,
        /// Small-signal AC magnitude (for AC/noise analysis).
        ac_mag: f64,
    },
    /// Independent current source (flows from `p` to `n` through the
    /// source, i.e. injects into `n`).
    CurrentSource {
        /// Large-signal waveform.
        wave: Waveform,
        /// Small-signal AC magnitude.
        ac_mag: f64,
    },
    /// Voltage-controlled voltage source `V(p,n) = gain·V(cp,cn)`.
    /// Carries a branch-current unknown.
    Vcvs {
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source `I(p→n) = gm·V(cp,cn)`.
    Vccs {
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// Current-controlled current source `I(p→n) = gain·I(ctrl)`, where
    /// `ctrl` is an element with a branch current (V source or inductor).
    Cccs {
        /// The element whose branch current controls this source.
        ctrl: ElementId,
        /// Current gain.
        gain: f64,
    },
    /// Current-controlled voltage source `V(p,n) = r·I(ctrl)`.
    /// Carries a branch-current unknown.
    Ccvs {
        /// The element whose branch current controls this source.
        ctrl: ElementId,
        /// Transresistance in ohms.
        r: f64,
    },
    /// Shockley diode `i = Is·(e^{v/(n·Vt)} − 1)` with series gmin.
    Diode {
        /// Saturation current in amperes.
        is_sat: f64,
        /// Ideality factor (1–2 typical).
        n: f64,
    },
    /// Square-law NMOS transistor (level-1, no body effect): drain `p`,
    /// source `n`, gate voltage sensed at `gate`.
    ///
    /// `i_d = kp·(v_gs − vt − v_ds/2)·v_ds·(1 + λ·v_ds)` in triode,
    /// `i_d = kp/2·(v_gs − vt)²·(1 + λ·v_ds)` in saturation, 0 below
    /// threshold. For a PMOS, swap terminal polarities externally.
    Nmos {
        /// Gate node (infinite gate impedance).
        gate: NodeId,
        /// Transconductance parameter `kp = µCox·W/L` in A/V².
        kp: f64,
        /// Threshold voltage in volts.
        vt: f64,
        /// Channel-length modulation λ in 1/V.
        lambda: f64,
    },
    /// Ideal switch with on/off resistances; state driven externally (a DE
    /// process or TDF module flips it — the power-electronics primitive of
    /// seed work \[8\]).
    Switch {
        /// Closed-state resistance in ohms.
        r_on: f64,
        /// Open-state resistance in ohms.
        r_off: f64,
        /// Initial state.
        initially_on: bool,
    },
}

/// One element instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Instance name (unique per circuit, used in diagnostics).
    pub name: String,
    /// Positive terminal.
    pub p: NodeId,
    /// Negative terminal.
    pub n: NodeId,
    /// The element kind and parameters.
    pub kind: ElementKind,
}

impl Element {
    /// Returns `true` if this element carries a branch-current unknown in
    /// the MNA formulation.
    pub fn has_branch_current(&self) -> bool {
        matches!(
            self.kind,
            ElementKind::Inductor { .. }
                | ElementKind::VoltageSource { .. }
                | ElementKind::Vcvs { .. }
                | ElementKind::Ccvs { .. }
        )
    }

    /// Returns `true` if the element is nonlinear (requires Newton).
    pub fn is_nonlinear(&self) -> bool {
        matches!(
            self.kind,
            ElementKind::Diode { .. } | ElementKind::Nmos { .. }
        )
    }
}

/// A conservative-law network under construction.
///
/// # Example
///
/// A resistive divider:
///
/// ```
/// use ams_net::Circuit;
///
/// # fn main() -> Result<(), ams_net::NetError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.voltage_source("V1", vin, Circuit::GROUND, 10.0)?;
/// ckt.resistor("R1", vin, out, 6000.0)?;
/// ckt.resistor("R2", out, Circuit::GROUND, 4000.0)?;
/// let op = ckt.dc_operating_point()?;
/// assert!((op.voltage(out) - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    pub(crate) node_names: Vec<String>,
    pub(crate) elements: Vec<Element>,
    pub(crate) external_inputs: usize,
}

impl Circuit {
    /// The ground node.
    pub const GROUND: NodeId = NodeId::GROUND;

    /// Creates an empty circuit (ground pre-defined).
    pub fn new() -> Self {
        Circuit {
            node_names: vec!["0".to_string()],
            elements: Vec::new(),
            external_inputs: 0,
        }
    }

    /// Creates a named node.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.into());
        id
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Looks a node up by name (`"0"` is ground). `None` when no node
    /// carries that name; first match wins on duplicates.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(NodeId)
    }

    /// All node handles including ground, in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len()).map(NodeId)
    }

    /// The elements (read-only view).
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Registers an externally driven input slot; pass the handle to a
    /// [`Waveform::External`] source.
    pub fn external_input(&mut self) -> InputId {
        let id = InputId(self.external_inputs);
        self.external_inputs += 1;
        id
    }

    /// Number of external input slots.
    pub fn external_input_count(&self) -> usize {
        self.external_inputs
    }

    fn check_node(&self, node: NodeId) -> Result<(), NetError> {
        if node.0 >= self.node_names.len() {
            return Err(NetError::UnknownNode { index: node.0 });
        }
        Ok(())
    }

    fn push(&mut self, e: Element) -> Result<ElementId, NetError> {
        self.check_node(e.p)?;
        self.check_node(e.n)?;
        match &e.kind {
            ElementKind::Vcvs { cp, cn, .. } | ElementKind::Vccs { cp, cn, .. } => {
                self.check_node(*cp)?;
                self.check_node(*cn)?;
            }
            ElementKind::Nmos { gate, .. } => {
                self.check_node(*gate)?;
            }
            ElementKind::Cccs { ctrl, .. } | ElementKind::Ccvs { ctrl, .. } => {
                let idx = ctrl.0;
                let valid = self
                    .elements
                    .get(idx)
                    .map(Element::has_branch_current)
                    .unwrap_or(false);
                if !valid {
                    return Err(NetError::UnknownElement {
                        index: idx,
                        what: "controlling branch current",
                    });
                }
            }
            _ => {}
        }
        let id = ElementId(self.elements.len());
        self.elements.push(e);
        Ok(id)
    }

    fn positive(name: &str, what: &str, v: f64) -> Result<(), NetError> {
        if v <= 0.0 || !v.is_finite() {
            return Err(NetError::InvalidValue {
                element: name.to_string(),
                reason: format!("{what} must be positive and finite, got {v}"),
            });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance and unknown nodes.
    pub fn resistor(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        ohms: f64,
    ) -> Result<ElementId, NetError> {
        let name = name.into();
        Self::positive(&name, "resistance", ohms)?;
        self.push(Element {
            name,
            p,
            n,
            kind: ElementKind::Resistor { ohms },
        })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitance and unknown nodes.
    pub fn capacitor(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        farads: f64,
    ) -> Result<ElementId, NetError> {
        let name = name.into();
        Self::positive(&name, "capacitance", farads)?;
        self.push(Element {
            name,
            p,
            n,
            kind: ElementKind::Capacitor { farads, ic: None },
        })
    }

    /// Adds a capacitor with an initial-condition voltage for transient
    /// analysis.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitance and unknown nodes.
    pub fn capacitor_ic(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        farads: f64,
        ic: f64,
    ) -> Result<ElementId, NetError> {
        let name = name.into();
        Self::positive(&name, "capacitance", farads)?;
        self.push(Element {
            name,
            p,
            n,
            kind: ElementKind::Capacitor {
                farads,
                ic: Some(ic),
            },
        })
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Rejects non-positive inductance and unknown nodes.
    pub fn inductor(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        henries: f64,
    ) -> Result<ElementId, NetError> {
        let name = name.into();
        Self::positive(&name, "inductance", henries)?;
        self.push(Element {
            name,
            p,
            n,
            kind: ElementKind::Inductor { henries, ic: None },
        })
    }

    /// Adds an inductor with an initial current.
    ///
    /// # Errors
    ///
    /// Rejects non-positive inductance and unknown nodes.
    pub fn inductor_ic(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        henries: f64,
        ic: f64,
    ) -> Result<ElementId, NetError> {
        let name = name.into();
        Self::positive(&name, "inductance", henries)?;
        self.push(Element {
            name,
            p,
            n,
            kind: ElementKind::Inductor {
                henries,
                ic: Some(ic),
            },
        })
    }

    /// Adds a DC voltage source (`p` is the positive terminal).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn voltage_source(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        volts: f64,
    ) -> Result<ElementId, NetError> {
        self.voltage_source_wave(name, p, n, Waveform::Dc(volts))
    }

    /// Adds a voltage source with an arbitrary waveform.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn voltage_source_wave(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> Result<ElementId, NetError> {
        self.push(Element {
            name: name.into(),
            p,
            n,
            kind: ElementKind::VoltageSource { wave, ac_mag: 0.0 },
        })
    }

    /// Adds a voltage source carrying the AC stimulus (magnitude `ac_mag`)
    /// for small-signal analysis, on top of a DC bias.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn voltage_source_ac(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        dc: f64,
        ac_mag: f64,
    ) -> Result<ElementId, NetError> {
        self.push(Element {
            name: name.into(),
            p,
            n,
            kind: ElementKind::VoltageSource {
                wave: Waveform::Dc(dc),
                ac_mag,
            },
        })
    }

    /// Adds a DC current source (conventional current flows from `p`
    /// through the source to `n`).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn current_source(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        amps: f64,
    ) -> Result<ElementId, NetError> {
        self.current_source_wave(name, p, n, Waveform::Dc(amps))
    }

    /// Adds a current source with an arbitrary waveform.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn current_source_wave(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    ) -> Result<ElementId, NetError> {
        self.push(Element {
            name: name.into(),
            p,
            n,
            kind: ElementKind::CurrentSource { wave, ac_mag: 0.0 },
        })
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn vcvs(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<ElementId, NetError> {
        self.push(Element {
            name: name.into(),
            p,
            n,
            kind: ElementKind::Vcvs { cp, cn, gain },
        })
    }

    /// Adds a voltage-controlled current source (transconductance `gm`).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn vccs(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<ElementId, NetError> {
        self.push(Element {
            name: name.into(),
            p,
            n,
            kind: ElementKind::Vccs { cp, cn, gm },
        })
    }

    /// Adds a current-controlled current source. `ctrl` must be an element
    /// with a branch current (voltage source, inductor, VCVS or CCVS).
    ///
    /// # Errors
    ///
    /// Rejects invalid controlling elements or unknown nodes.
    pub fn cccs(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        ctrl: ElementId,
        gain: f64,
    ) -> Result<ElementId, NetError> {
        self.push(Element {
            name: name.into(),
            p,
            n,
            kind: ElementKind::Cccs { ctrl, gain },
        })
    }

    /// Adds a current-controlled voltage source.
    ///
    /// # Errors
    ///
    /// Rejects invalid controlling elements or unknown nodes.
    pub fn ccvs(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        ctrl: ElementId,
        r: f64,
    ) -> Result<ElementId, NetError> {
        self.push(Element {
            name: name.into(),
            p,
            n,
            kind: ElementKind::Ccvs { ctrl, r },
        })
    }

    /// Adds a Shockley diode (anode `p`, cathode `n`).
    ///
    /// # Errors
    ///
    /// Rejects non-positive saturation current or ideality factor.
    pub fn diode(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        is_sat: f64,
        ideality: f64,
    ) -> Result<ElementId, NetError> {
        let name = name.into();
        Self::positive(&name, "saturation current", is_sat)?;
        Self::positive(&name, "ideality factor", ideality)?;
        self.push(Element {
            name,
            p,
            n,
            kind: ElementKind::Diode {
                is_sat,
                n: ideality,
            },
        })
    }

    /// Adds a square-law NMOS transistor: drain `d`, gate `g`, source `s`
    /// (source also acts as the bulk reference).
    ///
    /// # Errors
    ///
    /// Rejects non-positive `kp`, negative `lambda`, or unknown nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn nmos(
        &mut self,
        name: impl Into<String>,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        kp: f64,
        vt: f64,
        lambda: f64,
    ) -> Result<ElementId, NetError> {
        let name = name.into();
        Self::positive(&name, "transconductance parameter", kp)?;
        if lambda < 0.0 || !lambda.is_finite() {
            return Err(NetError::InvalidValue {
                element: name,
                reason: format!("lambda must be non-negative and finite, got {lambda}"),
            });
        }
        self.check_node(g)?;
        self.push(Element {
            name,
            p: d,
            n: s,
            kind: ElementKind::Nmos {
                gate: g,
                kp,
                vt,
                lambda,
            },
        })
    }

    /// Sets the small-signal AC magnitude on every independent source
    /// driven by the given external input slot, returning how many
    /// sources matched. Used by solver adaptors to compute per-input AC
    /// transfer functions.
    pub fn set_external_ac_magnitude(&mut self, input: InputId, mag: f64) -> usize {
        let mut n = 0;
        for e in &mut self.elements {
            match &mut e.kind {
                ElementKind::VoltageSource { wave, ac_mag }
                | ElementKind::CurrentSource { wave, ac_mag } => {
                    if matches!(wave, Waveform::External(id) if *id == input) {
                        *ac_mag = mag;
                        n += 1;
                    }
                }
                _ => {}
            }
        }
        n
    }

    /// Clears the AC magnitude of every independent source.
    pub fn clear_ac_magnitudes(&mut self) {
        for e in &mut self.elements {
            match &mut e.kind {
                ElementKind::VoltageSource { ac_mag, .. }
                | ElementKind::CurrentSource { ac_mag, .. } => *ac_mag = 0.0,
                _ => {}
            }
        }
    }

    /// Replaces the resistance of resistor `elem`, leaving the topology
    /// (nodes, element set, stamp pattern) untouched — the value-only
    /// mutation primitive of parameter sweeps.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownElement`] if `elem` is not a resistor.
    /// * [`NetError::InvalidValue`] for a non-positive or non-finite
    ///   value.
    pub fn set_resistance(&mut self, elem: ElementId, new_ohms: f64) -> Result<(), NetError> {
        let e = self
            .elements
            .get_mut(elem.0)
            .ok_or(NetError::UnknownElement {
                index: elem.0,
                what: "resistance update",
            })?;
        match &mut e.kind {
            ElementKind::Resistor { ohms } => {
                Self::positive(&e.name, "resistance", new_ohms)?;
                *ohms = new_ohms;
                Ok(())
            }
            _ => Err(NetError::UnknownElement {
                index: elem.0,
                what: "resistance update",
            }),
        }
    }

    /// Replaces the capacitance of capacitor `elem` (topology
    /// untouched; any initial-condition voltage is preserved).
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownElement`] if `elem` is not a capacitor.
    /// * [`NetError::InvalidValue`] for a non-positive or non-finite
    ///   value.
    pub fn set_capacitance(&mut self, elem: ElementId, new_farads: f64) -> Result<(), NetError> {
        let e = self
            .elements
            .get_mut(elem.0)
            .ok_or(NetError::UnknownElement {
                index: elem.0,
                what: "capacitance update",
            })?;
        match &mut e.kind {
            ElementKind::Capacitor { farads, .. } => {
                Self::positive(&e.name, "capacitance", new_farads)?;
                *farads = new_farads;
                Ok(())
            }
            _ => Err(NetError::UnknownElement {
                index: elem.0,
                what: "capacitance update",
            }),
        }
    }

    /// Replaces the inductance of inductor `elem` (topology untouched;
    /// any initial-condition current is preserved).
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownElement`] if `elem` is not an inductor.
    /// * [`NetError::InvalidValue`] for a non-positive or non-finite
    ///   value.
    pub fn set_inductance(&mut self, elem: ElementId, new_henries: f64) -> Result<(), NetError> {
        let e = self
            .elements
            .get_mut(elem.0)
            .ok_or(NetError::UnknownElement {
                index: elem.0,
                what: "inductance update",
            })?;
        match &mut e.kind {
            ElementKind::Inductor { henries, .. } => {
                Self::positive(&e.name, "inductance", new_henries)?;
                *henries = new_henries;
                Ok(())
            }
            _ => Err(NetError::UnknownElement {
                index: elem.0,
                what: "inductance update",
            }),
        }
    }

    /// Replaces the large-signal waveform of an independent voltage or
    /// current source (topology and AC magnitude untouched) — the
    /// stimulus-variant primitive of scenario sweeps.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownElement`] if `elem` is not an independent
    /// source.
    pub fn set_source_waveform(&mut self, elem: ElementId, new: Waveform) -> Result<(), NetError> {
        let e = self
            .elements
            .get_mut(elem.0)
            .ok_or(NetError::UnknownElement {
                index: elem.0,
                what: "waveform update",
            })?;
        match &mut e.kind {
            ElementKind::VoltageSource { wave, .. } | ElementKind::CurrentSource { wave, .. } => {
                *wave = new;
                Ok(())
            }
            _ => Err(NetError::UnknownElement {
                index: elem.0,
                what: "waveform update",
            }),
        }
    }

    /// Adds an externally controlled switch.
    ///
    /// # Errors
    ///
    /// Rejects non-positive resistances or `r_on ≥ r_off`.
    pub fn switch(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        r_on: f64,
        r_off: f64,
        initially_on: bool,
    ) -> Result<ElementId, NetError> {
        let name = name.into();
        Self::positive(&name, "on resistance", r_on)?;
        Self::positive(&name, "off resistance", r_off)?;
        if r_on >= r_off {
            return Err(NetError::InvalidValue {
                element: name,
                reason: format!("r_on ({r_on}) must be smaller than r_off ({r_off})"),
            });
        }
        self.push(Element {
            name,
            p,
            n,
            kind: ElementKind::Switch {
                r_on,
                r_off,
                initially_on,
            },
        })
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit ({} nodes, {} elements)",
            self.node_names.len(),
            self.elements.len()
        )?;
        for e in &self.elements {
            writeln!(
                f,
                "  {} ({:?}): {} -> {}",
                e.name,
                std::mem::discriminant(&e.kind),
                self.node_names[e.p.0],
                self.node_names[e.n.0]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_zero_is_ground() {
        let ckt = Circuit::new();
        assert_eq!(ckt.node_name(Circuit::GROUND), "0");
        assert!(Circuit::GROUND.is_ground());
        assert_eq!(ckt.node_count(), 1);
    }

    #[test]
    fn find_node_resolves_names() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        assert_eq!(ckt.find_node("0"), Some(Circuit::GROUND));
        assert_eq!(ckt.find_node("a"), Some(a));
        assert_eq!(ckt.find_node("out"), Some(out));
        assert_eq!(ckt.find_node("missing"), None);
    }

    #[test]
    fn invalid_values_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.resistor("R1", a, Circuit::GROUND, -5.0).is_err());
        assert!(ckt.resistor("R1", a, Circuit::GROUND, 0.0).is_err());
        assert!(ckt.capacitor("C1", a, Circuit::GROUND, f64::NAN).is_err());
        assert!(ckt
            .switch("S1", a, Circuit::GROUND, 1e6, 1.0, false)
            .is_err());
    }

    #[test]
    fn unknown_node_rejected() {
        let mut ckt = Circuit::new();
        let stale = NodeId(17);
        assert!(matches!(
            ckt.resistor("R1", stale, Circuit::GROUND, 1.0),
            Err(NetError::UnknownNode { index: 17 })
        ));
    }

    #[test]
    fn cccs_requires_branch_element() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        // A resistor has no branch current in MNA: rejected.
        assert!(ckt.cccs("F1", a, Circuit::GROUND, r, 2.0).is_err());
        let v = ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(ckt.cccs("F2", a, Circuit::GROUND, v, 2.0).is_ok());
    }

    #[test]
    fn waveform_evaluation() {
        let sine = Waveform::Sine {
            offset: 1.0,
            ampl: 2.0,
            freq: 1.0,
            phase: 0.0,
        };
        assert!((sine.value_at(0.25, &[]) - 3.0).abs() < 1e-12);
        assert!((sine.dc_value(&[]) - 1.0).abs() < 1e-12);

        let pulse = Waveform::Pulse {
            v1: 0.0,
            v2: 5.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 10.0,
        };
        assert_eq!(pulse.value_at(0.5, &[]), 0.0);
        assert!((pulse.value_at(1.5, &[]) - 2.5).abs() < 1e-12); // mid-rise
        assert_eq!(pulse.value_at(2.5, &[]), 5.0); // plateau
        assert!((pulse.value_at(4.5, &[]) - 2.5).abs() < 1e-12); // mid-fall
        assert_eq!(pulse.value_at(9.0, &[]), 0.0);
        assert_eq!(pulse.value_at(12.5, &[]), 5.0); // periodic repeat
    }

    #[test]
    fn external_waveform_reads_inputs() {
        let mut ckt = Circuit::new();
        let inp = ckt.external_input();
        let w = Waveform::External(inp);
        assert_eq!(w.value_at(0.0, &[7.5]), 7.5);
        assert_eq!(w.value_at(0.0, &[]), 0.0); // unset defaults to 0
        assert_eq!(ckt.external_input_count(), 1);
    }

    #[test]
    fn branch_current_classification() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R", a, Circuit::GROUND, 1.0).unwrap();
        ckt.inductor("L", a, Circuit::GROUND, 1.0).unwrap();
        ckt.voltage_source("V", a, Circuit::GROUND, 1.0).unwrap();
        let e = ckt.elements();
        assert!(!e[0].has_branch_current());
        assert!(e[1].has_branch_current());
        assert!(e[2].has_branch_current());
    }

    #[test]
    fn zero_rise_pulse_is_square() {
        let sq = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 0.5,
            period: 1.0,
        };
        assert_eq!(sq.value_at(0.25, &[]), 1.0);
        assert_eq!(sq.value_at(0.75, &[]), 0.0);
    }
}
