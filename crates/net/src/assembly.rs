//! Backend-independent MNA assembly: stamp sinks, stamp pointers, and
//! the dense/sparse linear-system state shared by every analysis.
//!
//! All element stamping in this crate is written against the [`Stamp`]
//! sink trait, so one assembly routine per analysis serves three uses:
//!
//! * [`DenseStamp`] writes into a dense `DMat` (the original path, still
//!   the right choice for small systems);
//! * [`PatternStamp`] records the coordinate sequence without any values
//!   — run once per (circuit, analysis) to discover the sparsity
//!   pattern, which is valid forever because the stamp-call sequence of
//!   an assembly routine is data-independent (element loops and branch
//!   structure never depend on the state or time);
//! * [`CsrStamp`] replays that sequence through **stamp pointers**:
//!   precomputed flat indices into the CSR value array, making per-step
//!   assembly a `values.fill(0)` plus indexed adds with no hashing,
//!   searching, or allocation.
//!
//! [`MnaSystem`] bundles the matrix storage, the right-hand side, the
//! cached factorization ([`ams_math::Lu`] or [`ams_math::SparseLu`] with
//! symbolic reuse) and the [`SolveStats`] counters behind one API used
//! by DC, transient, AC and noise analyses.

use crate::NetError;
use ams_math::{CsrMat, DMat, DVec, Lu, MathError, Scalar, SolveStats, SparseLu, Triplets};

/// System size at and above which [`SolverBackend::Auto`] picks the
/// sparse backend. Below it the dense factorization's cache behavior
/// wins; above it the O(n³)/O(n²) dense costs take over quickly.
pub(crate) const SPARSE_CROSSOVER: usize = 48;

/// Selects the linear-solver backend used by the network analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SolverBackend {
    /// Sparse at and above a small-system crossover (currently 48
    /// unknowns), dense below it.
    #[default]
    Auto,
    /// Always the dense `Lu` path.
    Dense,
    /// Always the sparse `SparseLu` path.
    Sparse,
}

impl SolverBackend {
    /// Whether a system of `n` unknowns should use the sparse backend.
    pub(crate) fn use_sparse(self, n: usize) -> bool {
        match self {
            SolverBackend::Auto => n >= SPARSE_CROSSOVER,
            SolverBackend::Dense => false,
            SolverBackend::Sparse => true,
        }
    }
}

/// Sink for MNA stamps: every assembly routine writes its matrix and
/// right-hand-side contributions through this trait.
pub(crate) trait Stamp<T: Scalar> {
    /// Adds `v` to matrix entry `(i, j)`.
    fn mat(&mut self, i: usize, j: usize, v: T);
    /// Adds `v` to right-hand-side entry `i`.
    fn rhs(&mut self, i: usize, v: T);
}

/// Stamps into a dense matrix and RHS vector.
pub(crate) struct DenseStamp<'a, T: Scalar> {
    pub mat: &'a mut DMat<T>,
    pub rhs: &'a mut DVec<T>,
}

impl<T: Scalar> Stamp<T> for DenseStamp<'_, T> {
    fn mat(&mut self, i: usize, j: usize, v: T) {
        self.mat[(i, j)] += v;
    }
    fn rhs(&mut self, i: usize, v: T) {
        self.rhs[i] += v;
    }
}

/// Records the matrix coordinate sequence of an assembly run (values and
/// RHS writes are discarded).
pub(crate) struct PatternStamp<'a> {
    pub coords: &'a mut Vec<(usize, usize)>,
}

impl<T: Scalar> Stamp<T> for PatternStamp<'_> {
    fn mat(&mut self, i: usize, j: usize, _v: T) {
        self.coords.push((i, j));
    }
    fn rhs(&mut self, _i: usize, _v: T) {}
}

/// Replays a recorded assembly through stamp pointers: the `k`-th matrix
/// write of the run lands at `vals[ptrs[k]]`.
pub(crate) struct CsrStamp<'a, T: Scalar> {
    pub vals: &'a mut [T],
    pub ptrs: &'a [usize],
    pub cursor: usize,
    pub rhs: &'a mut DVec<T>,
}

impl<T: Scalar> Stamp<T> for CsrStamp<'_, T> {
    fn mat(&mut self, _i: usize, _j: usize, v: T) {
        self.vals[self.ptrs[self.cursor]] += v;
        self.cursor += 1;
    }
    fn rhs(&mut self, i: usize, v: T) {
        self.rhs[i] += v;
    }
}

/// RHS-only sink (matrix writes are rejected) for routines that refresh
/// sources without touching the factored matrix.
pub(crate) struct RhsOnlyStamp<'a, T: Scalar> {
    pub rhs: &'a mut DVec<T>,
}

impl<T: Scalar> Stamp<T> for RhsOnlyStamp<'_, T> {
    fn mat(&mut self, _i: usize, _j: usize, _v: T) {
        debug_assert!(false, "matrix write through an RHS-only stamp");
    }
    fn rhs(&mut self, i: usize, v: T) {
        self.rhs[i] += v;
    }
}

// One instance per solver, always heap-backed internally — the variant
// size difference is irrelevant here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum BackendState<T: Scalar> {
    Dense {
        mat: DMat<T>,
        lu: Option<Lu<T>>,
    },
    Sparse {
        csr: CsrMat<T>,
        ptrs: Vec<usize>,
        lu: Option<SparseLu<T>>,
    },
}

/// The assembled linear system of one analysis: matrix storage (dense or
/// sparse with stamp pointers), RHS, cached factorization and counters.
///
/// The pattern is recorded once at construction; [`MnaSystem::assemble`]
/// then zeroes the values and replays the caller's assembly closure, and
/// [`MnaSystem::factor`] factors (or provably reuses / numerically
/// refactors) the result.
#[derive(Debug, Clone)]
pub(crate) struct MnaSystem<T: Scalar> {
    rhs: DVec<T>,
    backend: BackendState<T>,
    /// Values of the last factored matrix, for bitwise reuse detection.
    snapshot: Vec<T>,
    stats: SolveStats,
}

impl<T: Scalar> MnaSystem<T> {
    /// Creates the system state for `n` unknowns. When `sparse`, the
    /// `record` closure is run once against a [`PatternStamp`] to
    /// discover the sparsity pattern and resolve the stamp pointers; the
    /// same closure's stamp sequence must be replayed by every later
    /// [`MnaSystem::assemble`].
    pub fn new(n: usize, sparse: bool, record: impl FnOnce(&mut dyn Stamp<T>)) -> Self {
        let backend = if sparse {
            let mut coords = Vec::new();
            record(&mut PatternStamp {
                coords: &mut coords,
            });
            let mut t = Triplets::new(n, n);
            for &(i, j) in &coords {
                t.push(i, j, T::ZERO);
            }
            let csr = t.build();
            let ptrs = coords
                .iter()
                .map(|&(i, j)| csr.position(i, j).expect("recorded coordinate in pattern"))
                .collect();
            BackendState::Sparse {
                csr,
                ptrs,
                lu: None,
            }
        } else {
            BackendState::Dense {
                mat: DMat::zeros(n, n),
                lu: None,
            }
        };
        MnaSystem {
            rhs: DVec::zeros(n),
            backend,
            snapshot: Vec::new(),
            stats: SolveStats::default(),
        }
    }

    /// Whether this system uses the sparse backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self.backend, BackendState::Sparse { .. })
    }

    /// The accumulated solver counters.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Zeroes matrix and RHS, then runs the assembly closure against the
    /// backend's stamp sink.
    pub fn assemble(&mut self, f: impl FnOnce(&mut dyn Stamp<T>)) {
        self.rhs.fill_zero();
        match &mut self.backend {
            BackendState::Dense { mat, .. } => {
                mat.fill_zero();
                f(&mut DenseStamp {
                    mat,
                    rhs: &mut self.rhs,
                });
            }
            BackendState::Sparse { csr, ptrs, .. } => {
                csr.set_values_zero();
                let expected = ptrs.len();
                let mut st = CsrStamp {
                    vals: csr.values_mut(),
                    ptrs,
                    cursor: 0,
                    rhs: &mut self.rhs,
                };
                f(&mut st);
                debug_assert_eq!(
                    st.cursor, expected,
                    "assembly replay diverged from the recorded stamp sequence"
                );
            }
        }
    }

    /// Re-runs only the RHS part of an assembly (the factored matrix is
    /// untouched).
    pub fn assemble_rhs(&mut self, f: impl FnOnce(&mut dyn Stamp<T>)) {
        self.rhs.fill_zero();
        f(&mut RhsOnlyStamp { rhs: &mut self.rhs });
    }

    /// Factors the assembled matrix. Returns `true` when a factorization
    /// (full or numeric-refactor) actually happened, `false` when the
    /// cached factors were provably reusable (`allow_reuse` and bitwise
    /// identical values), which is counted in
    /// [`SolveStats::jacobian_reused`].
    ///
    /// On the sparse backend the first factorization performs the
    /// symbolic analysis; later ones replay it as numeric refactors,
    /// falling back to a fresh symbolic factorization only if the cached
    /// pivot sequence becomes numerically unacceptable.
    pub fn factor(&mut self, allow_reuse: bool) -> Result<bool, NetError> {
        match &mut self.backend {
            BackendState::Dense { mat, lu } => {
                if allow_reuse && lu.is_some() && self.snapshot.as_slice() == mat.as_slice() {
                    self.stats.jacobian_reused += 1;
                    return Ok(false);
                }
                *lu = Some(Lu::factor(mat)?);
                self.snapshot.clear();
                self.snapshot.extend_from_slice(mat.as_slice());
                Ok(true)
            }
            BackendState::Sparse { csr, lu, .. } => {
                if allow_reuse && lu.is_some() && self.snapshot.as_slice() == csr.values() {
                    self.stats.jacobian_reused += 1;
                    return Ok(false);
                }
                let refactored = match lu.as_mut() {
                    Some(f) => match f.refactor(csr) {
                        Ok(()) => true,
                        Err(MathError::SingularMatrix { .. }) => false,
                        Err(e) => return Err(e.into()),
                    },
                    None => false,
                };
                if refactored {
                    self.stats.numeric_refactors += 1;
                } else {
                    let f = SparseLu::factor(csr)?;
                    self.stats.symbolic_analyses += 1;
                    self.stats.nnz = self.stats.nnz.max(csr.nnz() as u64);
                    self.stats.fill_in = self.stats.fill_in.max(f.fill_in() as u64);
                    *lu = Some(f);
                }
                self.snapshot.clear();
                self.snapshot.extend_from_slice(csr.values());
                Ok(true)
            }
        }
    }

    /// A clone of the cached sparse factorization — `None` on the dense
    /// backend or before the first successful [`MnaSystem::factor`].
    pub fn export_sparse_factor(&self) -> Option<SparseLu<T>> {
        match &self.backend {
            BackendState::Sparse { lu, .. } => lu.clone(),
            BackendState::Dense { .. } => None,
        }
    }

    /// Seeds the sparse backend with a factorization computed on a
    /// structurally identical sibling system: the next
    /// [`MnaSystem::factor`] replays its symbolic analysis as a numeric
    /// refactor instead of running a fresh one. Returns `false` (and
    /// changes nothing) on the dense backend or when the imported
    /// pattern does not match this system's matrix.
    pub fn import_sparse_factor(&mut self, imported: SparseLu<T>) -> bool {
        match &mut self.backend {
            BackendState::Sparse { csr, lu, .. } if imported.matches_pattern(csr) => {
                *lu = Some(imported);
                // The imported numeric values are foreign: forget the
                // snapshot so bitwise reuse cannot trigger spuriously.
                self.snapshot.clear();
                true
            }
            _ => false,
        }
    }

    /// Solves against the assembled RHS.
    pub fn solve_rhs(&self) -> Result<DVec<T>, NetError> {
        self.solve(&self.rhs)
    }

    /// Solves `A·x = b` with the cached factorization.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`MnaSystem::factor`].
    pub fn solve(&self, b: &DVec<T>) -> Result<DVec<T>, NetError> {
        match &self.backend {
            BackendState::Dense { lu, .. } => {
                Ok(lu.as_ref().expect("factor before solve").solve(b)?)
            }
            BackendState::Sparse { lu, .. } => {
                Ok(lu.as_ref().expect("factor before solve").solve(b)?)
            }
        }
    }

    /// Solves `Aᵀ·y = b` (the adjoint system of noise analysis). The
    /// sparse backend reuses the cached factors directly; the dense
    /// backend factors the explicit transpose.
    ///
    /// # Panics
    ///
    /// Panics if called before a successful [`MnaSystem::factor`] (the
    /// matrix values are those of the last [`MnaSystem::assemble`]).
    pub fn solve_transpose(&self, b: &DVec<T>) -> Result<DVec<T>, NetError> {
        match &self.backend {
            BackendState::Dense { mat, .. } => Ok(Lu::factor(&mat.transpose())?.solve(b)?),
            BackendState::Sparse { lu, .. } => Ok(lu
                .as_ref()
                .expect("factor before solve_transpose")
                .solve_transpose(b)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_assembly(st: &mut dyn Stamp<f64>, g: f64) {
        // 2×2 conductance + a source, written twice to exercise the
        // duplicate-summing of stamp pointers.
        st.mat(0, 0, g);
        st.mat(1, 1, g);
        st.mat(0, 1, -g);
        st.mat(1, 0, -g);
        st.mat(0, 0, 1.0);
        st.rhs(0, 1.0);
    }

    #[test]
    fn dense_and_sparse_agree() {
        let mut d = MnaSystem::<f64>::new(2, false, |st| toy_assembly(st, 2.0));
        let mut s = MnaSystem::<f64>::new(2, true, |st| toy_assembly(st, 2.0));
        assert!(!d.is_sparse() && s.is_sparse());
        d.assemble(|st| toy_assembly(st, 2.0));
        s.assemble(|st| toy_assembly(st, 2.0));
        assert!(d.factor(true).unwrap());
        assert!(s.factor(true).unwrap());
        let xd = d.solve_rhs().unwrap();
        let xs = s.solve_rhs().unwrap();
        assert!((xd[0] - xs[0]).abs() < 1e-14 && (xd[1] - xs[1]).abs() < 1e-14);
    }

    #[test]
    fn factor_reuse_and_refactor_counters() {
        let mut s = MnaSystem::<f64>::new(2, true, |st| toy_assembly(st, 2.0));
        s.assemble(|st| toy_assembly(st, 2.0));
        assert!(s.factor(true).unwrap());
        assert_eq!(s.stats().symbolic_analyses, 1);
        // Identical reassembly: factor is provably reusable.
        s.assemble(|st| toy_assembly(st, 2.0));
        assert!(!s.factor(true).unwrap());
        assert_eq!(s.stats().jacobian_reused, 1);
        // Same values but reuse disallowed: numeric refactor.
        s.assemble(|st| toy_assembly(st, 2.0));
        assert!(s.factor(false).unwrap());
        assert_eq!(s.stats().numeric_refactors, 1);
        // New values: numeric refactor, no new symbolic analysis.
        s.assemble(|st| toy_assembly(st, 5.0));
        assert!(s.factor(true).unwrap());
        assert_eq!(s.stats().numeric_refactors, 2);
        assert_eq!(s.stats().symbolic_analyses, 1);
    }

    #[test]
    fn imported_factor_turns_first_factor_into_a_refactor() {
        let mut first = MnaSystem::<f64>::new(2, true, |st| toy_assembly(st, 2.0));
        first.assemble(|st| toy_assembly(st, 2.0));
        first.factor(true).unwrap();
        assert_eq!(first.stats().symbolic_analyses, 1);
        let exported = first.export_sparse_factor().expect("sparse factor");

        // A sibling system with the same pattern but different values:
        // adopting the export replaces its symbolic analysis with a
        // numeric refactor.
        let mut sib = MnaSystem::<f64>::new(2, true, |st| toy_assembly(st, 7.0));
        assert!(sib.import_sparse_factor(exported));
        sib.assemble(|st| toy_assembly(st, 7.0));
        sib.factor(true).unwrap();
        assert_eq!(sib.stats().symbolic_analyses, 0);
        assert_eq!(sib.stats().numeric_refactors, 1);
        let x = sib.solve_rhs().unwrap();
        // Reference solution from an independent dense system.
        let mut d = MnaSystem::<f64>::new(2, false, |st| toy_assembly(st, 7.0));
        d.assemble(|st| toy_assembly(st, 7.0));
        d.factor(true).unwrap();
        let xd = d.solve_rhs().unwrap();
        assert!((x[0] - xd[0]).abs() < 1e-14 && (x[1] - xd[1]).abs() < 1e-14);
    }

    #[test]
    fn import_rejects_dense_backend_and_foreign_patterns() {
        let mut sparse = MnaSystem::<f64>::new(2, true, |st| toy_assembly(st, 2.0));
        sparse.assemble(|st| toy_assembly(st, 2.0));
        sparse.factor(true).unwrap();
        let exported = sparse.export_sparse_factor().unwrap();

        let mut dense = MnaSystem::<f64>::new(2, false, |st| toy_assembly(st, 2.0));
        assert!(dense.export_sparse_factor().is_none());
        assert!(!dense.import_sparse_factor(exported.clone()));

        // Different pattern (3 unknowns): rejected, fresh analysis runs.
        let tri = |st: &mut dyn Stamp<f64>| {
            st.mat(0, 0, 1.0);
            st.mat(1, 1, 1.0);
            st.mat(2, 2, 1.0);
            st.rhs(0, 1.0);
        };
        let mut other = MnaSystem::<f64>::new(3, true, tri);
        assert!(!other.import_sparse_factor(exported));
        other.assemble(tri);
        other.factor(true).unwrap();
        assert_eq!(other.stats().symbolic_analyses, 1);
    }

    #[test]
    fn transpose_solve_matches_between_backends() {
        let asym = |st: &mut dyn Stamp<f64>| {
            st.mat(0, 0, 2.0);
            st.mat(0, 1, 1.0);
            st.mat(1, 1, 3.0);
        };
        let mut d = MnaSystem::<f64>::new(2, false, asym);
        let mut s = MnaSystem::<f64>::new(2, true, asym);
        d.assemble(asym);
        s.assemble(asym);
        d.factor(true).unwrap();
        s.factor(true).unwrap();
        let b = DVec::from(vec![1.0, 1.0]);
        let yd = d.solve_transpose(&b).unwrap();
        let ys = s.solve_transpose(&b).unwrap();
        assert!((yd[0] - ys[0]).abs() < 1e-14 && (yd[1] - ys[1]).abs() < 1e-14);
    }

    #[test]
    fn auto_backend_crossover() {
        assert!(!SolverBackend::Auto.use_sparse(SPARSE_CROSSOVER - 1));
        assert!(SolverBackend::Auto.use_sparse(SPARSE_CROSSOVER));
        assert!(!SolverBackend::Dense.use_sparse(10_000));
        assert!(SolverBackend::Sparse.use_sparse(2));
    }
}
