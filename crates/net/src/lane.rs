//! Lane-bundled transient analysis: `K` parameter corners of one
//! topology, simulated in lockstep per instruction stream.
//!
//! [`LaneTransientSolver`] is the batched twin of
//! [`TransientSolver`](crate::TransientSolver): it takes `K`
//! *topology-identical* circuits (same nodes, same element kinds and
//! connectivity — only parameter values may differ), packs every device
//! parameter into an [`F64xK`] lane bundle once at construction, and
//! then runs the ordinary MNA machinery — `PatternStamp`/`CsrStamp`
//! assembly, `SparseLu` numeric refactor, triangular solves, Newton —
//! generically over the bundle scalar. One assembly pass stamps all `K`
//! corners; one refactor+solve advances all `K` waveforms.
//!
//! # Semantics vs. the scalar solver
//!
//! * **Pivoting.** The sparse pivot *sequence* is pattern-determined
//!   and shared by all lanes (it is the scalar symbolic factor's, when
//!   adopted via [`LaneTransientSolver::adopt_scalar_factor`]). Pivot
//!   acceptance guards use `modulus` = max across live lanes: a pivot
//!   stands while at least one lane supports it, and a refactor fails
//!   ([`NetError::Singular`](crate::NetError)) only when *every* lane
//!   has gone numerically dead at that pivot.
//! * **Newton.** Convergence is checked per lane; a lane whose iterate
//!   goes non-finite is masked out (its solution becomes NaN) instead
//!   of failing the bundle. The step errors only when no live lane
//!   converges. Live lanes iterate until *all* of them converge, so a
//!   hard corner can add iterations to easy corners — this is the
//!   documented ≤1e-9 deviation source vs. scalar runs (same fixed
//!   point, different iteration count).
//! * **Step control.** [`LaneTransientSolver::run_adaptive`] computes
//!   the local-truncation-error estimate per lane and accepts on the
//!   *maximum* over live lanes — equivalently, the shared step is the
//!   minimum of the per-lane desired steps. Per-lane accept masks fall
//!   out of divergence masking: dead lanes neither veto nor shrink the
//!   step.
//! * **Divergence isolation.** Lanewise arithmetic never mixes lanes,
//!   so a NaN corner stays confined to its lane by construction; its
//!   metrics surface as NaN in the sweep report, exactly like a failed
//!   scalar scenario.

use crate::assembly::{MnaSystem, SolverBackend, Stamp};
use crate::dcop::{diode_iv, DcOptions, GMIN};
use crate::devices::nmos_linearize;
use crate::mna::{
    stamp_branch_kcl, stamp_branch_voltage, stamp_conductance, stamp_current, stamp_vccs, MnaLayout,
};
use crate::transient::{AdaptiveOptions, IntegrationMethod, SymbolicFactor, TransientStats};
use crate::{Circuit, ElementId, ElementKind, NetError, NodeId};
use ams_math::lanes::F64xK;
use ams_math::{DVec, Scalar, SparseLu};
use ams_scope::{SpanKind, TraceEvent, Tracer};

/// Seconds → femtoseconds, saturating (the tracer's time base).
#[inline]
fn fs(t: f64) -> u64 {
    (t * 1e15) as u64
}

#[derive(Debug, Clone, Copy)]
struct LaneEnergyState<const K: usize> {
    v: F64xK<K>,
    i: F64xK<K>,
}

impl<const K: usize> Default for LaneEnergyState<K> {
    fn default() -> Self {
        LaneEnergyState {
            v: F64xK::ZERO,
            i: F64xK::ZERO,
        }
    }
}

#[derive(Debug, Clone)]
struct LaneSnapshot<const K: usize> {
    x: DVec<F64xK<K>>,
    time: f64,
    state: Vec<LaneEnergyState<K>>,
    force_be: u32,
    active: [bool; K],
}

/// Everything the linear-path system matrix depends on: step size,
/// effective integration rule and switch states (mirrors the scalar
/// solver's factor key).
#[derive(Debug, Clone, PartialEq, Eq)]
struct LaneFactorKey {
    h_bits: u64,
    be: bool,
    switches: Vec<bool>,
}

/// An opaque symbolic sparse-LU analysis over the lane-bundle scalar,
/// exported by one [`LaneTransientSolver`] and adoptable by bundles
/// over value-variants of the same topology — the lane-mode counterpart
/// of [`SymbolicFactor`].
#[derive(Debug, Clone)]
pub struct LaneSymbolicFactor<const K: usize>(SparseLu<F64xK<K>>);

impl<const K: usize> LaneSymbolicFactor<K> {
    /// Dimension of the factored system (number of MNA unknowns).
    pub fn dim(&self) -> usize {
        self.0.dim()
    }

    /// Estimated resident size in bytes; value arrays are charged at
    /// the full bundle width (`K × 8` bytes per nonzero), so byte
    /// budgets see lane factors at their true size.
    pub fn approx_bytes(&self) -> usize {
        self.0.approx_bytes()
    }
}

/// A read-only view of one lane of a [`LaneTransientSolver`], exposing
/// the same probe surface as the scalar solver (`time`, `voltage`,
/// `current`). Sweep observers written against [`ScenarioProbe`] work
/// unchanged in scalar and lane mode.
#[derive(Clone, Copy)]
pub struct LaneView<'a, const K: usize> {
    solver: &'a LaneTransientSolver<K>,
    lane: usize,
}

impl<const K: usize> LaneView<'_, K> {
    /// The lane index this view reads.
    pub fn lane(&self) -> usize {
        self.lane
    }
}

/// The probe surface shared by the scalar [`TransientSolver`]
/// (crate::TransientSolver) and a [`LaneView`] of a bundled solver:
/// what a sweep's metric-extraction closure is allowed to see after
/// each accepted step.
pub trait ScenarioProbe {
    /// Current simulation time in seconds.
    fn time(&self) -> f64;

    /// The voltage of a node at the current time.
    fn voltage(&self, node: NodeId) -> f64;

    /// The current through an element at the current time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownElement`] for kinds without a
    /// computable branch current.
    fn current(&self, elem: ElementId) -> Result<f64, NetError>;
}

impl ScenarioProbe for crate::TransientSolver {
    fn time(&self) -> f64 {
        crate::TransientSolver::time(self)
    }

    fn voltage(&self, node: NodeId) -> f64 {
        crate::TransientSolver::voltage(self, node)
    }

    fn current(&self, elem: ElementId) -> Result<f64, NetError> {
        crate::TransientSolver::current(self, elem)
    }
}

impl<const K: usize> ScenarioProbe for LaneView<'_, K> {
    fn time(&self) -> f64 {
        self.solver.time()
    }

    fn voltage(&self, node: NodeId) -> f64 {
        self.solver.voltage_lane(node, self.lane)
    }

    fn current(&self, elem: ElementId) -> Result<f64, NetError> {
        self.solver.current_lane(elem, self.lane)
    }
}

/// A stepping transient solver over `K` topology-identical circuits.
///
/// # Example
///
/// Four RC charging curves with different resistors, one instruction
/// stream:
///
/// ```
/// use ams_net::{Circuit, IntegrationMethod, LaneTransientSolver};
///
/// # fn main() -> Result<(), ams_net::NetError> {
/// let build = |r: f64| -> Result<Circuit, ams_net::NetError> {
///     let mut ckt = Circuit::new();
///     let a = ckt.node("a");
///     let out = ckt.node("out");
///     ckt.voltage_source("V1", a, Circuit::GROUND, 1.0)?;
///     ckt.resistor("R1", a, out, r)?;
///     ckt.capacitor_ic("C1", out, Circuit::GROUND, 1e-6, 0.0)?;
///     Ok(ckt)
/// };
/// let circuits: Vec<Circuit> = [0.5e3, 1e3, 2e3, 4e3]
///     .iter()
///     .map(|&r| build(r))
///     .collect::<Result<_, _>>()?;
/// let mut tr =
///     LaneTransientSolver::<4>::new(&circuits, IntegrationMethod::Trapezoidal)?;
/// tr.initialize_with_ic()?;
/// for _ in 0..1000 {
///     tr.step(1e-6)?; // 1 ms total
/// }
/// let out = circuits[0].nodes().nth(2).unwrap();
/// // Lane 1 is the τ = 1 ms circuit: v = 1 − e⁻¹ after one τ.
/// let expected = 1.0 - (-1.0f64).exp();
/// assert!((tr.voltage_lane(out, 1) - expected).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LaneTransientSolver<const K: usize> {
    /// The K lane circuits (lane l's parameters and waveforms).
    circuits: Vec<Circuit>,
    layout: MnaLayout,
    method: IntegrationMethod,
    x: DVec<F64xK<K>>,
    time: f64,
    /// Per-lane external inputs, lane-major (`ext[l][input]`) so each
    /// lane's slice feeds `Waveform::value_at` directly.
    ext: Vec<Vec<f64>>,
    /// Switch states are topology-level events, shared by all lanes.
    switches: Vec<bool>,
    state: Vec<LaneEnergyState<K>>,
    nonlinear: bool,
    force_be: u32,
    sys: Option<MnaSystem<F64xK<K>>>,
    factor_key: Option<LaneFactorKey>,
    /// Linear-solver backend selection (dense / sparse / size-based).
    pub backend: SolverBackend,
    /// Set to disable factorization reuse (for benchmarking).
    pub reuse_factorization: bool,
    symbolic_hint: Option<SparseLu<F64xK<K>>>,
    /// Per-lane liveness: lanes drop out on divergence instead of
    /// failing the bundle.
    active: [bool; K],
    stats: TransientStats,
    initialized: bool,
    tracer: Tracer,
}

impl<const K: usize> LaneTransientSolver<K> {
    /// Creates a bundled solver over `circuits[0..K]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidValue`] unless exactly `K` circuits
    /// are given and they are topology-identical: same node and element
    /// counts, and element-for-element the same kind, terminals and
    /// control references. Parameter *values* (R/L/C, gains, waveform
    /// shapes, initial conditions) are free per lane.
    pub fn new(circuits: &[Circuit], method: IntegrationMethod) -> Result<Self, NetError> {
        if circuits.len() != K {
            return Err(NetError::InvalidValue {
                element: "lane bundle".to_string(),
                reason: format!("expected {K} circuits, got {}", circuits.len()),
            });
        }
        check_topology_identical(circuits)?;
        let base = &circuits[0];
        let layout = MnaLayout::build(base);
        let nonlinear = base.elements().iter().any(|e| e.is_nonlinear());
        Ok(LaneTransientSolver {
            circuits: circuits.to_vec(),
            layout: layout.clone(),
            method,
            x: DVec::zeros(layout.n_unknowns),
            time: 0.0,
            ext: vec![vec![0.0; base.external_input_count()]; K],
            switches: base.initial_switch_states(),
            state: vec![LaneEnergyState::default(); base.element_count()],
            nonlinear,
            force_be: 0,
            sys: None,
            factor_key: None,
            backend: SolverBackend::default(),
            reuse_factorization: true,
            symbolic_hint: None,
            active: [true; K],
            stats: TransientStats::default(),
            initialized: false,
            tracer: Tracer::off(),
        })
    }

    /// Enables or disables span tracing (same spans as the scalar
    /// solver: MNA assemble/factor/solve, Newton instants, step
    /// accept/reject). Disabled, every hook costs a single branch.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Drains the recorded trace events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take_events()
    }

    /// Current simulation time in seconds (shared by all lanes).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The lane width `K`.
    pub fn lanes(&self) -> usize {
        K
    }

    /// Which lanes are still live (not masked out by divergence).
    pub fn active_lanes(&self) -> [bool; K] {
        self.active
    }

    /// A probe view of lane `l`.
    ///
    /// # Panics
    ///
    /// Panics when `l >= K`.
    pub fn lane_view(&self, l: usize) -> LaneView<'_, K> {
        assert!(l < K, "lane out of range");
        LaneView {
            solver: self,
            lane: l,
        }
    }

    /// Accumulated statistics. Counters are per *bundle*: one step or
    /// factorization advances all `K` lanes at once.
    pub fn stats(&self) -> TransientStats {
        let mut s = self.stats;
        if let Some(sys) = &self.sys {
            s.solve.merge(&sys.stats());
        }
        s
    }

    /// Extracts the lane-width sparse symbolic analysis of this
    /// solver's transient system, if one has been computed.
    pub fn symbolic_factor(&self) -> Option<LaneSymbolicFactor<K>> {
        self.sys
            .as_ref()
            .and_then(|s| s.export_sparse_factor())
            .map(LaneSymbolicFactor)
    }

    /// Adopts a lane-width symbolic analysis from a bundle over the
    /// same topology: the first sparse factorization becomes a numeric
    /// refactor.
    pub fn adopt_symbolic_factor(&mut self, hint: &LaneSymbolicFactor<K>) {
        self.symbolic_hint = Some(hint.0.clone());
    }

    /// Adopts a *scalar* symbolic analysis (from a scalar
    /// [`TransientSolver`](crate::TransientSolver) over the same
    /// topology), widening it to the bundle scalar. The pivot sequence
    /// is pattern-determined, so each lane replays exactly the scalar
    /// factor's elimination — the op-for-op basis of lane-vs-scalar
    /// parity.
    pub fn adopt_scalar_factor(&mut self, hint: &SymbolicFactor) {
        self.symbolic_hint = Some(hint.inner().cast_symbolic::<F64xK<K>>());
    }

    /// Sets an external source input of one lane (takes effect from the
    /// next step).
    ///
    /// # Panics
    ///
    /// Panics if the lane or handle is out of range.
    pub fn set_input_lane(&mut self, input: crate::InputId, lane: usize, value: f64) {
        self.ext[lane][input.index()] = value;
    }

    /// Sets a switch state for **all** lanes (switch events are
    /// topology-level); the next step uses backward Euler once.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownElement`] if `elem` is not a switch.
    pub fn set_switch(&mut self, elem: ElementId, on: bool) -> Result<(), NetError> {
        match self.circuits[0]
            .elements()
            .get(elem.index())
            .map(|e| &e.kind)
        {
            Some(ElementKind::Switch { .. }) => {
                if self.switches[elem.index()] != on {
                    self.switches[elem.index()] = on;
                    self.force_be = 1;
                    self.factor_key = None;
                }
                Ok(())
            }
            _ => Err(NetError::UnknownElement {
                index: elem.index(),
                what: "switch",
            }),
        }
    }

    /// The voltage of a node in lane `l` at the current time.
    ///
    /// # Panics
    ///
    /// Panics for nodes outside the circuit or `l >= K`.
    pub fn voltage_lane(&self, node: NodeId, l: usize) -> f64 {
        assert!(node.index() < self.layout.n_nodes, "node out of range");
        match self.layout.node_var(node) {
            None => 0.0,
            Some(i) => self.x[i].lane(l),
        }
    }

    /// The current through an element in lane `l` at the current time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownElement`] for unsupported kinds.
    pub fn current_lane(&self, elem: ElementId, l: usize) -> Result<f64, NetError> {
        let e = self.circuits[l]
            .elements()
            .get(elem.index())
            .ok_or(NetError::UnknownElement {
                index: elem.index(),
                what: "current",
            })?;
        if let Some(b) = self.layout.branch_var(elem) {
            return Ok(self.x[b].lane(l));
        }
        let v = self.voltage_lane(e.p, l) - self.voltage_lane(e.n, l);
        match &e.kind {
            ElementKind::Resistor { ohms } => Ok(v / ohms),
            ElementKind::Capacitor { .. } => Ok(self.state[elem.index()].i.lane(l)),
            ElementKind::Switch { r_on, r_off, .. } => {
                let r = if self.switches[elem.index()] {
                    *r_on
                } else {
                    *r_off
                };
                Ok(v / r)
            }
            ElementKind::Diode { is_sat, n } => Ok(diode_iv(v, *is_sat, *n).0 + GMIN * v),
            ElementKind::Nmos {
                gate,
                kp,
                vt,
                lambda,
            } => {
                let vg = self.voltage_lane(*gate, l);
                let vd = self.voltage_lane(e.p, l);
                let vs = self.voltage_lane(e.n, l);
                Ok(nmos_linearize(vg, vd, vs, *kp, *vt, *lambda).id + GMIN * v)
            }
            _ => Err(NetError::UnknownElement {
                index: elem.index(),
                what: "computable branch current",
            }),
        }
    }

    /// Initializes every lane from its own DC operating point (`K`
    /// scalar DC solves — paid once per run, amortized over every
    /// bundled step), honoring element initial conditions where given.
    ///
    /// # Errors
    ///
    /// Propagates DC solve failures (any lane failing fails
    /// initialization: a consistent start is a precondition, not a
    /// per-lane property).
    pub fn initialize_dc(&mut self) -> Result<(), NetError> {
        let mut x: DVec<F64xK<K>> = DVec::zeros(self.layout.n_unknowns);
        for l in 0..K {
            let op = self.circuits[l].dc_operating_point_with(&self.ext[l], &self.switches)?;
            for i in 0..self.layout.n_unknowns {
                x[i].set_lane(l, op.x[i]);
            }
        }
        self.x = x;
        self.seed_state_from_solution();
        self.time = 0.0;
        self.initialized = true;
        self.factor_key = None;
        self.active = [true; K];
        Ok(())
    }

    /// Initializes using element initial conditions only (SPICE `UIC`),
    /// per lane.
    ///
    /// # Errors
    ///
    /// Infallible today; reserved for future validation.
    pub fn initialize_with_ic(&mut self) -> Result<(), NetError> {
        self.x = DVec::zeros(self.layout.n_unknowns);
        for idx in 0..self.state.len() {
            let mut st = LaneEnergyState::default();
            let mut is_storage = false;
            for l in 0..K {
                match self.circuits[l].elements()[idx].kind {
                    ElementKind::Capacitor { ic, .. } => {
                        is_storage = true;
                        st.v.set_lane(l, ic.unwrap_or(0.0));
                    }
                    ElementKind::Inductor { ic, .. } => {
                        is_storage = true;
                        st.i.set_lane(l, ic.unwrap_or(0.0));
                    }
                    _ => {}
                }
            }
            if is_storage {
                self.state[idx] = st;
            }
        }
        self.time = 0.0;
        self.force_be = 1; // first step from possibly inconsistent state
        self.initialized = true;
        self.factor_key = None;
        self.active = [true; K];
        Ok(())
    }

    fn seed_state_from_solution(&mut self) {
        for idx in 0..self.state.len() {
            let e_p = self.circuits[0].elements()[idx].p;
            let e_n = self.circuits[0].elements()[idx].n;
            match self.circuits[0].elements()[idx].kind {
                ElementKind::Capacitor { .. } => {
                    let v_sol = self.branch_voltage(e_p, e_n);
                    let mut v = v_sol;
                    for l in 0..K {
                        if let ElementKind::Capacitor { ic: Some(ic), .. } =
                            self.circuits[l].elements()[idx].kind
                        {
                            v.set_lane(l, ic);
                            self.force_be = 1;
                        }
                    }
                    self.state[idx] = LaneEnergyState { v, i: F64xK::ZERO };
                }
                ElementKind::Inductor { .. } => {
                    let i_sol = self
                        .layout
                        .branch_var(ElementId(idx))
                        .map_or(F64xK::ZERO, |b| self.x[b]);
                    let mut i = i_sol;
                    for l in 0..K {
                        if let ElementKind::Inductor { ic: Some(ic), .. } =
                            self.circuits[l].elements()[idx].kind
                        {
                            i.set_lane(l, ic);
                            self.force_be = 1;
                        }
                    }
                    self.state[idx] = LaneEnergyState { v: F64xK::ZERO, i };
                }
                _ => {}
            }
        }
    }

    fn branch_voltage(&self, p: NodeId, n: NodeId) -> F64xK<K> {
        let vp = self.layout.node_var(p).map_or(F64xK::ZERO, |i| self.x[i]);
        let vn = self.layout.node_var(n).map_or(F64xK::ZERO, |i| self.x[i]);
        vp - vn
    }

    /// Kills lane `l`: marks it inactive and poisons its solution and
    /// history with NaN so every later probe reads NaN.
    fn kill_lane(&mut self, l: usize) {
        self.active[l] = false;
        for i in 0..self.x.len() {
            self.x[i].set_lane(l, f64::NAN);
        }
        for st in &mut self.state {
            st.v.set_lane(l, f64::NAN);
            st.i.set_lane(l, f64::NAN);
        }
    }

    /// Advances all live lanes by one step of size `h` seconds.
    ///
    /// # Errors
    ///
    /// * [`NetError::InvalidValue`] for a non-positive step.
    /// * [`NetError::NoConvergence`] when the Newton loop leaves no
    ///   live lane converged (single-lane divergence only masks).
    /// * [`NetError::Singular`](crate::NetError) when every lane is
    ///   numerically dead at some pivot.
    pub fn step(&mut self, h: f64) -> Result<(), NetError> {
        if !self.initialized {
            self.initialize_dc()?;
        }
        if h <= 0.0 || !h.is_finite() {
            return Err(NetError::InvalidValue {
                element: "timestep".to_string(),
                reason: format!("step must be positive and finite, got {h}"),
            });
        }
        let be = self.force_be > 0 || matches!(self.method, IntegrationMethod::BackwardEuler);
        let t_new = self.time + h;
        let n = self.layout.n_unknowns;

        let x_new = if self.nonlinear {
            // Newton loop with per-lane convergence + divergence masks.
            let mut x_iter = self.x.clone();
            let opts = DcOptions::default();
            let mut done = [false; K];
            let mut iters = 0;
            for _ in 0..opts.max_iter {
                iters += 1;
                self.assemble_and_factor(&x_iter, t_new, h, be, self.reuse_factorization)?;
                if self.tracer.is_enabled() {
                    self.tracer.begin(SpanKind::MnaSolve, fs(t_new));
                }
                let solved = self
                    .sys
                    .as_ref()
                    .expect("system just assembled")
                    .solve_rhs();
                if self.tracer.is_enabled() {
                    self.tracer.end(SpanKind::MnaSolve, fs(t_new));
                }
                let x_next = solved?;
                for (l, done_l) in done.iter_mut().enumerate() {
                    if !self.active[l] {
                        continue;
                    }
                    let mut lane_done = true;
                    let mut lane_finite = true;
                    for i in 0..n {
                        let a = x_next[i].lane(l);
                        let b = x_iter[i].lane(l);
                        if !a.is_finite() {
                            lane_finite = false;
                            break;
                        }
                        let d = (a - b).abs();
                        if d > opts.v_tol + opts.rel_tol * a.abs().max(b.abs()) {
                            lane_done = false;
                        }
                    }
                    if !lane_finite {
                        // Divergence masking: the corner dies, the
                        // bundle lives.
                        self.kill_lane(l);
                    } else {
                        *done_l = lane_done;
                    }
                }
                x_iter = x_next;
                // Re-poison dead lanes so NaN keeps flowing through the
                // next assembly instead of a stale finite iterate.
                for l in 0..K {
                    if !self.active[l] {
                        for i in 0..n {
                            x_iter[i].set_lane(l, f64::NAN);
                        }
                    }
                }
                if (0..K).all(|l| !self.active[l] || done[l]) {
                    break;
                }
            }
            self.stats.newton_iterations += iters;
            if self.tracer.is_enabled() {
                self.tracer
                    .instant(SpanKind::NewtonIteration, fs(t_new), iters);
            }
            // Lanes that never converged are masked out; the step fails
            // only when that leaves no live lane.
            for (l, &done_l) in done.iter().enumerate() {
                if self.active[l] && !done_l {
                    self.kill_lane(l);
                    for i in 0..n {
                        x_iter[i].set_lane(l, f64::NAN);
                    }
                }
            }
            if !self.active.iter().any(|&a| a) {
                return Err(NetError::NoConvergence {
                    analysis: "lane transient step",
                    iterations: iters as usize,
                });
            }
            x_iter
        } else {
            // Linear fast path: matrix depends only on (h, method,
            // switches); only the RHS is rebuilt per step.
            let key = LaneFactorKey {
                h_bits: h.to_bits(),
                be,
                switches: self.switches.clone(),
            };
            let cache_ok = self.reuse_factorization
                && self.factor_key.as_ref() == Some(&key)
                && self
                    .sys
                    .as_ref()
                    .is_some_and(|s| s.is_sparse() == self.backend.use_sparse(n));
            if !cache_ok {
                let x = self.x.clone();
                self.assemble_and_factor(&x, t_new, h, be, self.reuse_factorization)?;
                self.factor_key = Some(key);
            }
            let mut sys = self.sys.take().expect("system just ensured");
            sys.assemble_rhs(|st| self.assemble_rhs_only(st, t_new, h, be));
            if self.tracer.is_enabled() {
                self.tracer.begin(SpanKind::MnaSolve, fs(t_new));
            }
            let solved = sys.solve_rhs();
            if self.tracer.is_enabled() {
                self.tracer.end(SpanKind::MnaSolve, fs(t_new));
            }
            self.sys = Some(sys);
            self.stats.newton_iterations += 1;
            solved?
        };

        self.commit_step(x_new, t_new, h, be);
        Ok(())
    }

    fn assemble_and_factor(
        &mut self,
        x: &DVec<F64xK<K>>,
        t_new: f64,
        h: f64,
        be: bool,
        allow_reuse: bool,
    ) -> Result<(), NetError> {
        let n = self.layout.n_unknowns;
        let use_sparse = self.backend.use_sparse(n);
        let traced = self.tracer.is_enabled();
        if traced {
            self.tracer.begin(SpanKind::MnaAssemble, fs(t_new));
        }
        let mut sys = match self.sys.take() {
            Some(s) if s.is_sparse() == use_sparse => s,
            other => {
                if let Some(old) = other {
                    self.stats.solve.merge(&old.stats());
                }
                let mut fresh =
                    MnaSystem::new(n, use_sparse, |st| self.assemble(st, x, t_new, h, be));
                if let Some(hint) = self.symbolic_hint.take() {
                    fresh.import_sparse_factor(hint);
                }
                fresh
            }
        };
        sys.assemble(|st| self.assemble(st, x, t_new, h, be));
        if traced {
            self.tracer.end(SpanKind::MnaAssemble, fs(t_new));
            self.tracer.begin(SpanKind::MnaFactor, fs(t_new));
        }
        let factored = sys.factor(allow_reuse);
        if traced {
            self.tracer.end(SpanKind::MnaFactor, fs(t_new));
        }
        self.sys = Some(sys);
        if factored? {
            self.stats.factorizations += 1;
        }
        Ok(())
    }

    fn commit_step(&mut self, x_new: DVec<F64xK<K>>, t_new: f64, h: f64, be: bool) {
        self.x = x_new;
        let hh = F64xK::<K>::splat(h);
        let two = F64xK::<K>::splat(2.0);
        for idx in 0..self.state.len() {
            let e_p = self.circuits[0].elements()[idx].p;
            let e_n = self.circuits[0].elements()[idx].n;
            match self.circuits[0].elements()[idx].kind {
                ElementKind::Capacitor { .. } => {
                    let c = self.lane_param(idx, |k| match k {
                        ElementKind::Capacitor { farads, .. } => *farads,
                        _ => unreachable!(),
                    });
                    let v_new = self.branch_voltage(e_p, e_n);
                    let st = self.state[idx];
                    let i_new = if be {
                        c / hh * (v_new - st.v)
                    } else {
                        two * c / hh * (v_new - st.v) - st.i
                    };
                    self.state[idx] = LaneEnergyState { v: v_new, i: i_new };
                }
                ElementKind::Inductor { .. } => {
                    let b = self
                        .layout
                        .branch_var(ElementId(idx))
                        .expect("inductor branch");
                    let i_new = self.x[b];
                    let v_new = self.branch_voltage(e_p, e_n);
                    self.state[idx] = LaneEnergyState { v: v_new, i: i_new };
                }
                _ => {}
            }
        }
        self.time = t_new;
        self.stats.steps += 1;
        if self.force_be > 0 {
            self.force_be -= 1;
        }
    }

    /// Gathers one scalar parameter of element `idx` across the `K`
    /// lane circuits into a bundle — the "per-lane device parameters in
    /// one pass" primitive of lane assembly.
    #[inline]
    fn lane_param(&self, idx: usize, f: impl Fn(&ElementKind) -> f64) -> F64xK<K> {
        F64xK::from_fn(|l| f(&self.circuits[l].elements()[idx].kind))
    }

    /// Evaluates an independent source's waveform per lane at `t`.
    #[inline]
    fn lane_wave(&self, idx: usize, t: f64) -> F64xK<K> {
        F64xK::from_fn(|l| match &self.circuits[l].elements()[idx].kind {
            ElementKind::VoltageSource { wave, .. } | ElementKind::CurrentSource { wave, .. } => {
                wave.value_at(t, &self.ext[l])
            }
            _ => unreachable!("lane_wave on a non-source element"),
        })
    }

    /// Assembles the full linearized system at candidate solution `x`.
    /// The stamp-call sequence mirrors the scalar solver's exactly —
    /// topology-determined, value-independent — so the recorded pattern
    /// (and any adopted scalar symbolic factor) stays valid.
    fn assemble(
        &self,
        st: &mut dyn Stamp<F64xK<K>>,
        x: &DVec<F64xK<K>>,
        t_new: f64,
        h: f64,
        be: bool,
    ) {
        let layout = &self.layout;
        let hh = F64xK::<K>::splat(h);
        let two = F64xK::<K>::splat(2.0);
        let one = F64xK::<K>::ONE;
        let gmin = F64xK::<K>::splat(GMIN);
        for (idx, e) in self.circuits[0].elements().iter().enumerate() {
            let eid = ElementId(idx);
            match &e.kind {
                ElementKind::Resistor { .. } => {
                    let g = self.lane_param(idx, |k| match k {
                        ElementKind::Resistor { ohms } => 1.0 / ohms,
                        _ => unreachable!(),
                    });
                    stamp_conductance(layout, st, e.p, e.n, g);
                }
                ElementKind::Capacitor { .. } => {
                    let c = self.lane_param(idx, |k| match k {
                        ElementKind::Capacitor { farads, .. } => *farads,
                        _ => unreachable!(),
                    });
                    let es = self.state[idx];
                    let (geq, ieq) = if be {
                        let g = c / hh;
                        (g, g * es.v)
                    } else {
                        let g = two * c / hh;
                        (g, g * es.v + es.i)
                    };
                    stamp_conductance(layout, st, e.p, e.n, geq);
                    stamp_current(layout, st, e.n, e.p, ieq);
                }
                ElementKind::Inductor { .. } => {
                    let ind = self.lane_param(idx, |k| match k {
                        ElementKind::Inductor { henries, .. } => *henries,
                        _ => unreachable!(),
                    });
                    let b = layout.branch_var(eid).expect("inductor branch");
                    let es = self.state[idx];
                    stamp_branch_kcl(layout, st, e.p, e.n, b);
                    stamp_branch_voltage(layout, st, b, e.p, e.n, one);
                    if be {
                        let req = ind / hh;
                        st.mat(b, b, -req);
                        st.rhs(b, -req * es.i);
                    } else {
                        let req = two * ind / hh;
                        st.mat(b, b, -req);
                        st.rhs(b, -req * es.i - es.v);
                    }
                }
                ElementKind::VoltageSource { .. } => {
                    let b = layout.branch_var(eid).expect("vsource branch");
                    stamp_branch_kcl(layout, st, e.p, e.n, b);
                    stamp_branch_voltage(layout, st, b, e.p, e.n, one);
                    st.rhs(b, self.lane_wave(idx, t_new));
                }
                ElementKind::CurrentSource { .. } => {
                    stamp_current(layout, st, e.p, e.n, self.lane_wave(idx, t_new));
                }
                ElementKind::Vcvs { cp, cn, .. } => {
                    let gain = self.lane_param(idx, |k| match k {
                        ElementKind::Vcvs { gain, .. } => *gain,
                        _ => unreachable!(),
                    });
                    let b = layout.branch_var(eid).expect("vcvs branch");
                    stamp_branch_kcl(layout, st, e.p, e.n, b);
                    stamp_branch_voltage(layout, st, b, e.p, e.n, one);
                    stamp_branch_voltage(layout, st, b, *cp, *cn, -gain);
                }
                ElementKind::Vccs { cp, cn, .. } => {
                    let gm = self.lane_param(idx, |k| match k {
                        ElementKind::Vccs { gm, .. } => *gm,
                        _ => unreachable!(),
                    });
                    stamp_vccs(layout, st, e.p, e.n, *cp, *cn, gm);
                }
                ElementKind::Cccs { ctrl, .. } => {
                    let gain = self.lane_param(idx, |k| match k {
                        ElementKind::Cccs { gain, .. } => *gain,
                        _ => unreachable!(),
                    });
                    let cb = layout.branch_var(*ctrl).expect("validated control");
                    if let Some(ip) = layout.node_var(e.p) {
                        st.mat(ip, cb, gain);
                    }
                    if let Some(in_) = layout.node_var(e.n) {
                        st.mat(in_, cb, -gain);
                    }
                }
                ElementKind::Ccvs { ctrl, .. } => {
                    let r = self.lane_param(idx, |k| match k {
                        ElementKind::Ccvs { r, .. } => *r,
                        _ => unreachable!(),
                    });
                    let b = layout.branch_var(eid).expect("ccvs branch");
                    let cb = layout.branch_var(*ctrl).expect("validated control");
                    stamp_branch_kcl(layout, st, e.p, e.n, b);
                    stamp_branch_voltage(layout, st, b, e.p, e.n, one);
                    st.mat(b, cb, -r);
                }
                ElementKind::Diode { .. } => {
                    let vp = layout.node_var(e.p).map_or(F64xK::ZERO, |i| x[i]);
                    let vn = layout.node_var(e.n).map_or(F64xK::ZERO, |i| x[i]);
                    let v = vp - vn;
                    // The exponential is inherently scalar; linearize
                    // each lane at its own bias and pack.
                    let mut i_l = F64xK::<K>::ZERO;
                    let mut g_l = F64xK::<K>::ZERO;
                    for l in 0..K {
                        if let ElementKind::Diode { is_sat, n } =
                            self.circuits[l].elements()[idx].kind
                        {
                            let (i, g) = diode_iv(v.lane(l), is_sat, n);
                            i_l.set_lane(l, i);
                            g_l.set_lane(l, g);
                        }
                    }
                    stamp_conductance(layout, st, e.p, e.n, g_l + gmin);
                    stamp_current(layout, st, e.p, e.n, i_l - g_l * v);
                }
                ElementKind::Nmos { gate, .. } => {
                    let vg = layout.node_var(*gate).map_or(F64xK::ZERO, |i| x[i]);
                    let vd = layout.node_var(e.p).map_or(F64xK::ZERO, |i| x[i]);
                    let vs = layout.node_var(e.n).map_or(F64xK::ZERO, |i| x[i]);
                    let mut id = F64xK::<K>::ZERO;
                    let mut a_g = F64xK::<K>::ZERO;
                    let mut a_d = F64xK::<K>::ZERO;
                    let mut a_s = F64xK::<K>::ZERO;
                    for l in 0..K {
                        if let ElementKind::Nmos { kp, vt, lambda, .. } =
                            self.circuits[l].elements()[idx].kind
                        {
                            let op =
                                nmos_linearize(vg.lane(l), vd.lane(l), vs.lane(l), kp, vt, lambda);
                            id.set_lane(l, op.id);
                            a_g.set_lane(l, op.a_g);
                            a_d.set_lane(l, op.a_d);
                            a_s.set_lane(l, op.a_s);
                        }
                    }
                    // Lane-wide analogue of `stamp_mos`: drain/source
                    // rows, gate/drain/source columns, RHS-folded bias.
                    let cols = [
                        (layout.node_var(*gate), a_g),
                        (layout.node_var(e.p), a_d),
                        (layout.node_var(e.n), a_s),
                    ];
                    for (row_node, sign) in [(e.p, 1.0), (e.n, -1.0)] {
                        if let Some(r) = layout.node_var(row_node) {
                            for (col, a) in cols {
                                if let Some(cc) = col {
                                    st.mat(r, cc, F64xK::splat(sign) * a);
                                }
                            }
                        }
                    }
                    let ieq = id - a_g * vg - a_d * vd - a_s * vs;
                    stamp_current(layout, st, e.p, e.n, ieq);
                    stamp_conductance(layout, st, e.p, e.n, gmin);
                }
                ElementKind::Switch { .. } => {
                    let on = self.switches[idx];
                    let g = self.lane_param(idx, |k| match k {
                        ElementKind::Switch { r_on, r_off, .. } => {
                            1.0 / if on { *r_on } else { *r_off }
                        }
                        _ => unreachable!(),
                    });
                    stamp_conductance(layout, st, e.p, e.n, g);
                }
            }
        }
    }

    /// Rebuilds only the RHS (linear fast path).
    fn assemble_rhs_only(&self, st: &mut dyn Stamp<F64xK<K>>, t_new: f64, h: f64, be: bool) {
        let layout = &self.layout;
        let hh = F64xK::<K>::splat(h);
        let two = F64xK::<K>::splat(2.0);
        for (idx, e) in self.circuits[0].elements().iter().enumerate() {
            let eid = ElementId(idx);
            match &e.kind {
                ElementKind::Capacitor { .. } => {
                    let c = self.lane_param(idx, |k| match k {
                        ElementKind::Capacitor { farads, .. } => *farads,
                        _ => unreachable!(),
                    });
                    let es = self.state[idx];
                    let ieq = if be {
                        c / hh * es.v
                    } else {
                        two * c / hh * es.v + es.i
                    };
                    stamp_current(layout, st, e.n, e.p, ieq);
                }
                ElementKind::Inductor { .. } => {
                    let ind = self.lane_param(idx, |k| match k {
                        ElementKind::Inductor { henries, .. } => *henries,
                        _ => unreachable!(),
                    });
                    let b = layout.branch_var(eid).expect("inductor branch");
                    let es = self.state[idx];
                    if be {
                        st.rhs(b, -(ind / hh) * es.i);
                    } else {
                        st.rhs(b, -(two * ind / hh) * es.i - es.v);
                    }
                }
                ElementKind::VoltageSource { .. } => {
                    let b = layout.branch_var(eid).expect("vsource branch");
                    st.rhs(b, self.lane_wave(idx, t_new));
                }
                ElementKind::CurrentSource { .. } => {
                    stamp_current(layout, st, e.p, e.n, self.lane_wave(idx, t_new));
                }
                _ => {}
            }
        }
    }

    fn snapshot(&self) -> LaneSnapshot<K> {
        LaneSnapshot {
            x: self.x.clone(),
            time: self.time,
            state: self.state.clone(),
            force_be: self.force_be,
            active: self.active,
        }
    }

    fn restore(&mut self, s: &LaneSnapshot<K>) {
        self.x = s.x.clone();
        self.time = s.time;
        self.state = s.state.clone();
        self.force_be = s.force_be;
        self.active = s.active;
    }

    /// Runs fixed-step transient until `t_end`, invoking `probe` after
    /// each step.
    ///
    /// # Errors
    ///
    /// Propagates step failures.
    pub fn run(
        &mut self,
        t_end: f64,
        h: f64,
        mut probe: impl FnMut(&LaneTransientSolver<K>),
    ) -> Result<(), NetError> {
        if !self.initialized {
            self.initialize_dc()?;
        }
        while self.time < t_end - 1e-18 {
            let step = h.min(t_end - self.time);
            self.step(step)?;
            probe(self);
        }
        Ok(())
    }

    /// Runs variable-step transient until `t_end` with lane-wise step
    /// control: the step-doubling error estimate is evaluated per lane
    /// and the accept decision uses the maximum over live lanes, so the
    /// shared step equals the smallest per-lane desired step. A lane
    /// whose half- or full-step solution goes non-finite is masked out
    /// (NaN results) rather than rejecting the bundle's step.
    ///
    /// # Errors
    ///
    /// * [`NetError::InvalidValue`] when the controller underflows
    ///   `min_step`.
    /// * Propagates solver failures (which, per [`Self::step`], occur
    ///   only when every lane has failed).
    pub fn run_adaptive(
        &mut self,
        t_end: f64,
        opts: &AdaptiveOptions,
        mut probe: impl FnMut(&LaneTransientSolver<K>),
    ) -> Result<(), NetError> {
        if !self.initialized {
            self.initialize_dc()?;
        }
        let mut h = opts.initial_step;
        let order_exp = match self.method {
            IntegrationMethod::BackwardEuler => 1.0 / 2.0,
            IntegrationMethod::Trapezoidal => 1.0 / 3.0,
        };
        const SAFETY: f64 = 0.9;
        while self.time < t_end - 1e-18 {
            let remaining = t_end - self.time;
            let h_step = h.max(opts.min_step).min(remaining);
            let final_step = h_step >= remaining;
            let start = self.snapshot();

            // Full step.
            let full_ok = self.step(h_step).is_ok();
            let x_full = self.x.clone();
            self.restore(&start);

            // Two half steps.
            let half_ok =
                full_ok && self.step(h_step / 2.0).is_ok() && self.step(h_step / 2.0).is_ok();

            if !half_ok {
                self.restore(&start);
                self.stats.rejected += 1;
                if self.tracer.is_enabled() {
                    self.tracer
                        .instant(SpanKind::StepReject, fs(self.time), h_step.to_bits());
                }
                // Same underflow predicate as the scalar controller:
                // abort only when the attempted step was already at the
                // floor, otherwise retry once clamped to min_step.
                if h_step <= opts.min_step {
                    return Err(NetError::InvalidValue {
                        element: "adaptive timestep".to_string(),
                        reason: format!("step underflow at t = {}", self.time),
                    });
                }
                h = (h_step * 0.25).max(opts.min_step);
                continue;
            }

            // Per-lane error estimates; lanes that went non-finite on
            // either attempt are masked out instead of rejecting.
            let mut err = 0.0f64;
            for l in 0..K {
                if !self.active[l] {
                    continue;
                }
                let mut lane_err = 0.0f64;
                let mut lane_finite = true;
                for i in 0..self.x.len() {
                    let xh = self.x[i].lane(l);
                    let xf = x_full[i].lane(l);
                    if !xh.is_finite() || !xf.is_finite() {
                        lane_finite = false;
                        break;
                    }
                    let scale = opts.abs_tol + opts.rel_tol * xh.abs().max(xf.abs());
                    lane_err = lane_err.max(((xh - xf) / scale).abs());
                }
                if !lane_finite {
                    self.kill_lane(l);
                } else {
                    // Shared step = min over lanes ⇔ shared error = max
                    // over lanes.
                    err = err.max(lane_err);
                }
            }
            if !self.active.iter().any(|&a| a) {
                return Err(NetError::NoConvergence {
                    analysis: "lane adaptive transient",
                    iterations: 0,
                });
            }

            if err <= 1.0 {
                if final_step {
                    self.time = t_end;
                }
                if self.tracer.is_enabled() {
                    self.tracer
                        .instant(SpanKind::StepAccept, fs(self.time), h_step.to_bits());
                }
                probe(self);
                let grow = if err > 0.0 {
                    (SAFETY * err.powf(-order_exp)).min(3.0)
                } else {
                    3.0
                };
                h = (h_step * grow).clamp(opts.min_step, opts.max_step);
            } else {
                self.restore(&start);
                self.stats.rejected += 1;
                if self.tracer.is_enabled() {
                    self.tracer
                        .instant(SpanKind::StepReject, fs(self.time), h_step.to_bits());
                }
                if h_step <= opts.min_step {
                    return Err(NetError::InvalidValue {
                        element: "adaptive timestep".to_string(),
                        reason: format!("step underflow at t = {}", self.time),
                    });
                }
                let shrink = (SAFETY * err.powf(-order_exp)).max(0.1);
                h = (h_step * shrink).max(opts.min_step);
            }
        }
        Ok(())
    }
}

/// Verifies that every circuit in `circuits` is a value-variant of
/// `circuits[0]`: identical node/element counts and, per element, the
/// same kind, terminals, control references and switch initial state.
fn check_topology_identical(circuits: &[Circuit]) -> Result<(), NetError> {
    let base = &circuits[0];
    for (l, c) in circuits.iter().enumerate().skip(1) {
        let mismatch = |what: &str| NetError::InvalidValue {
            element: format!("lane {l}"),
            reason: format!("lane circuits must be topology-identical: {what} differs"),
        };
        if c.node_count() != base.node_count() {
            return Err(mismatch("node count"));
        }
        if c.element_count() != base.element_count() {
            return Err(mismatch("element count"));
        }
        if c.external_input_count() != base.external_input_count() {
            return Err(mismatch("external input count"));
        }
        for (a, b) in base.elements().iter().zip(c.elements()) {
            if a.p != b.p || a.n != b.n {
                return Err(mismatch("element terminals"));
            }
            use std::mem::discriminant;
            if discriminant(&a.kind) != discriminant(&b.kind) {
                return Err(mismatch("element kind"));
            }
            let controls_match = match (&a.kind, &b.kind) {
                (
                    ElementKind::Vcvs { cp, cn, .. },
                    ElementKind::Vcvs {
                        cp: cp2, cn: cn2, ..
                    },
                )
                | (
                    ElementKind::Vccs { cp, cn, .. },
                    ElementKind::Vccs {
                        cp: cp2, cn: cn2, ..
                    },
                ) => cp == cp2 && cn == cn2,
                (ElementKind::Cccs { ctrl, .. }, ElementKind::Cccs { ctrl: ctrl2, .. })
                | (ElementKind::Ccvs { ctrl, .. }, ElementKind::Ccvs { ctrl: ctrl2, .. }) => {
                    ctrl == ctrl2
                }
                (ElementKind::Nmos { gate, .. }, ElementKind::Nmos { gate: gate2, .. }) => {
                    gate == gate2
                }
                (
                    ElementKind::Switch { initially_on, .. },
                    ElementKind::Switch {
                        initially_on: on2, ..
                    },
                ) => initially_on == on2,
                _ => true,
            };
            if !controls_match {
                return Err(mismatch("element control references"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, TransientSolver, Waveform};

    fn rc_ladder(r: f64, c: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, out, r).unwrap();
        ckt.capacitor_ic("C1", out, Circuit::GROUND, c, 0.0)
            .unwrap();
        ckt
    }

    #[test]
    fn bundle_size_and_topology_are_checked() {
        let c = rc_ladder(1e3, 1e-6);
        assert!(LaneTransientSolver::<4>::new(
            &[c.clone(), c.clone()],
            IntegrationMethod::Trapezoidal
        )
        .is_err());
        let mut other = Circuit::new();
        other.node("a");
        other.node("out");
        assert!(
            LaneTransientSolver::<2>::new(&[c.clone(), other], IntegrationMethod::Trapezoidal)
                .is_err()
        );
        assert!(
            LaneTransientSolver::<2>::new(&[c.clone(), c], IntegrationMethod::Trapezoidal).is_ok()
        );
    }

    #[test]
    fn lane_run_matches_scalar_runs() {
        let rs = [0.5e3, 1e3, 2e3, 4e3];
        let circuits: Vec<Circuit> = rs.iter().map(|&r| rc_ladder(r, 1e-6)).collect();
        let mut lane =
            LaneTransientSolver::<4>::new(&circuits, IntegrationMethod::Trapezoidal).unwrap();
        lane.initialize_with_ic().unwrap();
        lane.run(1e-3, 1e-6, |_| {}).unwrap();
        let out = NodeId(2);
        for (l, ckt) in circuits.iter().enumerate() {
            let mut tr = TransientSolver::new(ckt, IntegrationMethod::Trapezoidal).unwrap();
            tr.initialize_with_ic().unwrap();
            tr.run(1e-3, 1e-6, |_| {}).unwrap();
            let scalar = tr.voltage(out);
            let bundled = lane.voltage_lane(out, l);
            assert!(
                (bundled - scalar).abs() <= 1e-9 * scalar.abs().max(1.0),
                "lane {l}: {bundled} vs {scalar}"
            );
        }
    }

    #[test]
    fn diode_newton_lane_matches_scalar() {
        let build = |ampl: f64| {
            let mut ckt = Circuit::new();
            let src = ckt.node("src");
            let out = ckt.node("out");
            ckt.voltage_source_wave(
                "V1",
                src,
                Circuit::GROUND,
                Waveform::Sine {
                    offset: 0.0,
                    ampl,
                    freq: 50.0,
                    phase: 0.0,
                },
            )
            .unwrap();
            ckt.diode("D1", src, out, 1e-14, 1.0).unwrap();
            ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
            ckt
        };
        let ampls = [2.0, 5.0];
        let circuits: Vec<Circuit> = ampls.iter().map(|&a| build(a)).collect();
        let mut lane =
            LaneTransientSolver::<2>::new(&circuits, IntegrationMethod::Trapezoidal).unwrap();
        lane.initialize_dc().unwrap();
        lane.run(10e-3, 50e-6, |_| {}).unwrap();
        let out = NodeId(2);
        for (l, ckt) in circuits.iter().enumerate() {
            let mut tr = TransientSolver::new(ckt, IntegrationMethod::Trapezoidal).unwrap();
            tr.initialize_dc().unwrap();
            tr.run(10e-3, 50e-6, |_| {}).unwrap();
            let scalar = tr.voltage(out);
            let bundled = lane.voltage_lane(out, l);
            // Shared Newton iteration counts can move the iterate by a
            // few ulps relative to the scalar runs.
            assert!(
                (bundled - scalar).abs() <= 1e-9 * scalar.abs().max(1.0),
                "lane {l}: {bundled} vs {scalar}"
            );
        }
    }

    #[test]
    fn dead_lane_is_isolated_and_reports_nan() {
        // Lane 1's externally driven source is poisoned with NaN after
        // the run starts; lanes 0 and 2 stay healthy.
        let build = || {
            let mut ckt = Circuit::new();
            let src = ckt.node("src");
            let out = ckt.node("out");
            let inp = ckt.external_input();
            ckt.voltage_source_wave("V1", src, Circuit::GROUND, Waveform::External(inp))
                .unwrap();
            ckt.diode("D1", src, out, 1e-14, 1.0).unwrap();
            ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
            ckt
        };
        let circuits = vec![build(), build(), build()];
        let mut lane =
            LaneTransientSolver::<3>::new(&circuits, IntegrationMethod::Trapezoidal).unwrap();
        lane.initialize_with_ic().unwrap();
        let inp = crate::InputId(0);
        lane.set_input_lane(inp, 0, 0.8);
        lane.set_input_lane(inp, 1, f64::NAN);
        lane.set_input_lane(inp, 2, 0.7);
        lane.run(1e-4, 1e-6, |_| {}).unwrap();
        let out = NodeId(2);
        assert!(!lane.active_lanes()[1]);
        assert!(lane.voltage_lane(out, 1).is_nan());
        for l in [0usize, 2] {
            assert!(lane.active_lanes()[l], "lane {l} should be live");
            let v = lane.voltage_lane(out, l);
            assert!(v.is_finite() && v > 0.0, "lane {l}: {v}");
        }
    }

    #[test]
    fn adaptive_lane_matches_scalar_within_tolerance() {
        let rs = [0.8e3, 1e3, 1.6e3, 3.2e3];
        let circuits: Vec<Circuit> = rs.iter().map(|&r| rc_ladder(r, 1e-6)).collect();
        let opts = AdaptiveOptions {
            rel_tol: 1e-6,
            abs_tol: 1e-9,
            initial_step: 1e-8,
            ..Default::default()
        };
        let mut lane =
            LaneTransientSolver::<4>::new(&circuits, IntegrationMethod::Trapezoidal).unwrap();
        lane.initialize_with_ic().unwrap();
        lane.run_adaptive(1e-3, &opts, |_| {}).unwrap();
        let out = NodeId(2);
        for (l, &r) in rs.iter().enumerate() {
            let expected = 1.0 - (-1e-3 / (r * 1e-6)).exp();
            let bundled = lane.voltage_lane(out, l);
            // The shared (min-over-lanes) step keeps every lane at or
            // below its own error target.
            assert!(
                (bundled - expected).abs() < 1e-4,
                "lane {l}: {bundled} vs analytic {expected}"
            );
        }
    }

    #[test]
    fn scalar_factor_adoption_skips_symbolic_analysis() {
        let rs = [0.9e3, 1e3, 1.1e3, 1.2e3];
        let circuits: Vec<Circuit> = rs.iter().map(|&r| rc_ladder(r, 1e-6)).collect();
        // Scalar run provides the symbolic factor.
        let mut tr = TransientSolver::new(&circuits[0], IntegrationMethod::Trapezoidal).unwrap();
        tr.backend = SolverBackend::Sparse;
        tr.initialize_with_ic().unwrap();
        tr.run(1e-5, 1e-6, |_| {}).unwrap();
        let hint = tr.symbolic_factor().expect("sparse factor");

        let mut lane =
            LaneTransientSolver::<4>::new(&circuits, IntegrationMethod::Trapezoidal).unwrap();
        lane.backend = SolverBackend::Sparse;
        lane.adopt_scalar_factor(&hint);
        lane.initialize_with_ic().unwrap();
        lane.run(1e-5, 1e-6, |_| {}).unwrap();
        let stats = lane.stats();
        assert_eq!(
            stats.solve.symbolic_analyses, 0,
            "adopted factor must turn the first factorization into a refactor: {stats:?}"
        );
        assert!(stats.solve.numeric_refactors >= 1);
        // And the widened factor reports lane-width bytes.
        let lane_factor = lane.symbolic_factor().expect("lane factor");
        assert!(lane_factor.approx_bytes() > hint.approx_bytes());
    }

    #[test]
    fn lane_view_implements_probe_surface() {
        let circuits: Vec<Circuit> = [1e3, 2e3].iter().map(|&r| rc_ladder(r, 1e-6)).collect();
        let mut lane =
            LaneTransientSolver::<2>::new(&circuits, IntegrationMethod::Trapezoidal).unwrap();
        lane.initialize_with_ic().unwrap();
        lane.run(1e-4, 1e-6, |_| {}).unwrap();
        let out = NodeId(2);
        let view = lane.lane_view(0);
        fn probe_voltage(p: &dyn ScenarioProbe, node: NodeId) -> f64 {
            p.voltage(node)
        }
        assert_eq!(probe_voltage(&view, out), lane.voltage_lane(out, 0));
        assert!(view.time() > 0.0);
        // The resistor current is computable through the view too.
        assert!(view.current(ElementId(1)).is_ok());
    }
}
