use ams_math::MathError;
use std::fmt;

/// Errors from network construction and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A node handle did not belong to this circuit.
    UnknownNode {
        /// Raw index of the invalid node.
        index: usize,
    },
    /// An element handle did not belong to this circuit, or referred to an
    /// element without the requested capability (e.g. branch current of a
    /// resistor).
    UnknownElement {
        /// Raw index of the invalid element.
        index: usize,
        /// What was requested of it.
        what: &'static str,
    },
    /// An element value was out of its physical domain (negative
    /// resistance magnitude, zero capacitance, …).
    InvalidValue {
        /// Name of the offending element.
        element: String,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The nonlinear solve (DC operating point or implicit transient step)
    /// failed to converge even with gmin/source stepping.
    NoConvergence {
        /// The analysis that failed.
        analysis: &'static str,
        /// Iterations spent in the last attempt.
        iterations: usize,
    },
    /// The system matrix was singular — usually a floating node or a loop
    /// of ideal voltage sources.
    Singular {
        /// Description of the likely topology problem.
        hint: String,
    },
    /// An underlying numerical routine failed.
    Math(MathError),
}

impl NetError {
    /// The stable diagnostic code of this error, from the same registry
    /// `ams-lint` uses (`MNA005` = singular system, `MNA006` = no
    /// convergence, …), so runtime failures and pre-elaboration lint
    /// findings are correlated by code.
    pub fn code(&self) -> &'static str {
        match self {
            NetError::UnknownNode { .. } => "MNA007",
            NetError::UnknownElement { .. } => "MNA008",
            NetError::InvalidValue { .. } => "MNA009",
            NetError::NoConvergence { .. } => "MNA006",
            NetError::Singular { .. } => "MNA005",
            NetError::Math(_) => "MNA010",
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode { index } => write!(f, "unknown node handle {index}"),
            NetError::UnknownElement { index, what } => {
                write!(f, "unknown element handle {index} (requested {what})")
            }
            NetError::InvalidValue { element, reason } => {
                write!(f, "invalid value for element '{element}': {reason}")
            }
            NetError::NoConvergence {
                analysis,
                iterations,
            } => write!(
                f,
                "{analysis} failed to converge after {iterations} iterations"
            ),
            NetError::Singular { hint } => {
                write!(f, "singular system matrix: {hint}")
            }
            NetError::Math(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for NetError {
    fn from(e: MathError) -> Self {
        match e {
            MathError::SingularMatrix { pivot } => NetError::Singular {
                hint: format!(
                    "pivot failure at unknown {pivot}; check for floating nodes or voltage-source loops"
                ),
            },
            other => NetError::Math(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn math_error_converts_with_hint() {
        let e: NetError = MathError::SingularMatrix { pivot: 3 }.into();
        assert!(e.to_string().contains("floating nodes"));
    }

    #[test]
    fn display() {
        let e = NetError::NoConvergence {
            analysis: "dc operating point",
            iterations: 100,
        };
        assert!(e.to_string().contains("dc operating point"));
    }
}
