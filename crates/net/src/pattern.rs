//! Public structural view of the MNA system: the stamp pattern.
//!
//! Static analyses (notably `ams-lint`'s structural-rank check) need the
//! *shape* of the MNA matrix without solving anything. Because every
//! assembly routine in this crate has a data-independent stamp-call
//! sequence, running the DC assembly once against a
//! [`PatternStamp`](crate::assembly) with a zero iterate yields the exact
//! coordinate multiset of every later assembly — the structural pattern
//! of the Jacobian, valid for all operating points, gmin values and
//! source scales.

use crate::assembly::PatternStamp;
use crate::dcop::{assemble_dc, GMIN};
use crate::mna::MnaLayout;
use crate::Circuit;
use ams_math::DVec;

/// The structural (symbolic) pattern of a circuit's DC-linearized MNA
/// matrix: unknown count, human-readable unknown names, and the matrix
/// coordinate sequence recorded from one assembly run.
#[derive(Debug, Clone)]
pub struct StampPattern {
    n_unknowns: usize,
    names: Vec<String>,
    coords: Vec<(usize, usize)>,
}

impl StampPattern {
    /// Number of MNA unknowns: `(nodes − 1)` voltages plus one branch
    /// current per voltage-defined element.
    pub fn n_unknowns(&self) -> usize {
        self.n_unknowns
    }

    /// The recorded `(row, col)` coordinate sequence. Duplicates are
    /// meaningful to stamp replay but harmless to structural analysis.
    pub fn coords(&self) -> &[(usize, usize)] {
        &self.coords
    }

    /// Human-readable name of an unknown: `V(node)` for node voltages,
    /// `I(element)` for branch currents.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n_unknowns()`.
    pub fn unknown_name(&self, idx: usize) -> &str {
        &self.names[idx]
    }
}

impl Circuit {
    /// Records the structural pattern of the DC-linearized MNA system.
    ///
    /// All sources are treated at zero, all nonlinear elements at a zero
    /// iterate, switches in their initial states — none of which changes
    /// the pattern, since the stamp sequence is data-independent.
    pub fn dc_stamp_pattern(&self) -> StampPattern {
        let layout = MnaLayout::build(self);
        let x = DVec::zeros(layout.n_unknowns);
        let ext = vec![0.0; self.external_input_count()];
        let switches = self.initial_switch_states();
        let mut coords = Vec::new();
        assemble_dc(
            self,
            &layout,
            &x,
            &ext,
            &switches,
            1.0,
            GMIN,
            &mut PatternStamp {
                coords: &mut coords,
            },
        );
        let mut names = Vec::with_capacity(layout.n_unknowns);
        for node in 1..layout.n_nodes {
            names.push(format!("V({})", self.node_names[node]));
        }
        // Branch unknowns are allocated in element order; reproduce it.
        for e in self.elements() {
            if e.has_branch_current() {
                names.push(format!("I({})", e.name));
            }
        }
        debug_assert_eq!(names.len(), layout.n_unknowns);
        StampPattern {
            n_unknowns: layout.n_unknowns,
            names,
            coords,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_pattern_names_and_coords() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        let p = ckt.dc_stamp_pattern();
        assert_eq!(p.n_unknowns(), 3);
        assert_eq!(p.unknown_name(0), "V(in)");
        assert_eq!(p.unknown_name(1), "V(out)");
        assert_eq!(p.unknown_name(2), "I(V1)");
        // Every coordinate is in range; the diagonal of both node rows
        // appears (conductance stamps).
        assert!(p.coords().iter().all(|&(i, j)| i < 3 && j < 3));
        assert!(p.coords().contains(&(0, 0)));
        assert!(p.coords().contains(&(1, 1)));
    }

    #[test]
    fn pattern_is_iterate_independent() {
        // A nonlinear circuit still yields one fixed pattern.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.voltage_source("V1", a, Circuit::GROUND, 5.0).unwrap();
        ckt.resistor("R1", a, d, 1e3).unwrap();
        ckt.diode("D1", d, Circuit::GROUND, 1e-14, 1.0).unwrap();
        let p1 = ckt.dc_stamp_pattern();
        let p2 = ckt.dc_stamp_pattern();
        assert_eq!(p1.coords(), p2.coords());
    }
}
