//! Nonlinear device models beyond the diode: the level-1 (square-law)
//! MOSFET used for behavioural transistor-level blocks in phase 2's
//! "enriched mixed-signal library".

/// Linearization of the NMOS drain current at a bias point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct NmosOp {
    /// Drain current at the bias point (drain → source), amperes.
    pub id: f64,
    /// ∂i/∂v_gate.
    pub a_g: f64,
    /// ∂i/∂v_drain.
    pub a_d: f64,
    /// ∂i/∂v_source.
    pub a_s: f64,
}

/// Forward-mode square-law model: returns `(id, gm, gds)` for
/// `v_gs, v_ds ≥ 0` conventions.
fn nmos_forward(vgs: f64, vds: f64, kp: f64, vt: f64, lambda: f64) -> (f64, f64, f64) {
    let vov = vgs - vt;
    if vov <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let clm = 1.0 + lambda * vds;
    if vds < vov {
        // Triode.
        let id = kp * (vov - vds / 2.0) * vds * clm;
        let gm = kp * vds * clm;
        let gds = kp * (vov - vds) * clm + kp * (vov - vds / 2.0) * vds * lambda;
        (id, gm, gds)
    } else {
        // Saturation.
        let id = kp / 2.0 * vov * vov * clm;
        let gm = kp * vov * clm;
        let gds = kp / 2.0 * vov * vov * lambda;
        (id, gm, gds)
    }
}

/// Linearizes the NMOS drain current `i(v_g, v_d, v_s)` (positive from
/// drain to source) at the given node voltages, handling reverse mode
/// (`v_ds < 0`) by terminal swap.
pub(crate) fn nmos_linearize(vg: f64, vd: f64, vs: f64, kp: f64, vt: f64, lambda: f64) -> NmosOp {
    if vd >= vs {
        let (id, gm, gds) = nmos_forward(vg - vs, vd - vs, kp, vt, lambda);
        // i(vg, vd, vs): vgs = vg − vs, vds = vd − vs.
        NmosOp {
            id,
            a_g: gm,
            a_d: gds,
            a_s: -(gm + gds),
        }
    } else {
        // Reverse mode: physical source is the drain terminal. Current
        // from the `d` terminal to `s` is −i_fwd(v_g − v_d, v_s − v_d).
        let (id, gm, gds) = nmos_forward(vg - vd, vs - vd, kp, vt, lambda);
        NmosOp {
            id: -id,
            a_g: -gm,
            a_d: gm + gds,
            a_s: -gds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KP: f64 = 2e-3;
    const VT: f64 = 1.0;

    #[test]
    fn cutoff_below_threshold() {
        let op = nmos_linearize(0.5, 5.0, 0.0, KP, VT, 0.0);
        assert_eq!(op.id, 0.0);
        assert_eq!(op.a_g, 0.0);
    }

    #[test]
    fn saturation_current_matches_square_law() {
        // vgs = 3, vds = 5 > vov = 2: saturation.
        let op = nmos_linearize(3.0, 5.0, 0.0, KP, VT, 0.0);
        assert!((op.id - KP / 2.0 * 4.0).abs() < 1e-15);
        assert!((op.a_g - KP * 2.0).abs() < 1e-15); // gm = kp·vov
        assert_eq!(op.a_d, 0.0); // no CLM → flat saturation
    }

    #[test]
    fn triode_current_matches_formula() {
        // vgs = 3, vds = 1 < vov = 2: triode.
        let op = nmos_linearize(3.0, 1.0, 0.0, KP, VT, 0.0);
        let expect = KP * (2.0 - 0.5) * 1.0;
        assert!((op.id - expect).abs() < 1e-15);
        // gds = kp(vov − vds) = kp.
        assert!((op.a_d - KP).abs() < 1e-15);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-7;
        for &(vg, vd, vs, lambda) in &[
            (3.0, 5.0, 0.0, 0.02),
            (3.0, 1.0, 0.0, 0.02),
            (2.0, 0.3, 0.0, 0.0),
            (3.0, -1.0, 0.0, 0.01), // reverse mode
            (4.0, 2.0, 1.0, 0.05),
        ] {
            let f = |vg: f64, vd: f64, vs: f64| nmos_linearize(vg, vd, vs, KP, VT, lambda).id;
            let op = nmos_linearize(vg, vd, vs, KP, VT, lambda);
            let num_g = (f(vg + h, vd, vs) - f(vg - h, vd, vs)) / (2.0 * h);
            let num_d = (f(vg, vd + h, vs) - f(vg, vd - h, vs)) / (2.0 * h);
            let num_s = (f(vg, vd, vs + h) - f(vg, vd, vs - h)) / (2.0 * h);
            assert!((op.a_g - num_g).abs() < 1e-5, "a_g at ({vg},{vd},{vs})");
            assert!((op.a_d - num_d).abs() < 1e-5, "a_d at ({vg},{vd},{vs})");
            assert!((op.a_s - num_s).abs() < 1e-5, "a_s at ({vg},{vd},{vs})");
        }
    }

    #[test]
    fn current_is_continuous_across_triode_saturation_boundary() {
        let lambda = 0.02;
        let vov = 2.0;
        let below = nmos_linearize(VT + vov, vov - 1e-9, 0.0, KP, VT, lambda);
        let above = nmos_linearize(VT + vov, vov + 1e-9, 0.0, KP, VT, lambda);
        assert!((below.id - above.id).abs() < 1e-9);
        assert!((below.a_g - above.a_g).abs() < 1e-6);
    }

    #[test]
    fn reverse_mode_is_antisymmetric_without_clm() {
        // With λ = 0 and symmetric bias, i(d↔s) flips sign.
        let fwd = nmos_linearize(3.0, 2.0, 0.0, KP, VT, 0.0);
        let rev = nmos_linearize(3.0, 0.0, 2.0, KP, VT, 0.0);
        // Reverse: vg − vd' with drain at 0... gate referenced to the
        // physical source (node at 0 V in fwd, node at 0 V = drain in rev):
        // i_rev = −i_fwd only when the gate overdrive matches; here
        // vgs_fwd = 3, vgs_rev (physical) = 3 − 0 = 3 as well.
        assert!((fwd.id + rev.id).abs() < 1e-15, "{} vs {}", fwd.id, rev.id);
    }
}
