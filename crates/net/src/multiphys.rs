//! Multi-domain (multi-discipline) conservative modeling.
//!
//! "Power electronic and automotive applications share the distinguished
//! requirement to design multi-domain, or multi-discipline, systems, i.e.
//! systems including non electronic parts (mechanical, fluidic, thermal,
//! etc.)" (paper §2); phase 3 requires "support of conservative-law
//! models" and a "mixed-signal library with conservative-law mixed-domain
//! models".
//!
//! MNA does not care about units: any discipline with an *across*
//! quantity (voltage-like) and a *through* quantity (current-like) obeying
//! Kirchhoff-style conservation maps onto the same solver. This module
//! provides discipline-typed node wrappers and element constructors using
//! the **mobility analogy**:
//!
//! | discipline | across | through | C-like | R-like | L-like |
//! |---|---|---|---|---|---|
//! | electrical | voltage (V) | current (A) | capacitor | resistor | inductor |
//! | translational | velocity (m/s) | force (N) | mass | 1/damping | 1/stiffness |
//! | rotational | angular velocity (rad/s) | torque (N·m) | inertia | 1/damping | 1/stiffness |
//! | thermal | temperature (K) | heat flow (W) | heat capacity | thermal resistance | — |
//!
//! The electro-mechanical coupling elements (motor constant: torque ∝
//! current, back-EMF ∝ speed) are built from controlled sources, exactly
//! how a DC motor macromodel is written in any conservative-law language.

use crate::{Circuit, ElementId, NetError, NodeId};

/// A node carrying translational-mechanics quantities
/// (across = velocity m/s, through = force N).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MechNode(pub NodeId);

/// A node carrying rotational-mechanics quantities
/// (across = angular velocity rad/s, through = torque N·m).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RotNode(pub NodeId);

/// A node carrying thermal quantities
/// (across = temperature K, through = heat flow W).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThermalNode(pub NodeId);

/// Discipline-typed construction helpers layered over [`Circuit`].
///
/// # Example
///
/// A mass–spring–damper settling under a constant force:
///
/// ```
/// use ams_net::{Circuit, IntegrationMethod, Multiphysics, TransientSolver};
///
/// # fn main() -> Result<(), ams_net::NetError> {
/// let mut ckt = Circuit::new();
/// let body = ckt.mech_node("body");
/// ckt.mass("m", body, 1.0)?;              // 1 kg
/// ckt.damper("b", body, Circuit::mech_ground(), 2.0)?;  // 2 N·s/m
/// ckt.force_source("F", body, 10.0)?;     // 10 N
/// let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal)?;
/// tr.initialize_with_ic()?;
/// for _ in 0..20_000 {
///     tr.step(1e-3)?; // 20 s — terminal velocity F/b = 5 m/s
/// }
/// assert!((tr.voltage(body.0) - 5.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub trait Multiphysics {
    /// Creates a translational-mechanics node.
    fn mech_node(&mut self, name: &str) -> MechNode;
    /// Creates a rotational-mechanics node.
    fn rot_node(&mut self, name: &str) -> RotNode;
    /// Creates a thermal node.
    fn thermal_node(&mut self, name: &str) -> ThermalNode;

    /// The mechanical reference (zero velocity).
    fn mech_ground() -> MechNode
    where
        Self: Sized,
    {
        MechNode(NodeId::GROUND)
    }

    /// The rotational reference (zero angular velocity).
    fn rot_ground() -> RotNode
    where
        Self: Sized,
    {
        RotNode(NodeId::GROUND)
    }

    /// The thermal reference (ambient temperature, taken as 0 offset).
    fn thermal_ground() -> ThermalNode
    where
        Self: Sized,
    {
        ThermalNode(NodeId::GROUND)
    }

    /// A point mass in kg (capacitor to mechanical ground).
    ///
    /// # Errors
    ///
    /// Rejects non-positive mass.
    fn mass(&mut self, name: &str, node: MechNode, kg: f64) -> Result<ElementId, NetError>;

    /// A viscous damper in N·s/m between two nodes (resistor `1/b`).
    ///
    /// # Errors
    ///
    /// Rejects non-positive damping.
    fn damper(
        &mut self,
        name: &str,
        a: MechNode,
        b: MechNode,
        n_s_per_m: f64,
    ) -> Result<ElementId, NetError>;

    /// A spring in N/m between two nodes (inductor `1/k`).
    ///
    /// # Errors
    ///
    /// Rejects non-positive stiffness.
    fn spring(
        &mut self,
        name: &str,
        a: MechNode,
        b: MechNode,
        n_per_m: f64,
    ) -> Result<ElementId, NetError>;

    /// A constant force in newtons applied to a node (current source into
    /// the node).
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    fn force_source(
        &mut self,
        name: &str,
        node: MechNode,
        newtons: f64,
    ) -> Result<ElementId, NetError>;

    /// A rotational inertia in kg·m².
    ///
    /// # Errors
    ///
    /// Rejects non-positive inertia.
    fn inertia(&mut self, name: &str, node: RotNode, kg_m2: f64) -> Result<ElementId, NetError>;

    /// Rotational viscous friction in N·m·s/rad.
    ///
    /// # Errors
    ///
    /// Rejects non-positive friction.
    fn rot_damper(
        &mut self,
        name: &str,
        a: RotNode,
        b: RotNode,
        n_m_s: f64,
    ) -> Result<ElementId, NetError>;

    /// A torsional spring in N·m/rad.
    ///
    /// # Errors
    ///
    /// Rejects non-positive stiffness.
    fn torsion_spring(
        &mut self,
        name: &str,
        a: RotNode,
        b: RotNode,
        n_m_per_rad: f64,
    ) -> Result<ElementId, NetError>;

    /// A constant torque in N·m applied to a node.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    fn torque_source(&mut self, name: &str, node: RotNode, n_m: f64)
        -> Result<ElementId, NetError>;

    /// A thermal capacitance in J/K.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacity.
    fn thermal_capacity(
        &mut self,
        name: &str,
        node: ThermalNode,
        j_per_k: f64,
    ) -> Result<ElementId, NetError>;

    /// A thermal resistance in K/W between two nodes.
    ///
    /// # Errors
    ///
    /// Rejects non-positive resistance.
    fn thermal_resistance(
        &mut self,
        name: &str,
        a: ThermalNode,
        b: ThermalNode,
        k_per_w: f64,
    ) -> Result<ElementId, NetError>;

    /// A heat-flow source in watts into a node.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    fn heat_source(
        &mut self,
        name: &str,
        node: ThermalNode,
        watts: f64,
    ) -> Result<ElementId, NetError>;

    /// The electro-mechanical coupling of a DC machine: torque
    /// `T = k·i(sense)` applied to `shaft`, and back-EMF `V = k·ω`
    /// inserted via a CCVS/VCVS pair. `sense` must be a branch-current
    /// element in the armature loop (e.g. a 0 V sense source); returns the
    /// back-EMF element whose terminals must be wired in series with the
    /// armature.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    fn dc_machine(
        &mut self,
        name: &str,
        sense: ElementId,
        emf_p: NodeId,
        emf_n: NodeId,
        shaft: RotNode,
        k: f64,
    ) -> Result<ElementId, NetError>;
}

impl Multiphysics for Circuit {
    fn mech_node(&mut self, name: &str) -> MechNode {
        MechNode(self.node(format!("mech:{name}")))
    }

    fn rot_node(&mut self, name: &str) -> RotNode {
        RotNode(self.node(format!("rot:{name}")))
    }

    fn thermal_node(&mut self, name: &str) -> ThermalNode {
        ThermalNode(self.node(format!("th:{name}")))
    }

    fn mass(&mut self, name: &str, node: MechNode, kg: f64) -> Result<ElementId, NetError> {
        self.capacitor(name, node.0, NodeId::GROUND, kg)
    }

    fn damper(
        &mut self,
        name: &str,
        a: MechNode,
        b: MechNode,
        n_s_per_m: f64,
    ) -> Result<ElementId, NetError> {
        if n_s_per_m <= 0.0 || !n_s_per_m.is_finite() {
            return Err(NetError::InvalidValue {
                element: name.to_string(),
                reason: format!("damping must be positive, got {n_s_per_m}"),
            });
        }
        self.resistor(name, a.0, b.0, 1.0 / n_s_per_m)
    }

    fn spring(
        &mut self,
        name: &str,
        a: MechNode,
        b: MechNode,
        n_per_m: f64,
    ) -> Result<ElementId, NetError> {
        if n_per_m <= 0.0 || !n_per_m.is_finite() {
            return Err(NetError::InvalidValue {
                element: name.to_string(),
                reason: format!("stiffness must be positive, got {n_per_m}"),
            });
        }
        self.inductor(name, a.0, b.0, 1.0 / n_per_m)
    }

    fn force_source(
        &mut self,
        name: &str,
        node: MechNode,
        newtons: f64,
    ) -> Result<ElementId, NetError> {
        // Positive force accelerates the node: current into the node.
        self.current_source(name, NodeId::GROUND, node.0, newtons)
    }

    fn inertia(&mut self, name: &str, node: RotNode, kg_m2: f64) -> Result<ElementId, NetError> {
        self.capacitor(name, node.0, NodeId::GROUND, kg_m2)
    }

    fn rot_damper(
        &mut self,
        name: &str,
        a: RotNode,
        b: RotNode,
        n_m_s: f64,
    ) -> Result<ElementId, NetError> {
        if n_m_s <= 0.0 || !n_m_s.is_finite() {
            return Err(NetError::InvalidValue {
                element: name.to_string(),
                reason: format!("rotational damping must be positive, got {n_m_s}"),
            });
        }
        self.resistor(name, a.0, b.0, 1.0 / n_m_s)
    }

    fn torsion_spring(
        &mut self,
        name: &str,
        a: RotNode,
        b: RotNode,
        n_m_per_rad: f64,
    ) -> Result<ElementId, NetError> {
        if n_m_per_rad <= 0.0 || !n_m_per_rad.is_finite() {
            return Err(NetError::InvalidValue {
                element: name.to_string(),
                reason: format!("torsional stiffness must be positive, got {n_m_per_rad}"),
            });
        }
        self.inductor(name, a.0, b.0, 1.0 / n_m_per_rad)
    }

    fn torque_source(
        &mut self,
        name: &str,
        node: RotNode,
        n_m: f64,
    ) -> Result<ElementId, NetError> {
        self.current_source(name, NodeId::GROUND, node.0, n_m)
    }

    fn thermal_capacity(
        &mut self,
        name: &str,
        node: ThermalNode,
        j_per_k: f64,
    ) -> Result<ElementId, NetError> {
        self.capacitor(name, node.0, NodeId::GROUND, j_per_k)
    }

    fn thermal_resistance(
        &mut self,
        name: &str,
        a: ThermalNode,
        b: ThermalNode,
        k_per_w: f64,
    ) -> Result<ElementId, NetError> {
        self.resistor(name, a.0, b.0, k_per_w)
    }

    fn heat_source(
        &mut self,
        name: &str,
        node: ThermalNode,
        watts: f64,
    ) -> Result<ElementId, NetError> {
        self.current_source(name, NodeId::GROUND, node.0, watts)
    }

    fn dc_machine(
        &mut self,
        name: &str,
        sense: ElementId,
        emf_p: NodeId,
        emf_n: NodeId,
        shaft: RotNode,
        k: f64,
    ) -> Result<ElementId, NetError> {
        // Torque side: T = k·i, injected into the shaft node.
        self.cccs(format!("{name}.torque"), NodeId::GROUND, shaft.0, sense, k)?;
        // Back-EMF side: V = k·ω in series with the armature.
        self.vcvs(
            format!("{name}.bemf"),
            emf_p,
            emf_n,
            shaft.0,
            NodeId::GROUND,
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntegrationMethod, TransientSolver};

    #[test]
    fn mass_damper_terminal_velocity() {
        let mut ckt = Circuit::new();
        let body = ckt.mech_node("body");
        ckt.mass("m", body, 2.0).unwrap();
        ckt.damper("b", body, Circuit::mech_ground(), 4.0).unwrap();
        ckt.force_source("F", body, 8.0).unwrap();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        // τ = m/b = 0.5 s; terminal velocity F/b = 2 m/s.
        for _ in 0..50_000 {
            tr.step(1e-4).unwrap(); // 5 s
        }
        assert!((tr.voltage(body.0) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn mass_spring_oscillates_at_natural_frequency() {
        let mut ckt = Circuit::new();
        let body = ckt.mech_node("body");
        ckt.mass("m", body, 1.0).unwrap();
        ckt.spring("k", body, Circuit::mech_ground(), 100.0)
            .unwrap(); // ω₀ = 10 rad/s
        ckt.damper("b", body, Circuit::mech_ground(), 0.01).unwrap();
        // Kick: initial velocity via a force pulse modeled as IC on the
        // mass capacitor — use capacitor_ic through the raw API instead:
        let mut ckt2 = Circuit::new();
        let body2 = ckt2.mech_node("body");
        ckt2.capacitor_ic("m", body2.0, NodeId::GROUND, 1.0, 1.0)
            .unwrap(); // v(0) = 1 m/s
        ckt2.spring("k", body2, Circuit::mech_ground(), 100.0)
            .unwrap();
        ckt2.resistor("b", body2.0, NodeId::GROUND, 1e4).unwrap();
        let mut tr = TransientSolver::new(&ckt2, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        let mut crossings = 0;
        let mut prev = tr.voltage(body2.0);
        let t_end = 5.0;
        let h = 1e-3;
        for _ in 0..(t_end / h) as usize {
            tr.step(h).unwrap();
            let v = tr.voltage(body2.0);
            if prev < 0.0 && v >= 0.0 {
                crossings += 1;
            }
            prev = v;
        }
        // f₀ = 10/(2π) ≈ 1.59 Hz → ~8 upward crossings in 5 s.
        let freq = crossings as f64 / t_end;
        assert!(
            (freq - 10.0 / (2.0 * std::f64::consts::PI)).abs() < 0.15,
            "freq {freq}"
        );
        let _ = ckt; // first circuit unused beyond construction checks
    }

    #[test]
    fn thermal_rc_heats_up() {
        let mut ckt = Circuit::new();
        let die = ckt.thermal_node("die");
        ckt.thermal_capacity("c_th", die, 0.01).unwrap(); // 10 mJ/K
        ckt.thermal_resistance("r_th", die, Circuit::thermal_ground(), 50.0)
            .unwrap(); // 50 K/W
        ckt.heat_source("p_diss", die, 2.0).unwrap(); // 2 W
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::BackwardEuler).unwrap();
        tr.initialize_with_ic().unwrap();
        // Steady state ΔT = P·R = 100 K; τ = R·C = 0.5 s.
        for _ in 0..50_000 {
            tr.step(1e-4).unwrap(); // 5 s = 10 τ
        }
        assert!(
            (tr.voltage(die.0) - 100.0).abs() < 0.1,
            "ΔT = {}",
            tr.voltage(die.0)
        );
    }

    #[test]
    fn negative_parameters_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.mech_node("a");
        assert!(ckt.mass("m", a, -1.0).is_err());
        assert!(ckt.damper("b", a, Circuit::mech_ground(), 0.0).is_err());
        assert!(ckt.spring("k", a, Circuit::mech_ground(), -3.0).is_err());
        let r = ckt.rot_node("r");
        assert!(ckt.inertia("j", r, 0.0).is_err());
        assert!(ckt.rot_damper("b", r, Circuit::rot_ground(), -1.0).is_err());
    }

    #[test]
    fn dc_motor_reaches_expected_steady_speed() {
        // Armature: V → R → sense(0 V) → back-EMF → ground.
        // Mechanics: inertia + friction on the shaft.
        let mut ckt = Circuit::new();
        let vcc = ckt.node("vcc");
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        let shaft = ckt.rot_node("shaft");
        let k = 0.1; // N·m/A and V·s/rad
        let r_arm = 2.0;
        let friction = 0.01;
        ckt.voltage_source("Vs", vcc, NodeId::GROUND, 12.0).unwrap();
        ckt.resistor("Ra", vcc, n1, r_arm).unwrap();
        let sense = ckt.voltage_source("Isense", n1, n2, 0.0).unwrap();
        ckt.inertia("J", shaft, 0.001).unwrap();
        ckt.rot_damper("Bf", shaft, Circuit::rot_ground(), friction)
            .unwrap();
        ckt.dc_machine("M1", sense, n2, NodeId::GROUND, shaft, k)
            .unwrap();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        for _ in 0..100_000 {
            tr.step(5e-5).unwrap(); // 5 s
        }
        // Steady state: ω = k·V / (k² + R·B).
        let omega_expect = k * 12.0 / (k * k + r_arm * friction);
        let omega = tr.voltage(shaft.0);
        assert!(
            (omega - omega_expect).abs() / omega_expect < 0.01,
            "ω = {omega}, expected {omega_expect}"
        );
    }
}
