//! Small-signal noise analysis.
//!
//! Phase 1 of the paper includes "transient, small-signal AC **and noise**
//! simulation". Each resistive element contributes thermal noise
//! (`4kT/R` A²/Hz as a parallel current source) and each diode shot noise
//! (`2qI_D`). The output noise spectral density is computed with the
//! adjoint (transpose) method: one factorization of `Aᵀ` per frequency
//! yields the transfer from *every* noise injection point to the output in
//! a single solve.

use crate::ac::assemble_ac;
use crate::assembly::{MnaSystem, SolverBackend};
use crate::dcop::DcSolution;
use crate::mna::MnaLayout;
use crate::{Circuit, ElementKind, NetError, NodeId};
use ams_math::{Complex64, DVec};

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;
/// Elementary charge (C).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;
/// Analysis temperature (K).
pub const NOISE_TEMP: f64 = 300.0;

/// Noise contribution of one element at one frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseContribution {
    /// Element name.
    pub element: String,
    /// Contribution to the output noise voltage PSD, V²/Hz.
    pub output_psd: f64,
}

/// Output-referred noise at one frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisePoint {
    /// Frequency in Hz.
    pub freq_hz: f64,
    /// Total output noise voltage PSD, V²/Hz.
    pub total_psd: f64,
    /// Per-element breakdown (same order as circuit elements that
    /// generate noise).
    pub contributions: Vec<NoiseContribution>,
}

impl NoisePoint {
    /// Output noise voltage spectral density, V/√Hz.
    pub fn density(&self) -> f64 {
        self.total_psd.sqrt()
    }
}

/// Result of a noise sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseAnalysis {
    /// One point per analysis frequency.
    pub points: Vec<NoisePoint>,
}

impl NoiseAnalysis {
    /// Integrates the total output noise power over the analysis band
    /// using trapezoidal integration, returning RMS volts.
    pub fn integrated_rms(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let mut power = 0.0;
        for w in self.points.windows(2) {
            let df = w[1].freq_hz - w[0].freq_hz;
            power += 0.5 * (w[0].total_psd + w[1].total_psd) * df;
        }
        power.sqrt()
    }
}

impl Circuit {
    /// Computes the output-referred noise voltage PSD at `output` over the
    /// given frequencies, linearized at the operating point `op`.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] if `output` is ground or out of range.
    /// * [`NetError::Singular`] for unsolvable topologies.
    pub fn noise_analysis(
        &self,
        op: &DcSolution,
        output: NodeId,
        freqs_hz: &[f64],
    ) -> Result<NoiseAnalysis, NetError> {
        self.noise_analysis_with(op, output, freqs_hz, SolverBackend::Auto)
    }

    /// [`Circuit::noise_analysis`] with an explicit linear-solver
    /// backend. The sparse backend solves the adjoint system directly
    /// over the factors of `A` (a transpose solve) — the matrix is never
    /// explicitly transposed and the symbolic analysis is shared by the
    /// whole sweep.
    ///
    /// # Errors
    ///
    /// See [`Circuit::noise_analysis`].
    pub fn noise_analysis_with(
        &self,
        op: &DcSolution,
        output: NodeId,
        freqs_hz: &[f64],
        backend: SolverBackend,
    ) -> Result<NoiseAnalysis, NetError> {
        let layout = MnaLayout::build(self);
        let out_var = layout.node_var(output).ok_or(NetError::UnknownNode {
            index: output.index(),
        })?;
        if output.index() >= layout.n_nodes {
            return Err(NetError::UnknownNode {
                index: output.index(),
            });
        }
        let switches = self.initial_switch_states();
        let n = layout.n_unknowns;

        // Collect noise generators: (element index, p, n, PSD in A²/Hz).
        let mut generators = Vec::new();
        for (idx, e) in self.elements().iter().enumerate() {
            match &e.kind {
                ElementKind::Resistor { ohms } => {
                    generators.push((idx, e.p, e.n, 4.0 * BOLTZMANN * NOISE_TEMP / ohms));
                }
                ElementKind::Switch { r_on, r_off, .. } => {
                    let r = if switches[idx] { *r_on } else { *r_off };
                    generators.push((idx, e.p, e.n, 4.0 * BOLTZMANN * NOISE_TEMP / r));
                }
                ElementKind::Diode { .. } => {
                    let id = op.diode_ops[idx].map(|d| d.i.abs()).unwrap_or(0.0);
                    generators.push((idx, e.p, e.n, 2.0 * ELEMENTARY_CHARGE * id));
                }
                ElementKind::Nmos { .. } => {
                    // Channel thermal noise: 8kT·gm/3 in saturation.
                    let gm = op.nmos_ops[idx].map(|m| m.a_g.abs()).unwrap_or(0.0);
                    generators.push((idx, e.p, e.n, 8.0 / 3.0 * BOLTZMANN * NOISE_TEMP * gm));
                }
                _ => {}
            }
        }

        let mut points = Vec::with_capacity(freqs_hz.len());
        let mut sys = MnaSystem::<Complex64>::new(n, backend.use_sparse(n), |st| {
            assemble_ac(self, &layout, op, &switches, 1.0, st)
        });
        let mut e_out = DVec::<Complex64>::zeros(n);
        e_out[out_var] = Complex64::ONE;
        for &f in freqs_hz {
            let omega = 2.0 * std::f64::consts::PI * f;
            sys.assemble(|st| assemble_ac(self, &layout, op, &switches, omega, st));
            sys.factor(true)?;
            // Adjoint: solve Aᵀ·y = e_out; the transfer impedance from a
            // unit current injected from p→n to V(out) is y(n) − y(p).
            let y = sys.solve_transpose(&e_out)?;

            let mut total = 0.0;
            let mut contributions = Vec::with_capacity(generators.len());
            for &(idx, p, nn, psd) in &generators {
                let yp = layout.node_var(p).map_or(Complex64::ZERO, |i| y[i]);
                let yn = layout.node_var(nn).map_or(Complex64::ZERO, |i| y[i]);
                let z = yn - yp;
                let contrib = z.norm_sqr() * psd;
                total += contrib;
                contributions.push(NoiseContribution {
                    element: self.elements()[idx].name.clone(),
                    output_psd: contrib,
                });
            }
            points.push(NoisePoint {
                freq_hz: f,
                total_psd: total,
                contributions,
            });
        }
        Ok(NoiseAnalysis { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistor_thermal_noise_floor() {
        // A 1 kΩ resistor to ground, driven by an ideal source through a
        // 0-impedance: the output node sees only R's own noise with the
        // source shorting it… instead use an open R to ground: V_out PSD =
        // 4kTR.
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.resistor("R1", out, Circuit::GROUND, 1e3).unwrap();
        // A large capacitor? No: plain R needs a defined node — R to
        // ground alone gives V(out) = 0 DC and PSD = 4kTR·|Z|²/R²  with
        // Z = R: PSD = 4kTR.
        let op = ckt.dc_operating_point().unwrap();
        let na = ckt.noise_analysis(&op, out, &[1e3]).unwrap();
        let expected = 4.0 * BOLTZMANN * NOISE_TEMP * 1e3; // ≈ 1.66e-17 V²/Hz
        assert!(
            (na.points[0].total_psd - expected).abs() / expected < 1e-9,
            "{} vs {expected}",
            na.points[0].total_psd
        );
    }

    #[test]
    fn divider_noise_is_parallel_resistance() {
        // Two resistors forming a divider from an ideal (noiseless) source:
        // output noise = 4kT·(R1 ∥ R2).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, out, 2e3).unwrap();
        ckt.resistor("R2", out, Circuit::GROUND, 2e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let na = ckt.noise_analysis(&op, out, &[1e3]).unwrap();
        let r_par = 1e3;
        let expected = 4.0 * BOLTZMANN * NOISE_TEMP * r_par;
        assert!(
            (na.points[0].total_psd - expected).abs() / expected < 1e-9,
            "{} vs {expected}",
            na.points[0].total_psd
        );
        // Both resistors contribute equally.
        let c = &na.points[0].contributions;
        assert_eq!(c.len(), 2);
        assert!((c[0].output_psd - c[1].output_psd).abs() / c[0].output_psd < 1e-9);
    }

    #[test]
    fn rc_filter_shapes_noise_and_integrates_to_kt_over_c() {
        // The classic kT/C result: total integrated noise of an RC filter
        // is √(kT/C), independent of R.
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.resistor("R1", out, Circuit::GROUND, 1e3).unwrap();
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-9).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        // Integrate from near-DC to far beyond the corner (159 kHz).
        let freqs: Vec<f64> = (0..2000).map(|i| 10.0 * 1.01f64.powi(i)).collect();
        let na = ckt.noise_analysis(&op, out, &freqs).unwrap();
        let rms = na.integrated_rms();
        let expected = (BOLTZMANN * NOISE_TEMP / 1e-9).sqrt(); // ≈ 2.03 µV
        assert!(
            (rms - expected).abs() / expected < 0.05,
            "rms {rms} vs kT/C {expected}"
        );
    }

    #[test]
    fn diode_shot_noise_present_when_biased() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.voltage_source("V1", a, Circuit::GROUND, 5.0).unwrap();
        ckt.resistor("R1", a, d, 4.3e3).unwrap();
        ckt.diode("D1", d, Circuit::GROUND, 1e-14, 1.0).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        let na = ckt.noise_analysis(&op, d, &[1e3]).unwrap();
        let shot = na.points[0]
            .contributions
            .iter()
            .find(|c| c.element == "D1")
            .unwrap();
        assert!(shot.output_psd > 0.0);
        // Shot noise through r_d ∥ R: sanity-check the order of magnitude.
        let id = (5.0 - op.voltage(d)) / 4.3e3;
        let rd = 0.02585 / id;
        let r_eff = rd * 4.3e3 / (rd + 4.3e3);
        let expected = 2.0 * ELEMENTARY_CHARGE * id * r_eff * r_eff;
        assert!(
            (shot.output_psd - expected).abs() / expected < 0.05,
            "{} vs {expected}",
            shot.output_psd
        );
    }

    #[test]
    fn ground_output_rejected() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.resistor("R1", out, Circuit::GROUND, 1e3).unwrap();
        let op = ckt.dc_operating_point().unwrap();
        assert!(ckt.noise_analysis(&op, Circuit::GROUND, &[1e3]).is_err());
    }

    #[test]
    fn empty_band_integrates_to_zero() {
        let na = NoiseAnalysis { points: vec![] };
        assert_eq!(na.integrated_rms(), 0.0);
    }
}
