//! Serializable transient-solver snapshots for copy-on-write forking.
//!
//! A [`Checkpoint`] freezes everything a [`TransientSolver`]
//! (crate::TransientSolver) needs to continue a run bit-identically:
//! the MNA solution vector, simulation time, per-element companion
//! history, switch states, external inputs, the backward-Euler damping
//! counter, the accumulated step counters and the adaptive controller's
//! current step proposal. It deliberately does **not** capture:
//!
//! * the factored system matrix — forked solvers refactor on their
//!   first step (adopt a [`SymbolicFactor`](crate::SymbolicFactor) to
//!   make that a numeric refactor), which only perturbs
//!   fingerprint-excluded *policy* counters;
//! * the linear-solver `SolveStats` — policy counters by the same
//!   argument;
//! * the circuit itself — a checkpoint restores into any solver over a
//!   **value-variant of the same topology** (same unknown/element/
//!   input/switch counts); restoring asserts the dimensions match.
//!
//! The wire format ([`Checkpoint::to_bytes`]) is a versioned
//! little-endian binary layout with no external dependencies, so
//! checkpoints can be held in byte-budgeted caches (`ams-serve`'s
//! topology cache) or shipped across processes.

use crate::NetError;
use crate::TransientStats;

/// Magic + version tag leading every serialized checkpoint.
const MAGIC: &[u8; 8] = b"AMSCKP01";

/// A frozen transient-solver state: the fork point of prefix-shared
/// sweeps and the suspend point of restartable service jobs.
///
/// Produced by [`TransientSolver::checkpoint`]
/// (crate::TransientSolver::checkpoint), consumed by
/// [`TransientSolver::restore_checkpoint`]
/// (crate::TransientSolver::restore_checkpoint). Cloning is cheap
/// relative to a solve (a few `Vec<f64>` clones) — the copy-on-write
/// idiom is "clone the checkpoint, restore into a fresh solver per
/// fork".
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// MNA solution vector (node voltages + branch currents).
    pub(crate) x: Vec<f64>,
    /// Simulation time in seconds.
    pub(crate) time: f64,
    /// External source input values.
    pub(crate) ext: Vec<f64>,
    /// Switch states, one per circuit element slot.
    pub(crate) switches: Vec<bool>,
    /// Per-element companion history `(v, i)`.
    pub(crate) state: Vec<(f64, f64)>,
    /// Steps still forced to backward Euler.
    pub(crate) force_be: u32,
    /// Accumulated step counters at the fork point. `solve` is *not*
    /// serialized (policy counters, excluded from report fingerprints).
    pub(crate) stats: TransientStats,
    /// The adaptive controller's next step proposal, when the solver
    /// was checkpointed mid-adaptive-run.
    pub(crate) adaptive_h: Option<f64>,
    /// Whether the solver had computed its initial condition.
    pub(crate) initialized: bool,
}

impl Checkpoint {
    /// Simulation time of the fork point, in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of MNA unknowns captured (restore requires an identical
    /// layout).
    pub fn dim(&self) -> usize {
        self.x.len()
    }

    /// Step counters at the fork point (restored into the fork so a
    /// continued run accumulates to run-from-zero totals).
    pub fn stats(&self) -> TransientStats {
        self.stats
    }

    /// Estimated resident size in bytes — the currency of byte-budgeted
    /// checkpoint caches, not an exact allocation count.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Checkpoint>()
            + self.x.len() * 8
            + self.ext.len() * 8
            + self.switches.len()
            + self.state.len() * 16
    }

    /// Serializes to the versioned little-endian wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.approx_bytes() + 64);
        out.extend_from_slice(MAGIC);
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        let push_f64 = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_le_bytes());
        push_u64(&mut out, self.x.len() as u64);
        push_u64(&mut out, self.ext.len() as u64);
        push_u64(&mut out, self.switches.len() as u64);
        push_u64(&mut out, self.state.len() as u64);
        push_f64(&mut out, self.time);
        out.extend_from_slice(&self.force_be.to_le_bytes());
        out.push(u8::from(self.initialized));
        match self.adaptive_h {
            Some(h) => {
                out.push(1);
                push_f64(&mut out, h);
            }
            None => {
                out.push(0);
                push_f64(&mut out, 0.0);
            }
        }
        push_u64(&mut out, self.stats.steps);
        push_u64(&mut out, self.stats.rejected);
        push_u64(&mut out, self.stats.newton_iterations);
        push_u64(&mut out, self.stats.factorizations);
        for &v in &self.x {
            push_f64(&mut out, v);
        }
        for &v in &self.ext {
            push_f64(&mut out, v);
        }
        for &(v, i) in &self.state {
            push_f64(&mut out, v);
            push_f64(&mut out, i);
        }
        for &s in &self.switches {
            out.push(u8::from(s));
        }
        out
    }

    /// Deserializes a checkpoint produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidValue`] on a bad magic/version tag or a
    /// truncated buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, NetError> {
        let bad = |reason: &str| NetError::InvalidValue {
            element: "checkpoint".to_string(),
            reason: reason.to_string(),
        };
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(8).ok_or_else(|| bad("truncated header"))? != MAGIC {
            return Err(bad("bad magic/version tag"));
        }
        let n_x = cur.u64().ok_or_else(|| bad("truncated header"))? as usize;
        let n_ext = cur.u64().ok_or_else(|| bad("truncated header"))? as usize;
        let n_sw = cur.u64().ok_or_else(|| bad("truncated header"))? as usize;
        let n_state = cur.u64().ok_or_else(|| bad("truncated header"))? as usize;
        let time = cur.f64().ok_or_else(|| bad("truncated header"))?;
        let force_be = cur.u32().ok_or_else(|| bad("truncated header"))?;
        let initialized = cur.u8().ok_or_else(|| bad("truncated header"))? != 0;
        let has_h = cur.u8().ok_or_else(|| bad("truncated header"))? != 0;
        let h = cur.f64().ok_or_else(|| bad("truncated header"))?;
        let stats = TransientStats {
            steps: cur.u64().ok_or_else(|| bad("truncated stats"))?,
            rejected: cur.u64().ok_or_else(|| bad("truncated stats"))?,
            newton_iterations: cur.u64().ok_or_else(|| bad("truncated stats"))?,
            factorizations: cur.u64().ok_or_else(|| bad("truncated stats"))?,
            ..Default::default()
        };
        // Validate the declared lengths against the remaining payload
        // BEFORE allocating: a hostile length field must produce an
        // error, not an out-of-memory abort.
        let need = n_x
            .checked_mul(8)
            .and_then(|a| n_ext.checked_mul(8).and_then(|b| a.checked_add(b)))
            .and_then(|a| n_state.checked_mul(16).and_then(|b| a.checked_add(b)))
            .and_then(|a| a.checked_add(n_sw))
            .ok_or_else(|| bad("length overflow"))?;
        if bytes.len() - cur.pos != need {
            return Err(bad("payload length mismatch"));
        }
        let mut x = Vec::with_capacity(n_x);
        for _ in 0..n_x {
            x.push(cur.f64().ok_or_else(|| bad("truncated solution vector"))?);
        }
        let mut ext = Vec::with_capacity(n_ext);
        for _ in 0..n_ext {
            ext.push(cur.f64().ok_or_else(|| bad("truncated inputs"))?);
        }
        let mut state = Vec::with_capacity(n_state);
        for _ in 0..n_state {
            let v = cur.f64().ok_or_else(|| bad("truncated element state"))?;
            let i = cur.f64().ok_or_else(|| bad("truncated element state"))?;
            state.push((v, i));
        }
        let mut switches = Vec::with_capacity(n_sw);
        for _ in 0..n_sw {
            switches.push(cur.u8().ok_or_else(|| bad("truncated switches"))? != 0);
        }
        Ok(Checkpoint {
            x,
            time,
            ext,
            switches,
            state,
            force_be,
            stats,
            adaptive_h: has_h.then_some(h),
            initialized,
        })
    }
}

/// Minimal byte-slice reader for [`Checkpoint::from_bytes`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            x: vec![1.5, -2.25, 0.0],
            time: 3.5e-6,
            ext: vec![0.75],
            switches: vec![true, false],
            state: vec![(0.5, -0.125), (0.0, 0.0)],
            force_be: 1,
            stats: TransientStats {
                steps: 42,
                rejected: 3,
                newton_iterations: 42,
                factorizations: 2,
                ..Default::default()
            },
            adaptive_h: Some(1e-9),
            initialized: true,
        }
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let cp = sample();
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(cp, back);
        // And bit-stable: serializing the round-tripped checkpoint
        // reproduces the same bytes.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn none_adaptive_h_round_trips() {
        let mut cp = sample();
        cp.adaptive_h = None;
        let back = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(back.adaptive_h, None);
        assert_eq!(cp, back);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicked() {
        assert!(Checkpoint::from_bytes(b"").is_err());
        assert!(Checkpoint::from_bytes(b"WRONGMAG").is_err());
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Checkpoint::from_bytes(&bytes).is_err());
        // A length field pointing past the buffer must error, not
        // allocate or slice out of bounds.
        let mut huge = sample().to_bytes();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Checkpoint::from_bytes(&huge).is_err());
    }

    #[test]
    fn approx_bytes_tracks_payload() {
        let cp = sample();
        assert!(cp.approx_bytes() >= 3 * 8 + 8 + 2 + 2 * 16);
    }
}
