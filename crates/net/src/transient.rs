//! Transient (time-domain) analysis of conservative networks.
//!
//! Energy-storage elements are replaced per step by their companion
//! models (Norton/Thévenin equivalents of the integration rule), turning
//! each timestep into a linear — or, with diodes, Newton-iterated — MNA
//! solve. Two execution paths matter for the paper's claims:
//!
//! * **Linear networks** ("Such networks can be simulated using efficient
//!   dedicated algorithms", §3/O5): the system matrix is constant for a
//!   fixed step, so it is factored *once* and only the right-hand side is
//!   rebuilt per step — experiment E5 benchmarks exactly this.
//! * **Stiff/nonlinear networks** (phase 2/3): Newton iteration per step
//!   and local-truncation-error-controlled variable steps
//!   ([`TransientSolver::run_adaptive`]) — experiment E3.

use crate::assembly::{MnaSystem, SolverBackend, Stamp};
use crate::checkpoint::Checkpoint;
use crate::dcop::{diode_iv, DcOptions, GMIN};
use crate::devices::nmos_linearize;
use crate::mna::{
    stamp_branch_kcl, stamp_branch_voltage, stamp_conductance, stamp_current, stamp_mos,
    stamp_vccs, MnaLayout,
};
use crate::{Circuit, ElementId, ElementKind, NetError, NodeId};
use ams_math::{DVec, SolveStats};
use ams_monitor::MonitorBank;
use ams_scope::{SpanKind, TraceEvent, Tracer};

/// Seconds → femtoseconds, saturating (the tracer's time base).
#[inline]
fn fs(t: f64) -> u64 {
    (t * 1e15) as u64
}

/// Integration rule for the companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrationMethod {
    /// Backward Euler: first order, L-stable, damps switching ringing.
    BackwardEuler,
    /// Trapezoidal: second order, A-stable (SPICE default).
    #[default]
    Trapezoidal,
}

/// Counters accumulated by a transient run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransientStats {
    /// Accepted timesteps.
    pub steps: u64,
    /// Steps rejected by the adaptive error controller.
    pub rejected: u64,
    /// Newton iterations across all steps (1 per step for linear
    /// circuits).
    pub newton_iterations: u64,
    /// Matrix factorizations performed (≪ steps on the linear fast path).
    pub factorizations: u64,
    /// Linear-solver counters (sparse symbolic/numeric split, pattern
    /// sizes, reused factorizations).
    pub solve: SolveStats,
}

#[derive(Debug, Clone, Copy, Default)]
struct EnergyState {
    v: f64,
    i: f64,
}

#[derive(Debug, Clone)]
struct Snapshot {
    x: DVec<f64>,
    time: f64,
    state: Vec<EnergyState>,
    force_be: u32,
}

/// Options controlling [`TransientSolver::run_adaptive`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveOptions {
    /// Relative error tolerance on node voltages/branch currents.
    pub rel_tol: f64,
    /// Absolute error tolerance.
    pub abs_tol: f64,
    /// Minimum step (underflow → error).
    pub min_step: f64,
    /// Maximum step.
    pub max_step: f64,
    /// Initial step.
    pub initial_step: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rel_tol: 1e-4,
            abs_tol: 1e-7,
            min_step: 1e-15,
            max_step: f64::INFINITY,
            initial_step: 1e-9,
        }
    }
}

/// A stepping transient solver over one circuit.
///
/// # Example
///
/// RC charging curve:
///
/// ```
/// use ams_net::{Circuit, IntegrationMethod, TransientSolver};
///
/// # fn main() -> Result<(), ams_net::NetError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let out = ckt.node("out");
/// ckt.voltage_source("V1", a, Circuit::GROUND, 1.0)?;
/// ckt.resistor("R1", a, out, 1e3)?;
/// ckt.capacitor_ic("C1", out, Circuit::GROUND, 1e-6, 0.0)?; // τ = 1 ms
/// let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal)?;
/// tr.initialize_with_ic()?;
/// for _ in 0..1000 {
///     tr.step(1e-6)?; // 1 ms total
/// }
/// let expected = 1.0 - (-1.0f64).exp();
/// assert!((tr.voltage(out) - expected).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TransientSolver {
    circuit: Circuit,
    layout: MnaLayout,
    method: IntegrationMethod,
    x: DVec<f64>,
    time: f64,
    ext: Vec<f64>,
    switches: Vec<bool>,
    /// Per-element capacitor/inductor history (unused slots default).
    state: Vec<EnergyState>,
    nonlinear: bool,
    /// Steps remaining that are forced to backward Euler (after
    /// discontinuities such as switch toggles).
    force_be: u32,
    /// The backing linear system (pattern, values, cached factors);
    /// created lazily on the first assembly.
    sys: Option<MnaSystem<f64>>,
    /// `(h, method, switches)` of the factorization currently cached by
    /// `sys` on the linear fast path.
    factor_key: Option<FactorKey>,
    /// Linear-solver backend selection (dense / sparse / size-based).
    pub backend: SolverBackend,
    /// Set to disable factorization reuse (for benchmarking E5).
    pub reuse_factorization: bool,
    /// A symbolic analysis adopted from a topology-identical sibling
    /// solver, consumed when the backing system is first created.
    symbolic_hint: Option<ams_math::SparseLu<f64>>,
    stats: TransientStats,
    initialized: bool,
    /// The adaptive controller's current step proposal, persisted
    /// across [`TransientSolver::run_adaptive`] calls so a checkpointed
    /// run resumes with the step it would have tried next.
    adaptive_h: Option<f64>,
    /// Span recorder (disabled by default: one branch per hook).
    tracer: Tracer,
    /// Attached streaming assertion monitors (`None` = one branch per
    /// accepted step, the same disabled-cost discipline as `tracer`).
    monitors: Option<MonitorTap>,
}

/// A monitor bank bound to this solver's unknown vector: channel `ch`
/// of the bank reads MNA variable `vars[ch]` (`None` = ground, 0 V).
#[derive(Debug, Clone)]
struct MonitorTap {
    bank: MonitorBank,
    vars: Vec<Option<usize>>,
}

/// An opaque, cloneable symbolic sparse-LU analysis extracted from one
/// [`TransientSolver`] and adoptable by solvers over value-variants of
/// the same circuit topology (same elements, different parameters).
///
/// The batched-sweep amortization primitive: the first scenario of a
/// topology-invariant family pays the symbolic analysis (ordering,
/// pivot sequence, fill pattern); every other scenario adopts it and
/// pays only a numeric refactorization per matrix change.
#[derive(Debug, Clone)]
pub struct SymbolicFactor(ams_math::SparseLu<f64>);

impl SymbolicFactor {
    /// Dimension of the factored system (number of MNA unknowns).
    pub fn dim(&self) -> usize {
        self.0.dim()
    }

    /// Estimated resident size in bytes. The currency of byte-budgeted
    /// factor caches (`ams-serve`'s topology cache), not an exact
    /// allocation count. Delegates to
    /// [`SparseLu::approx_bytes`](ams_math::SparseLu::approx_bytes),
    /// which charges value arrays at their true scalar width — a
    /// lane-widened factor ([`crate::lane::LaneSymbolicFactor`]) reports
    /// `K×` the value bytes, so lane-mode factors cannot slip under an
    /// LRU byte budget at scalar prices.
    pub fn approx_bytes(&self) -> usize {
        self.0.approx_bytes()
    }

    /// The wrapped sparse factorization (crate-internal: the lane
    /// solver widens it via `cast_symbolic`).
    pub(crate) fn inner(&self) -> &ams_math::SparseLu<f64> {
        &self.0
    }
}

/// Everything the linear-path system matrix depends on: step size,
/// effective integration rule and switch states.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FactorKey {
    h_bits: u64,
    be: bool,
    switches: Vec<bool>,
}

impl TransientSolver {
    /// Creates a solver for the circuit.
    ///
    /// # Errors
    ///
    /// Currently always succeeds for a valid circuit; returns
    /// [`NetError`] variants for future element kinds that cannot be
    /// simulated in the time domain.
    pub fn new(circuit: &Circuit, method: IntegrationMethod) -> Result<Self, NetError> {
        let layout = MnaLayout::build(circuit);
        let nonlinear = circuit.elements().iter().any(|e| e.is_nonlinear());
        Ok(TransientSolver {
            circuit: circuit.clone(),
            layout: layout.clone(),
            method,
            x: DVec::zeros(layout.n_unknowns),
            time: 0.0,
            ext: vec![0.0; circuit.external_input_count()],
            switches: circuit.initial_switch_states(),
            state: vec![EnergyState::default(); circuit.element_count()],
            nonlinear,
            force_be: 0,
            sys: None,
            factor_key: None,
            backend: SolverBackend::default(),
            reuse_factorization: true,
            symbolic_hint: None,
            stats: TransientStats::default(),
            initialized: false,
            adaptive_h: None,
            tracer: Tracer::off(),
            monitors: None,
        })
    }

    /// Attaches a compiled monitor bank: channel `ch` of the bank reads
    /// node `nodes[ch]` (pair them with [`MonitorBank::channels`],
    /// resolved via [`Circuit::find_node`]). The bank is fed once per
    /// *accepted* step — trial and half steps of the adaptive
    /// controller never reach it — replacing any bank attached earlier.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` does not pair 1:1 with the bank's channels
    /// or names a node outside the circuit.
    pub fn attach_monitors(&mut self, bank: MonitorBank, nodes: &[NodeId]) {
        assert_eq!(
            bank.channels().len(),
            nodes.len(),
            "one node per monitor channel"
        );
        let vars = nodes
            .iter()
            .map(|&n| {
                assert!(n.index() < self.layout.n_nodes, "node out of range");
                self.layout.node_var(n)
            })
            .collect();
        self.monitors = Some(MonitorTap { bank, vars });
    }

    /// The attached monitor bank, when present.
    pub fn monitor_bank(&self) -> Option<&MonitorBank> {
        self.monitors.as_ref().map(|t| &t.bank)
    }

    /// Detaches and returns the monitor bank (with all accumulated
    /// automaton state), when present.
    pub fn take_monitors(&mut self) -> Option<MonitorBank> {
        self.monitors.take().map(|t| t.bank)
    }

    /// Feeds the attached monitors the current solution. One branch
    /// when no bank is attached.
    #[inline]
    fn feed_monitors(&mut self) {
        if let Some(tap) = self.monitors.as_mut() {
            let t = self.time;
            for (ch, var) in tap.vars.iter().enumerate() {
                let v = match *var {
                    Some(i) => self.x[i],
                    None => 0.0,
                };
                tap.bank.feed(ch, t, v);
            }
        }
    }

    /// Enables or disables span tracing: MNA assemble/factor/solve
    /// spans, Newton-solve instants and adaptive accept/reject events,
    /// stamped with simulated time. Disabled (the default), every hook
    /// costs a single branch.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// `true` when span tracing is enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Drains the recorded trace events (empty when tracing is off).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.tracer.take_events()
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Extracts the sparse symbolic analysis of this solver's transient
    /// system, if one has been computed (sparse backend, at least one
    /// factored step). Solvers over value-variants of the same circuit
    /// topology can [adopt](TransientSolver::adopt_symbolic_factor) it
    /// to replace their own symbolic analysis with a numeric refactor.
    pub fn symbolic_factor(&self) -> Option<SymbolicFactor> {
        self.sys
            .as_ref()
            .and_then(|s| s.export_sparse_factor())
            .map(SymbolicFactor)
    }

    /// Adopts a symbolic analysis extracted from a solver over the same
    /// circuit topology: this solver's first sparse factorization
    /// becomes a numeric refactor (counted in
    /// [`SolveStats::numeric_refactors`](ams_math::SolveStats), not
    /// `symbolic_analyses`). A hint whose pattern does not match is
    /// ignored and a fresh symbolic analysis happens as usual.
    pub fn adopt_symbolic_factor(&mut self, hint: &SymbolicFactor) {
        self.symbolic_hint = Some(hint.0.clone());
    }

    /// Accumulated statistics (including the live linear-solver
    /// counters).
    pub fn stats(&self) -> TransientStats {
        let mut s = self.stats;
        if let Some(sys) = &self.sys {
            s.solve.merge(&sys.stats());
        }
        s
    }

    /// Sets an external source input (takes effect from the next step).
    ///
    /// # Panics
    ///
    /// Panics if the handle is out of range.
    pub fn set_input(&mut self, input: crate::InputId, value: f64) {
        self.ext[input.index()] = value;
    }

    /// Sets a switch state; the next step uses backward Euler once to
    /// damp the discontinuity.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownElement`] if `elem` is not a switch.
    pub fn set_switch(&mut self, elem: ElementId, on: bool) -> Result<(), NetError> {
        match self.circuit.elements().get(elem.index()).map(|e| &e.kind) {
            Some(ElementKind::Switch { .. }) => {
                if self.switches[elem.index()] != on {
                    self.switches[elem.index()] = on;
                    self.force_be = 1;
                    self.factor_key = None;
                }
                Ok(())
            }
            _ => Err(NetError::UnknownElement {
                index: elem.index(),
                what: "switch",
            }),
        }
    }

    /// The voltage of a node at the current time.
    ///
    /// # Panics
    ///
    /// Panics for nodes outside the circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        assert!(node.index() < self.layout.n_nodes, "node out of range");
        match self.layout.node_var(node) {
            None => 0.0,
            Some(i) => self.x[i],
        }
    }

    /// The current through an element at the current time (branch
    /// elements, resistors, switches, capacitors, inductors, diodes).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownElement`] for unsupported kinds.
    pub fn current(&self, elem: ElementId) -> Result<f64, NetError> {
        let e = self
            .circuit
            .elements()
            .get(elem.index())
            .ok_or(NetError::UnknownElement {
                index: elem.index(),
                what: "current",
            })?;
        if let Some(b) = self.layout.branch_var(elem) {
            return Ok(self.x[b]);
        }
        let v = self.voltage(e.p) - self.voltage(e.n);
        match &e.kind {
            ElementKind::Resistor { ohms } => Ok(v / ohms),
            ElementKind::Capacitor { .. } => Ok(self.state[elem.index()].i),
            ElementKind::Switch { r_on, r_off, .. } => {
                let r = if self.switches[elem.index()] {
                    *r_on
                } else {
                    *r_off
                };
                Ok(v / r)
            }
            ElementKind::Diode { is_sat, n } => Ok(diode_iv(v, *is_sat, *n).0 + GMIN * v),
            ElementKind::Nmos {
                gate,
                kp,
                vt,
                lambda,
            } => {
                let vg = self.voltage(*gate);
                let vd = self.voltage(e.p);
                let vs = self.voltage(e.n);
                Ok(nmos_linearize(vg, vd, vs, *kp, *vt, *lambda).id + GMIN * v)
            }
            _ => Err(NetError::UnknownElement {
                index: elem.index(),
                what: "computable branch current",
            }),
        }
    }

    /// Initializes from the DC operating point (the paper's consistent
    /// quiescent state), honoring element initial conditions where given.
    ///
    /// # Errors
    ///
    /// Propagates DC solve failures.
    pub fn initialize_dc(&mut self) -> Result<(), NetError> {
        let op = self
            .circuit
            .dc_operating_point_with(&self.ext, &self.switches)?;
        self.x = op.x.clone();
        self.seed_state_from_solution(true);
        self.time = 0.0;
        self.initialized = true;
        self.factor_key = None;
        self.adaptive_h = None;
        Ok(())
    }

    /// Initializes using element initial conditions only (SPICE `UIC`):
    /// capacitors at their `ic` (default 0 V), inductors at their `ic`
    /// (default 0 A); no DC solve is performed.
    ///
    /// # Errors
    ///
    /// Infallible today; reserved for future validation.
    pub fn initialize_with_ic(&mut self) -> Result<(), NetError> {
        self.x = DVec::zeros(self.layout.n_unknowns);
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            match e.kind {
                ElementKind::Capacitor { ic, .. } => {
                    self.state[idx] = EnergyState {
                        v: ic.unwrap_or(0.0),
                        i: 0.0,
                    };
                }
                ElementKind::Inductor { ic, .. } => {
                    self.state[idx] = EnergyState {
                        v: 0.0,
                        i: ic.unwrap_or(0.0),
                    };
                }
                _ => {}
            }
        }
        self.time = 0.0;
        self.force_be = 1; // first step from possibly inconsistent state
        self.initialized = true;
        self.factor_key = None;
        self.adaptive_h = None;
        Ok(())
    }

    fn seed_state_from_solution(&mut self, honor_ic: bool) {
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            match e.kind {
                ElementKind::Capacitor { ic, .. } => {
                    let v_sol = self.branch_voltage(e.p, e.n);
                    let v = if honor_ic { ic.unwrap_or(v_sol) } else { v_sol };
                    self.state[idx] = EnergyState { v, i: 0.0 };
                    if honor_ic && ic.is_some() {
                        self.force_be = 1;
                    }
                }
                ElementKind::Inductor { ic, .. } => {
                    let i_sol = self
                        .layout
                        .branch_var(ElementId(idx))
                        .map_or(0.0, |b| self.x[b]);
                    let i = if honor_ic { ic.unwrap_or(i_sol) } else { i_sol };
                    self.state[idx] = EnergyState { v: 0.0, i };
                    if honor_ic && ic.is_some() {
                        self.force_be = 1;
                    }
                }
                _ => {}
            }
        }
    }

    fn branch_voltage(&self, p: NodeId, n: NodeId) -> f64 {
        let vp = self.layout.node_var(p).map_or(0.0, |i| self.x[i]);
        let vn = self.layout.node_var(n).map_or(0.0, |i| self.x[i]);
        vp - vn
    }

    /// Advances the solution by one step of size `h` seconds.
    ///
    /// # Errors
    ///
    /// * [`NetError::InvalidValue`] for a non-positive step.
    /// * [`NetError::NoConvergence`] if the per-step Newton fails.
    /// * [`NetError::Singular`] for topology problems.
    pub fn step(&mut self, h: f64) -> Result<(), NetError> {
        if !self.initialized {
            self.initialize_dc()?;
        }
        if h <= 0.0 || !h.is_finite() {
            return Err(NetError::InvalidValue {
                element: "timestep".to_string(),
                reason: format!("step must be positive and finite, got {h}"),
            });
        }
        let be = self.force_be > 0 || matches!(self.method, IntegrationMethod::BackwardEuler);
        let t_new = self.time + h;
        let n = self.layout.n_unknowns;

        let x_new = if self.nonlinear {
            // Newton loop: reassemble and refactor each iteration.
            let mut x_iter = self.x.clone();
            let opts = DcOptions::default();
            let mut converged = false;
            let mut iters = 0;
            for _ in 0..opts.max_iter {
                iters += 1;
                self.assemble_and_factor(&x_iter, t_new, h, be, self.reuse_factorization)?;
                if self.tracer.is_enabled() {
                    self.tracer.begin(SpanKind::MnaSolve, fs(t_new));
                }
                let solved = self
                    .sys
                    .as_ref()
                    .expect("system just assembled")
                    .solve_rhs();
                if self.tracer.is_enabled() {
                    self.tracer.end(SpanKind::MnaSolve, fs(t_new));
                }
                let x_next = solved?;
                let mut done = true;
                for i in 0..n {
                    let d = (x_next[i] - x_iter[i]).abs();
                    if d > opts.v_tol + opts.rel_tol * x_next[i].abs().max(x_iter[i].abs()) {
                        done = false;
                        break;
                    }
                }
                let finite = x_next.is_finite();
                x_iter = x_next;
                if done && finite {
                    converged = true;
                    break;
                }
                if !finite {
                    break;
                }
            }
            self.stats.newton_iterations += iters;
            if self.tracer.is_enabled() {
                self.tracer
                    .instant(SpanKind::NewtonIteration, fs(t_new), iters);
            }
            if !converged {
                return Err(NetError::NoConvergence {
                    analysis: "transient step",
                    iterations: iters as usize,
                });
            }
            x_iter
        } else {
            // Linear fast path: matrix depends only on (h, method, switches).
            let key = FactorKey {
                h_bits: h.to_bits(),
                be,
                switches: self.switches.clone(),
            };
            let cache_ok = self.reuse_factorization
                && self.factor_key.as_ref() == Some(&key)
                && self
                    .sys
                    .as_ref()
                    .is_some_and(|s| s.is_sparse() == self.backend.use_sparse(n));
            if !cache_ok {
                let x = self.x.clone();
                self.assemble_and_factor(&x, t_new, h, be, self.reuse_factorization)?;
                self.factor_key = Some(key);
            }
            // (Re)build only the RHS and reuse the cached factors.
            let mut sys = self.sys.take().expect("system just ensured");
            sys.assemble_rhs(|st| self.assemble_rhs_only(st, t_new, h, be));
            if self.tracer.is_enabled() {
                self.tracer.begin(SpanKind::MnaSolve, fs(t_new));
            }
            let solved = sys.solve_rhs();
            if self.tracer.is_enabled() {
                self.tracer.end(SpanKind::MnaSolve, fs(t_new));
            }
            self.sys = Some(sys);
            self.stats.newton_iterations += 1;
            solved?
        };

        self.commit_step(x_new, t_new, h, be);
        Ok(())
    }

    /// Shared assemble-then-factor step of both the Newton and the
    /// linear paths: lazily creates the backing [`MnaSystem`] (recording
    /// the sparsity pattern once — the stamp sequence is
    /// topology-determined, so any state works), replays the assembly at
    /// iterate `x`, and factors. With `allow_reuse`, bitwise-identical
    /// matrix values provably reuse the cached factors.
    fn assemble_and_factor(
        &mut self,
        x: &DVec<f64>,
        t_new: f64,
        h: f64,
        be: bool,
        allow_reuse: bool,
    ) -> Result<(), NetError> {
        let n = self.layout.n_unknowns;
        let use_sparse = self.backend.use_sparse(n);
        let traced = self.tracer.is_enabled();
        if traced {
            self.tracer.begin(SpanKind::MnaAssemble, fs(t_new));
        }
        let mut sys = match self.sys.take() {
            Some(s) if s.is_sparse() == use_sparse => s,
            other => {
                if let Some(old) = other {
                    // Keep the counters of a system we are replacing.
                    self.stats.solve.merge(&old.stats());
                }
                let mut fresh =
                    MnaSystem::new(n, use_sparse, |st| self.assemble(st, x, t_new, h, be));
                if let Some(hint) = self.symbolic_hint.take() {
                    // Adopted from a topology-identical sibling: the
                    // first factor becomes a numeric refactor.
                    fresh.import_sparse_factor(hint);
                }
                fresh
            }
        };
        sys.assemble(|st| self.assemble(st, x, t_new, h, be));
        if traced {
            self.tracer.end(SpanKind::MnaAssemble, fs(t_new));
            self.tracer.begin(SpanKind::MnaFactor, fs(t_new));
        }
        let factored = sys.factor(allow_reuse);
        if traced {
            self.tracer.end(SpanKind::MnaFactor, fs(t_new));
        }
        self.sys = Some(sys);
        if factored? {
            self.stats.factorizations += 1;
        }
        Ok(())
    }

    fn commit_step(&mut self, x_new: DVec<f64>, t_new: f64, h: f64, be: bool) {
        self.x = x_new;
        // Update energy-storage history.
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            match e.kind {
                ElementKind::Capacitor { farads, .. } => {
                    let v_new = self.branch_voltage(e.p, e.n);
                    let st = self.state[idx];
                    let i_new = if be {
                        farads / h * (v_new - st.v)
                    } else {
                        2.0 * farads / h * (v_new - st.v) - st.i
                    };
                    self.state[idx] = EnergyState { v: v_new, i: i_new };
                }
                ElementKind::Inductor { .. } => {
                    let b = self
                        .layout
                        .branch_var(ElementId(idx))
                        .expect("inductor branch");
                    let i_new = self.x[b];
                    let v_new = self.branch_voltage(e.p, e.n);
                    self.state[idx] = EnergyState { v: v_new, i: i_new };
                }
                _ => {}
            }
        }
        self.time = t_new;
        self.stats.steps += 1;
        if self.force_be > 0 {
            self.force_be -= 1;
        }
    }

    /// Assembles the full linearized system at candidate solution `x`.
    ///
    /// The stamp-call sequence depends only on the circuit topology (not
    /// on `x`, the time, the step or the switch states), which keeps the
    /// recorded sparse pattern and stamp pointers valid across steps.
    fn assemble(&self, st: &mut dyn Stamp<f64>, x: &DVec<f64>, t_new: f64, h: f64, be: bool) {
        let layout = &self.layout;
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            let eid = ElementId(idx);
            match &e.kind {
                ElementKind::Resistor { ohms } => {
                    stamp_conductance(layout, st, e.p, e.n, 1.0 / ohms);
                }
                ElementKind::Capacitor { farads, .. } => {
                    let es = self.state[idx];
                    let (geq, ieq) = if be {
                        let g = farads / h;
                        (g, g * es.v)
                    } else {
                        let g = 2.0 * farads / h;
                        (g, g * es.v + es.i)
                    };
                    stamp_conductance(layout, st, e.p, e.n, geq);
                    // Norton source injecting Ieq into p.
                    stamp_current(layout, st, e.n, e.p, ieq);
                }
                ElementKind::Inductor { henries, .. } => {
                    let b = layout.branch_var(eid).expect("inductor branch");
                    let es = self.state[idx];
                    stamp_branch_kcl(layout, st, e.p, e.n, b);
                    stamp_branch_voltage(layout, st, b, e.p, e.n, 1.0);
                    if be {
                        let req = henries / h;
                        st.mat(b, b, -req);
                        st.rhs(b, -req * es.i);
                    } else {
                        let req = 2.0 * henries / h;
                        st.mat(b, b, -req);
                        st.rhs(b, -req * es.i - es.v);
                    }
                }
                ElementKind::VoltageSource { wave, .. } => {
                    let b = layout.branch_var(eid).expect("vsource branch");
                    stamp_branch_kcl(layout, st, e.p, e.n, b);
                    stamp_branch_voltage(layout, st, b, e.p, e.n, 1.0);
                    st.rhs(b, wave.value_at(t_new, &self.ext));
                }
                ElementKind::CurrentSource { wave, .. } => {
                    stamp_current(layout, st, e.p, e.n, wave.value_at(t_new, &self.ext));
                }
                ElementKind::Vcvs { cp, cn, gain } => {
                    let b = layout.branch_var(eid).expect("vcvs branch");
                    stamp_branch_kcl(layout, st, e.p, e.n, b);
                    stamp_branch_voltage(layout, st, b, e.p, e.n, 1.0);
                    stamp_branch_voltage(layout, st, b, *cp, *cn, -*gain);
                }
                ElementKind::Vccs { cp, cn, gm } => {
                    stamp_vccs(layout, st, e.p, e.n, *cp, *cn, *gm);
                }
                ElementKind::Cccs { ctrl, gain } => {
                    let cb = layout.branch_var(*ctrl).expect("validated control");
                    if let Some(ip) = layout.node_var(e.p) {
                        st.mat(ip, cb, *gain);
                    }
                    if let Some(in_) = layout.node_var(e.n) {
                        st.mat(in_, cb, -*gain);
                    }
                }
                ElementKind::Ccvs { ctrl, r } => {
                    let b = layout.branch_var(eid).expect("ccvs branch");
                    let cb = layout.branch_var(*ctrl).expect("validated control");
                    stamp_branch_kcl(layout, st, e.p, e.n, b);
                    stamp_branch_voltage(layout, st, b, e.p, e.n, 1.0);
                    st.mat(b, cb, -*r);
                }
                ElementKind::Diode { is_sat, n } => {
                    let vp = layout.node_var(e.p).map_or(0.0, |i| x[i]);
                    let vn = layout.node_var(e.n).map_or(0.0, |i| x[i]);
                    let v = vp - vn;
                    let (i, g) = diode_iv(v, *is_sat, *n);
                    stamp_conductance(layout, st, e.p, e.n, g + GMIN);
                    stamp_current(layout, st, e.p, e.n, i - g * v);
                }
                ElementKind::Nmos {
                    gate,
                    kp,
                    vt,
                    lambda,
                } => {
                    let vg = layout.node_var(*gate).map_or(0.0, |i| x[i]);
                    let vd = layout.node_var(e.p).map_or(0.0, |i| x[i]);
                    let vs = layout.node_var(e.n).map_or(0.0, |i| x[i]);
                    let op = nmos_linearize(vg, vd, vs, *kp, *vt, *lambda);
                    stamp_mos(layout, st, e.p, *gate, e.n, &op, vg, vd, vs);
                    stamp_conductance(layout, st, e.p, e.n, GMIN);
                }
                ElementKind::Switch { r_on, r_off, .. } => {
                    let r = if self.switches[idx] { *r_on } else { *r_off };
                    stamp_conductance(layout, st, e.p, e.n, 1.0 / r);
                }
            }
        }
    }

    /// Rebuilds only the RHS (linear fast path).
    fn assemble_rhs_only(&self, st: &mut dyn Stamp<f64>, t_new: f64, h: f64, be: bool) {
        let layout = &self.layout;
        for (idx, e) in self.circuit.elements().iter().enumerate() {
            let eid = ElementId(idx);
            match &e.kind {
                ElementKind::Capacitor { farads, .. } => {
                    let es = self.state[idx];
                    let ieq = if be {
                        farads / h * es.v
                    } else {
                        2.0 * farads / h * es.v + es.i
                    };
                    stamp_current(layout, st, e.n, e.p, ieq);
                }
                ElementKind::Inductor { henries, .. } => {
                    let b = layout.branch_var(eid).expect("inductor branch");
                    let es = self.state[idx];
                    if be {
                        st.rhs(b, -(henries / h) * es.i);
                    } else {
                        st.rhs(b, -(2.0 * henries / h) * es.i - es.v);
                    }
                }
                ElementKind::VoltageSource { wave, .. } => {
                    let b = layout.branch_var(eid).expect("vsource branch");
                    st.rhs(b, wave.value_at(t_new, &self.ext));
                }
                ElementKind::CurrentSource { wave, .. } => {
                    stamp_current(layout, st, e.p, e.n, wave.value_at(t_new, &self.ext));
                }
                _ => {}
            }
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            x: self.x.clone(),
            time: self.time,
            state: self.state.clone(),
            force_be: self.force_be,
        }
    }

    fn restore(&mut self, s: &Snapshot) {
        self.x = s.x.clone();
        self.time = s.time;
        self.state = s.state.clone();
        self.force_be = s.force_be;
    }

    /// Runs fixed-step transient until `t_end`, invoking `probe` after
    /// each step.
    ///
    /// # Errors
    ///
    /// Propagates step failures.
    pub fn run(
        &mut self,
        t_end: f64,
        h: f64,
        mut probe: impl FnMut(&TransientSolver),
    ) -> Result<(), NetError> {
        if !self.initialized {
            self.initialize_dc()?;
        }
        while self.time < t_end - 1e-18 {
            let step = h.min(t_end - self.time);
            self.step(step)?;
            self.feed_monitors();
            probe(self);
        }
        Ok(())
    }

    /// Runs variable-step transient until `t_end` using step-doubling
    /// local-truncation-error control, invoking `probe` after each
    /// accepted step.
    ///
    /// # Errors
    ///
    /// * [`NetError::InvalidValue`] when the controller underflows
    ///   `min_step`.
    /// * Propagates solver failures.
    pub fn run_adaptive(
        &mut self,
        t_end: f64,
        opts: &AdaptiveOptions,
        mut probe: impl FnMut(&TransientSolver),
    ) -> Result<(), NetError> {
        if !self.initialized {
            self.initialize_dc()?;
        }
        // Resume with the step proposal a previous (checkpointed) run
        // left behind; a fresh solver starts at initial_step.
        let mut h = self.adaptive_h.unwrap_or(opts.initial_step);
        // Step-doubling on an order-p method estimates an O(h^(p+1))
        // local error, so the optimal-step update is
        // h · (safety / err)^(1/(p+1)): exponent 1/3 for trapezoidal
        // (p = 2), 1/2 for backward Euler (p = 1).
        let order_exp = match self.method {
            IntegrationMethod::BackwardEuler => 1.0 / 2.0,
            IntegrationMethod::Trapezoidal => 1.0 / 3.0,
        };
        const SAFETY: f64 = 0.9;
        while self.time < t_end - 1e-18 {
            // Enforce min_step first, then clamp to the remaining span
            // unconditionally: the final step must never overshoot
            // t_end, even when the remaining span is below min_step.
            let remaining = t_end - self.time;
            let h_step = h.max(opts.min_step).min(remaining);
            // `min` returned the span ⇒ this step lands exactly on t_end.
            let final_step = h_step >= remaining;
            let start = self.snapshot();

            // Full step.
            let full_ok = self.step(h_step).is_ok();
            let x_full = self.x.clone();
            self.restore(&start);

            // Two half steps.
            let half_ok =
                full_ok && self.step(h_step / 2.0).is_ok() && self.step(h_step / 2.0).is_ok();

            if !half_ok {
                self.restore(&start);
                self.stats.rejected += 1;
                if self.tracer.is_enabled() {
                    self.tracer
                        .instant(SpanKind::StepReject, fs(self.time), h_step.to_bits());
                }
                // Underflow only when the step just attempted was
                // already at the floor: any larger rejected step earns
                // one retry clamped to min_step. Both reject paths (and
                // the lane controller) share this predicate — the clamp
                // must never mask the abort, nor the abort skip the
                // retry.
                if h_step <= opts.min_step {
                    return Err(NetError::InvalidValue {
                        element: "adaptive timestep".to_string(),
                        reason: format!("step underflow at t = {}", self.time),
                    });
                }
                h = (h_step * 0.25).max(opts.min_step);
                self.adaptive_h = Some(h);
                continue;
            }

            // Error estimate between the two solutions.
            let mut err = 0.0f64;
            for i in 0..self.x.len() {
                let scale = opts.abs_tol + opts.rel_tol * self.x[i].abs().max(x_full[i].abs());
                err = err.max(((self.x[i] - x_full[i]) / scale).abs());
            }

            if err <= 1.0 {
                // Accept the half-step solution (already committed).
                // The two half steps of a span-clamped final step can
                // drift an ulp past t_end; land exactly on the horizon
                // so probes never observe a time beyond it.
                if final_step {
                    self.time = t_end;
                }
                if self.tracer.is_enabled() {
                    self.tracer
                        .instant(SpanKind::StepAccept, fs(self.time), h_step.to_bits());
                }
                self.feed_monitors();
                probe(self);
                let grow = if err > 0.0 {
                    (SAFETY * err.powf(-order_exp)).min(3.0)
                } else {
                    3.0
                };
                h = (h_step * grow).clamp(opts.min_step, opts.max_step);
                self.adaptive_h = Some(h);
            } else {
                self.restore(&start);
                self.stats.rejected += 1;
                if self.tracer.is_enabled() {
                    self.tracer
                        .instant(SpanKind::StepReject, fs(self.time), h_step.to_bits());
                }
                if h_step <= opts.min_step {
                    return Err(NetError::InvalidValue {
                        element: "adaptive timestep".to_string(),
                        reason: format!("step underflow at t = {}", self.time),
                    });
                }
                let shrink = (SAFETY * err.powf(-order_exp)).max(0.1);
                h = (h_step * shrink).max(opts.min_step);
                self.adaptive_h = Some(h);
            }
        }
        Ok(())
    }

    /// Freezes the solver's dynamic state into a [`Checkpoint`]: the
    /// fork point for copy-on-write scenario forking (run the shared
    /// prefix once, restore per fork) and the suspend point for
    /// restartable jobs. The factored matrix is *not* captured — see
    /// the [`checkpoint`](crate::checkpoint) module docs for exactly
    /// what is and is not included.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            x: self.x.iter().copied().collect(),
            time: self.time,
            ext: self.ext.clone(),
            switches: self.switches.clone(),
            state: self.state.iter().map(|s| (s.v, s.i)).collect(),
            force_be: self.force_be,
            stats: self.stats,
            adaptive_h: self.adaptive_h,
            initialized: self.initialized,
        }
    }

    /// Restores a [`Checkpoint`] taken from this solver or from a
    /// solver over a **value-variant of the same topology** (the CoW
    /// fork: one prefix solver, many restored siblings). Continuing a
    /// restored run reproduces the donor's trajectory bit for bit as
    /// long as both circuits agree on `[0, checkpoint.time()]`.
    ///
    /// The cached factorization is invalidated — the next step
    /// refactors (a numeric refactor when a
    /// [`SymbolicFactor`] was adopted), which only perturbs
    /// fingerprint-excluded policy counters. The step counters are
    /// overwritten with the checkpoint's, so a continued run
    /// accumulates to run-from-zero totals.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidValue`] when the checkpoint's dimensions
    /// (unknowns, elements, inputs, switches) do not match this
    /// solver's circuit.
    pub fn restore_checkpoint(&mut self, cp: &Checkpoint) -> Result<(), NetError> {
        let mismatch = |what: &str| NetError::InvalidValue {
            element: "checkpoint".to_string(),
            reason: format!("checkpoint/solver {what} mismatch"),
        };
        if cp.x.len() != self.layout.n_unknowns {
            return Err(mismatch("unknown count"));
        }
        if cp.state.len() != self.circuit.element_count() {
            return Err(mismatch("element count"));
        }
        if cp.ext.len() != self.ext.len() {
            return Err(mismatch("external input count"));
        }
        if cp.switches.len() != self.switches.len() {
            return Err(mismatch("switch count"));
        }
        for (i, &v) in cp.x.iter().enumerate() {
            self.x[i] = v;
        }
        self.time = cp.time;
        self.ext.copy_from_slice(&cp.ext);
        self.switches.copy_from_slice(&cp.switches);
        for (s, &(v, i)) in self.state.iter_mut().zip(&cp.state) {
            *s = EnergyState { v, i };
        }
        self.force_be = cp.force_be;
        self.stats = cp.stats;
        self.adaptive_h = cp.adaptive_h;
        self.initialized = cp.initialized;
        self.factor_key = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waveform;

    fn rc_circuit() -> (Circuit, NodeId, NodeId) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, out, 1e3).unwrap();
        ckt.capacitor_ic("C1", out, Circuit::GROUND, 1e-6, 0.0)
            .unwrap();
        (ckt, a, out)
    }

    #[test]
    fn rc_charging_matches_analytic() {
        let (ckt, _a, out) = rc_circuit();
        for method in [
            IntegrationMethod::BackwardEuler,
            IntegrationMethod::Trapezoidal,
        ] {
            let mut tr = TransientSolver::new(&ckt, method).unwrap();
            tr.initialize_with_ic().unwrap();
            for _ in 0..2000 {
                tr.step(0.5e-6).unwrap();
            }
            let expected = 1.0 - (-1.0f64).exp();
            let tol = match method {
                IntegrationMethod::BackwardEuler => 5e-4,
                IntegrationMethod::Trapezoidal => 1e-6,
            };
            assert!(
                (tr.voltage(out) - expected).abs() < tol,
                "{method:?}: {} vs {expected}",
                tr.voltage(out)
            );
        }
    }

    #[test]
    fn monitors_fed_on_accepted_steps_only() {
        use ams_monitor::{MonitorBank, MonitorSpec};
        let (ckt, _a, out) = rc_circuit();
        let spec = MonitorSpec::parse(
            "charged:settle(lo=0.6,hi=1.0,by=2e-3)@out;\
             no_over:overshoot(max=1.05)@out;\
             gnd:envelope(lo=0,hi=0)@0",
        )
        .unwrap();
        let bank = MonitorBank::new(&spec);
        let nodes: Vec<NodeId> = bank
            .channels()
            .iter()
            .map(|ch| ckt.find_node(ch).unwrap())
            .collect();
        assert_eq!(nodes[1], Circuit::GROUND);
        // Fixed-step run: every step feeds the bank once per channel.
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        tr.attach_monitors(bank.clone(), &nodes);
        let mut probes = 0u64;
        tr.run(4e-3, 1e-6, |_| probes += 1).unwrap();
        let fed = tr.monitor_bank().unwrap();
        assert_eq!(fed.samples(), probes * nodes.len() as u64);
        let verdicts = fed.finish();
        assert!(verdicts.iter().all(|v| v.is_pass()), "{verdicts:?}");
        // Adaptive run: rejected trial/half steps never reach the bank.
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        tr.attach_monitors(bank, &nodes);
        let mut accepted = 0u64;
        tr.run_adaptive(4e-3, &AdaptiveOptions::default(), |_| accepted += 1)
            .unwrap();
        let taken = tr.take_monitors().unwrap();
        assert_eq!(taken.samples(), accepted * nodes.len() as u64);
        assert!(taken.finish().iter().all(|v| v.is_pass()));
        assert!(tr.monitor_bank().is_none());
        // A property that the waveform violates fires with a witness.
        let spec = MonitorSpec::parse("low:envelope(lo=-0.1,hi=0.1,from=2e-3)@out").unwrap();
        let bank = MonitorBank::new(&spec);
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        tr.attach_monitors(bank, &[out]);
        tr.run(4e-3, 1e-6, |_| {}).unwrap();
        let v = tr.monitor_bank().unwrap().finish();
        assert_eq!(v[0].code(), Some("MON005"));
    }

    #[test]
    fn trapezoidal_is_second_order() {
        let (ckt, _a, out) = rc_circuit();
        let run = |h: f64| {
            let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
            tr.initialize_with_ic().unwrap();
            let steps = (1e-3 / h).round() as usize;
            for _ in 0..steps {
                tr.step(h).unwrap();
            }
            (tr.voltage(out) - (1.0 - (-1.0f64).exp())).abs()
        };
        let ratio = run(2e-6) / run(1e-6);
        assert!((2.5..6.0).contains(&ratio), "order ratio {ratio}");
    }

    #[test]
    fn linear_fast_path_factors_once() {
        let (ckt, _a, _out) = rc_circuit();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        for _ in 0..100 {
            tr.step(1e-6).unwrap();
        }
        let s = tr.stats();
        assert_eq!(s.steps, 100);
        // One factorization for the forced-BE first step, one for the rest.
        assert!(
            s.factorizations <= 2,
            "factorizations = {}",
            s.factorizations
        );

        // Disable reuse: one factorization per step.
        let mut tr2 = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr2.reuse_factorization = false;
        tr2.initialize_with_ic().unwrap();
        for _ in 0..100 {
            tr2.step(1e-6).unwrap();
        }
        assert_eq!(tr2.stats().factorizations, 100);
    }

    #[test]
    fn rl_current_rise() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, b, 10.0).unwrap();
        let l = ckt
            .inductor_ic("L1", b, Circuit::GROUND, 1e-3, 0.0)
            .unwrap();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        // τ = L/R = 100 µs; simulate 100 µs → i = (V/R)(1 − e^{−1}).
        for _ in 0..1000 {
            tr.step(1e-7).unwrap();
        }
        let expected = 0.1 * (1.0 - (-1.0f64).exp());
        assert!((tr.current(l).unwrap() - expected).abs() < 1e-5);
    }

    #[test]
    fn lc_oscillation_frequency() {
        // LC tank kicked by an initial capacitor voltage.
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.capacitor_ic("C1", top, Circuit::GROUND, 1e-6, 1.0)
            .unwrap();
        ckt.inductor("L1", top, Circuit::GROUND, 1e-3).unwrap();
        // Tiny damping keeps the matrix friendly.
        ckt.resistor("Rp", top, Circuit::GROUND, 1e6).unwrap();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        // f₀ = 1/(2π√(LC)) ≈ 5033 Hz; simulate 2 ms and count crossings.
        let mut crossings = 0;
        let mut prev = tr.voltage(top);
        let h = 1e-7;
        let t_end = 2e-3;
        let steps = (t_end / h) as usize;
        for _ in 0..steps {
            tr.step(h).unwrap();
            let v = tr.voltage(top);
            if prev < 0.0 && v >= 0.0 {
                crossings += 1;
            }
            prev = v;
        }
        let freq = crossings as f64 / t_end;
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3f64 * 1e-6).sqrt());
        assert!((freq - f0).abs() / f0 < 0.02, "freq {freq} vs {f0}");
    }

    #[test]
    fn sine_source_drives_rc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source_wave(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e3,
                phase: 0.0,
            },
        )
        .unwrap();
        ckt.resistor("R1", a, out, 1e3).unwrap();
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-6).unwrap();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_dc().unwrap();
        // Cutoff 159 Hz, driven at 1 kHz: expect attenuation ≈ 0.157.
        // Skip the first 10 ms (10·τ) so the startup transient has decayed.
        let mut peak: f64 = 0.0;
        tr.run(15e-3, 1e-6, |s| {
            if s.time() > 10e-3 {
                peak = peak.max(s.voltage(out).abs());
            }
        })
        .unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e-3);
        let expected = 1.0 / (1.0 + (1e3 / f0).powi(2)).sqrt();
        assert!(
            (peak - expected).abs() / expected < 0.03,
            "peak {peak} vs {expected}"
        );
    }

    #[test]
    fn diode_rectifier_clips_negative() {
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let out = ckt.node("out");
        ckt.voltage_source_wave(
            "V1",
            src,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 5.0,
                freq: 50.0,
                phase: 0.0,
            },
        )
        .unwrap();
        ckt.diode("D1", src, out, 1e-14, 1.0).unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_dc().unwrap();
        let mut min_v = f64::INFINITY;
        let mut max_v = f64::NEG_INFINITY;
        tr.run(40e-3, 20e-6, |s| {
            min_v = min_v.min(s.voltage(out));
            max_v = max_v.max(s.voltage(out));
        })
        .unwrap();
        assert!(max_v > 4.0, "peak passes: {max_v}");
        assert!(min_v > -0.1, "negative clipped: {min_v}");
    }

    #[test]
    fn switch_toggle_discharges_capacitor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source("V1", a, Circuit::GROUND, 5.0).unwrap();
        ckt.resistor("R1", a, out, 1e3).unwrap();
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-6).unwrap();
        let sw = ckt
            .switch("S1", out, Circuit::GROUND, 1.0, 1e12, false)
            .unwrap();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_dc().unwrap();
        assert!((tr.voltage(out) - 5.0).abs() < 1e-4);
        // Close the switch: capacitor discharges through 1 Ω (τ = 1 µs).
        tr.set_switch(sw, true).unwrap();
        for _ in 0..100 {
            tr.step(1e-7).unwrap();
        }
        assert!(tr.voltage(out).abs() < 0.1, "v = {}", tr.voltage(out));
    }

    #[test]
    fn set_switch_on_non_switch_errors() {
        let (ckt, _, _) = rc_circuit();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        assert!(tr.set_switch(ElementId(0), true).is_err());
    }

    #[test]
    fn invalid_step_rejected() {
        let (ckt, _, _) = rc_circuit();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        assert!(tr.step(0.0).is_err());
        assert!(tr.step(-1.0).is_err());
        assert!(tr.step(f64::NAN).is_err());
    }

    #[test]
    fn adaptive_matches_fixed_step_on_rc() {
        let (ckt, _a, out) = rc_circuit();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        tr.run_adaptive(
            1e-3,
            &AdaptiveOptions {
                rel_tol: 1e-6,
                abs_tol: 1e-9,
                initial_step: 1e-8,
                ..Default::default()
            },
            |_| {},
        )
        .unwrap();
        let expected = 1.0 - (-1.0f64).exp();
        assert!((tr.voltage(out) - expected).abs() < 1e-4);
        // Far fewer accepted steps than the 1000 fixed steps used above.
        assert!(tr.stats().steps < 3000, "steps = {}", tr.stats().steps);
    }

    #[test]
    fn tracing_records_solver_spans_and_is_free_when_off() {
        let (ckt, _a, _out) = rc_circuit();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        // Off by default: no events.
        for _ in 0..5 {
            tr.step(1e-6).unwrap();
        }
        assert!(tr.take_trace_events().is_empty());

        tr.set_tracing(true);
        for _ in 0..3 {
            tr.step(1e-6).unwrap();
        }
        let events = tr.take_trace_events();
        // Linear fast path: one MnaSolve begin/end pair per step, the
        // (cached) factorization recorded at most once.
        use ams_scope::Phase;
        let solves = events
            .iter()
            .filter(|e| e.kind == SpanKind::MnaSolve && e.phase == Phase::Begin)
            .count();
        assert_eq!(solves, 3);
        // Simulated timestamps are monotone.
        let times: Vec<u64> = events.iter().map(|e| e.t_sim_fs).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        // Buffer drained; subsequent steps keep recording.
        tr.step(1e-6).unwrap();
        assert!(!tr.take_trace_events().is_empty());
    }

    #[test]
    fn adaptive_tracing_records_accepts_and_step_sizes() {
        let (ckt, _a, _out) = rc_circuit();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_with_ic().unwrap();
        tr.set_tracing(true);
        tr.run_adaptive(1e-4, &AdaptiveOptions::default(), |_| {})
            .unwrap();
        let events = tr.take_trace_events();
        let accepts: Vec<f64> = events
            .iter()
            .filter(|e| e.kind == SpanKind::StepAccept)
            .map(|e| f64::from_bits(e.arg))
            .collect();
        assert!(!accepts.is_empty());
        assert!(accepts.iter().all(|h| *h > 0.0 && h.is_finite()));
    }

    #[test]
    fn external_input_varies_over_time() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let inp = ckt.external_input();
        ckt.voltage_source_wave("V1", a, Circuit::GROUND, Waveform::External(inp))
            .unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::BackwardEuler).unwrap();
        tr.initialize_dc().unwrap();
        for k in 0..10 {
            tr.set_input(inp, k as f64);
            tr.step(1e-6).unwrap();
            assert!((tr.voltage(a) - k as f64).abs() < 1e-12);
        }
    }
    #[test]
    fn checkpoint_fork_is_bit_identical_to_run_from_zero() {
        // Sine-driven RC with a power-of-two step: every time sum is
        // exact in f64, so the fork rendezvous at t0 = 64·h is the very
        // value an uninterrupted run passes through.
        let h = 2.0_f64.powi(-20); // ≈ 0.95 µs
        let t0 = 64.0 * h;
        let t_end = 256.0 * h;
        let build = || {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let out = ckt.node("out");
            ckt.voltage_source_wave(
                "V1",
                a,
                Circuit::GROUND,
                Waveform::Sine {
                    offset: 0.0,
                    ampl: 1.0,
                    freq: 5e3,
                    phase: 0.0,
                },
            )
            .unwrap();
            ckt.resistor("R1", a, out, 1e3).unwrap();
            ckt.capacitor("C1", out, Circuit::GROUND, 1e-9).unwrap();
            (ckt, out)
        };

        for method in [
            IntegrationMethod::BackwardEuler,
            IntegrationMethod::Trapezoidal,
        ] {
            // Reference: one uninterrupted run.
            let (ckt, out) = build();
            let mut reference = TransientSolver::new(&ckt, method).unwrap();
            reference.initialize_dc().unwrap();
            let mut ref_trace = Vec::new();
            reference
                .run(t_end, h, |s| ref_trace.push(s.voltage(out).to_bits()))
                .unwrap();

            // Prefix to t0, checkpoint, fork into a *fresh* solver over
            // an identical circuit, continue to t_end.
            let mut prefix = TransientSolver::new(&ckt, method).unwrap();
            prefix.initialize_dc().unwrap();
            let mut fork_trace = Vec::new();
            prefix
                .run(t0, h, |s| fork_trace.push(s.voltage(out).to_bits()))
                .unwrap();
            let cp = prefix.checkpoint();
            // Round-trip through the wire format on the way.
            let cp = Checkpoint::from_bytes(&cp.to_bytes()).unwrap();
            let (ckt2, _) = build();
            let mut fork = TransientSolver::new(&ckt2, method).unwrap();
            fork.restore_checkpoint(&cp).unwrap();
            assert_eq!(fork.time(), t0);
            fork.run(t_end, h, |s| fork_trace.push(s.voltage(out).to_bits()))
                .unwrap();

            assert_eq!(
                ref_trace, fork_trace,
                "fork-at-t0 must reproduce run-from-zero bit for bit ({method:?})"
            );
            // Counters accumulate to run-from-zero totals.
            assert_eq!(fork.stats().steps, reference.stats().steps);
            assert_eq!(
                fork.voltage(out).to_bits(),
                reference.voltage(out).to_bits()
            );
        }
    }

    #[test]
    fn checkpoint_restore_validates_dimensions() {
        let (ckt, _a, _out) = rc_circuit();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_dc().unwrap();
        let cp = tr.checkpoint();

        let mut other = Circuit::new();
        let x = other.node("x");
        other.voltage_source("V", x, Circuit::GROUND, 1.0).unwrap();
        other.resistor("R", x, Circuit::GROUND, 1.0).unwrap();
        let mut wrong = TransientSolver::new(&other, IntegrationMethod::Trapezoidal).unwrap();
        assert!(wrong.restore_checkpoint(&cp).is_err());
    }

    #[test]
    fn adaptive_checkpoint_forks_deterministically() {
        // Two forks restored from the same mid-adaptive-run checkpoint
        // must finish bit-identically (the controller step proposal is
        // part of the checkpoint).
        let (ckt, _a, out) = rc_circuit();
        let opts = AdaptiveOptions::default();
        let mut tr = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
        tr.initialize_dc().unwrap();
        tr.run_adaptive(0.2e-3, &opts, |_| {}).unwrap();
        let cp = tr.checkpoint();
        assert!(cp.stats().steps > 0);

        let run_fork = || {
            let mut f = TransientSolver::new(&ckt, IntegrationMethod::Trapezoidal).unwrap();
            f.restore_checkpoint(&cp).unwrap();
            let mut trace = Vec::new();
            f.run_adaptive(1e-3, &opts, |s| {
                trace.push((s.time().to_bits(), s.voltage(out).to_bits()));
            })
            .unwrap();
            (trace, f.stats().steps, f.stats().rejected)
        };
        assert_eq!(run_fork(), run_fork());
    }
}
