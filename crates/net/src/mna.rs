//! Modified Nodal Analysis: unknown layout and stamp primitives.
//!
//! "This system of equations can be, for example, generated from a network
//! using the Modified Nodal Analysis method" (paper §3, O7). The MNA
//! unknown vector is `[node voltages (ground eliminated) | branch
//! currents]`, where voltage-defined elements (voltage sources, inductors,
//! VCVS, CCVS) each contribute one branch-current unknown. All three
//! solvers (DC, transient, AC) share this layout and these stamps; only
//! the element models differ per analysis.

use crate::assembly::Stamp;
use crate::{Circuit, ElementId, NodeId};
use ams_math::Scalar;

/// The unknown layout shared by every analysis of one circuit.
#[derive(Debug, Clone)]
pub(crate) struct MnaLayout {
    /// Number of nodes including ground.
    pub n_nodes: usize,
    /// Per-element branch unknown index (absolute, already offset past the
    /// node voltages), if the element is voltage-defined.
    pub branch_of: Vec<Option<usize>>,
    /// Total unknowns: `(n_nodes − 1) + branches`.
    pub n_unknowns: usize,
}

impl MnaLayout {
    /// Builds the layout for a circuit.
    pub fn build(ckt: &Circuit) -> Self {
        let n_nodes = ckt.node_count();
        let mut branch_of = Vec::with_capacity(ckt.element_count());
        let mut next = n_nodes - 1;
        for e in ckt.elements() {
            if e.has_branch_current() {
                branch_of.push(Some(next));
                next += 1;
            } else {
                branch_of.push(None);
            }
        }
        MnaLayout {
            n_nodes,
            branch_of,
            n_unknowns: next,
        }
    }

    /// Index of a node voltage unknown; `None` for ground.
    pub fn node_var(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Index of an element's branch-current unknown.
    pub fn branch_var(&self, elem: ElementId) -> Option<usize> {
        self.branch_of[elem.index()]
    }
}

/// Stamps a conductance `g` between nodes `p` and `n`.
pub(crate) fn stamp_conductance<T: Scalar>(
    layout: &MnaLayout,
    st: &mut dyn Stamp<T>,
    p: NodeId,
    n: NodeId,
    g: T,
) {
    let vp = layout.node_var(p);
    let vn = layout.node_var(n);
    if let Some(i) = vp {
        st.mat(i, i, g);
    }
    if let Some(j) = vn {
        st.mat(j, j, g);
    }
    if let (Some(i), Some(j)) = (vp, vn) {
        st.mat(i, j, -g);
        st.mat(j, i, -g);
    }
}

/// Stamps a current `i` flowing from `p` through the source to `n`
/// (i.e. extracted from node `p`, injected into node `n`).
pub(crate) fn stamp_current<T: Scalar>(
    layout: &MnaLayout,
    st: &mut dyn Stamp<T>,
    p: NodeId,
    n: NodeId,
    i: T,
) {
    if let Some(ip) = layout.node_var(p) {
        st.rhs(ip, -i);
    }
    if let Some(in_) = layout.node_var(n) {
        st.rhs(in_, i);
    }
}

/// Stamps the KCL coupling of a branch current `ib` (unknown column
/// `branch`): current `ib` leaves node `p` and enters node `n`.
pub(crate) fn stamp_branch_kcl<T: Scalar>(
    layout: &MnaLayout,
    st: &mut dyn Stamp<T>,
    p: NodeId,
    n: NodeId,
    branch: usize,
) {
    if let Some(ip) = layout.node_var(p) {
        st.mat(ip, branch, T::ONE);
    }
    if let Some(in_) = layout.node_var(n) {
        st.mat(in_, branch, -T::ONE);
    }
}

/// Stamps the branch voltage row: coefficient `+c` on `V(p)` and `−c` on
/// `V(n)` in equation `row`.
pub(crate) fn stamp_branch_voltage<T: Scalar>(
    layout: &MnaLayout,
    st: &mut dyn Stamp<T>,
    row: usize,
    p: NodeId,
    n: NodeId,
    c: T,
) {
    if let Some(ip) = layout.node_var(p) {
        st.mat(row, ip, c);
    }
    if let Some(in_) = layout.node_var(n) {
        st.mat(row, in_, -c);
    }
}

/// Stamps a transconductance: current `gm·V(cp,cn)` flowing from `p` to
/// `n`.
pub(crate) fn stamp_vccs<T: Scalar>(
    layout: &MnaLayout,
    st: &mut dyn Stamp<T>,
    p: NodeId,
    n: NodeId,
    cp: NodeId,
    cn: NodeId,
    gm: T,
) {
    let rows = [(layout.node_var(p), T::ONE), (layout.node_var(n), -T::ONE)];
    let cols = [
        (layout.node_var(cp), T::ONE),
        (layout.node_var(cn), -T::ONE),
    ];
    for (r, rs) in rows {
        if let Some(ri) = r {
            for (c, cs) in cols {
                if let Some(ci) = c {
                    st.mat(ri, ci, gm * rs * cs);
                }
            }
        }
    }
}

/// Stamps the linearized three-terminal MOS current (drain `d` → source
/// `s`, gate `g`): `i ≈ i₀ + a_g·v_g + a_d·v_d + a_s·v_s` with the
/// equivalent current source folded into the RHS.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stamp_mos(
    layout: &MnaLayout,
    st: &mut dyn Stamp<f64>,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    op: &crate::devices::NmosOp,
    vg: f64,
    vd: f64,
    vs: f64,
) {
    let cols = [
        (layout.node_var(g), op.a_g),
        (layout.node_var(d), op.a_d),
        (layout.node_var(s), op.a_s),
    ];
    for (row_node, sign) in [(d, 1.0), (s, -1.0)] {
        if let Some(r) = layout.node_var(row_node) {
            for (col, a) in cols {
                if let Some(cc) = col {
                    st.mat(r, cc, sign * a);
                }
            }
        }
    }
    let ieq = op.id - op.a_g * vg - op.a_d * vd - op.a_s * vs;
    stamp_current(layout, st, d, s, ieq);
}

/// Complex variant for AC analysis (the linearization is real; only the
/// matrix is complex).
pub(crate) fn stamp_mos_ac(
    layout: &MnaLayout,
    st: &mut dyn Stamp<ams_math::Complex64>,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    op: &crate::devices::NmosOp,
) {
    use ams_math::Complex64;
    let cols = [
        (layout.node_var(g), op.a_g),
        (layout.node_var(d), op.a_d),
        (layout.node_var(s), op.a_s),
    ];
    for (row_node, sign) in [(d, 1.0), (s, -1.0)] {
        if let Some(r) = layout.node_var(row_node) {
            for (col, a) in cols {
                if let Some(cc) = col {
                    st.mat(r, cc, Complex64::from_real(sign * a));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::DenseStamp;
    use crate::Circuit;
    use ams_math::{DMat, DVec};

    #[test]
    fn layout_counts_branches() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let r = ckt.resistor("R", a, b, 1.0).unwrap();
        let v = ckt.voltage_source("V", a, Circuit::GROUND, 1.0).unwrap();
        let l = ckt.inductor("L", b, Circuit::GROUND, 1.0).unwrap();
        let layout = MnaLayout::build(&ckt);
        assert_eq!(layout.n_nodes, 3);
        assert_eq!(layout.n_unknowns, 2 + 2); // 2 node voltages + V + L
        assert_eq!(layout.branch_var(r), None);
        assert_eq!(layout.branch_var(v), Some(2));
        assert_eq!(layout.branch_var(l), Some(3));
        assert_eq!(layout.node_var(Circuit::GROUND), None);
        assert_eq!(layout.node_var(a), Some(0));
    }

    #[test]
    fn conductance_stamp_pattern() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let layout = MnaLayout::build(&ckt);
        let mut m: DMat<f64> = DMat::zeros(2, 2);
        let mut rhs: DVec<f64> = DVec::zeros(2);
        let mut st = DenseStamp {
            mat: &mut m,
            rhs: &mut rhs,
        };
        stamp_conductance(&layout, &mut st, a, b, 0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], -0.5);
        assert_eq!(m[(1, 0)], -0.5);
        // Grounded stamp only touches the diagonal.
        let mut m2: DMat<f64> = DMat::zeros(2, 2);
        let mut rhs2: DVec<f64> = DVec::zeros(2);
        let mut st2 = DenseStamp {
            mat: &mut m2,
            rhs: &mut rhs2,
        };
        stamp_conductance(&layout, &mut st2, a, Circuit::GROUND, 2.0);
        assert_eq!(m2[(0, 0)], 2.0);
        assert_eq!(m2[(0, 1)], 0.0);
    }

    #[test]
    fn current_stamp_direction() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let layout = MnaLayout::build(&ckt);
        let mut m: DMat<f64> = DMat::zeros(1, 1);
        let mut rhs: DVec<f64> = DVec::zeros(1);
        let mut st = DenseStamp {
            mat: &mut m,
            rhs: &mut rhs,
        };
        // 1 A from ground into node a (p = ground, n = a).
        stamp_current(&layout, &mut st, Circuit::GROUND, a, 1.0);
        assert_eq!(rhs[0], 1.0);
    }

    #[test]
    fn vccs_stamp_signs() {
        let mut ckt = Circuit::new();
        let p = ckt.node("p");
        let cp = ckt.node("cp");
        let layout = MnaLayout::build(&ckt);
        let mut m: DMat<f64> = DMat::zeros(2, 2);
        let mut rhs: DVec<f64> = DVec::zeros(2);
        let mut st = DenseStamp {
            mat: &mut m,
            rhs: &mut rhs,
        };
        stamp_vccs(
            &layout,
            &mut st,
            p,
            Circuit::GROUND,
            cp,
            Circuit::GROUND,
            0.1,
        );
        // I(p→gnd) = gm·V(cp): row p gets +gm at column cp.
        assert_eq!(m[(0, 1)], 0.1);
        assert_eq!(m[(1, 0)], 0.0);
    }
}
